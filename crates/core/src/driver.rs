//! Drivers that run MNTP against a simulated testbed.
//!
//! [`run_full`] drives the complete Algorithm 1 engine ([`crate::Mntp`]);
//! [`run_baseline`] drives the §5.1 head-to-head configuration (no
//! phases, no drift correction — hint gate plus trend filter over a
//! fixed poll interval). Both produce a list of [`MntpRunRecord`]s (one
//! per query attempt, including deferrals) plus a sampled trace of the
//! client clock's *true* error, which is evaluation-only ground truth.

use clocksim::time::{SimDuration, SimTime};
use clocksim::{ClockControl, SimClock};
use netsim::{FaultInjector, Testbed, WirelessHints};
use sntp::{
    perform_exchange, perform_exchange_faulted, ExchangeError, HealthConfig, HealthTracker,
    ServerPool,
};

use crate::config::MntpConfig;
use crate::engine::{Mntp, MntpAction, Phase, SampleVerdict};
use crate::filter::TrendFilter;
use crate::gate::HintGate;

/// What happened at one query instant.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The hint gate deferred the request.
    Deferred,
    /// The query was sent but every packet was lost.
    Failed,
    /// A warmup round completed with these per-source offsets (ms) and
    /// this many of them rejected as false tickers.
    WarmupRound {
        /// Offset reported by each responding source, ms.
        offsets_ms: Vec<f64>,
        /// How many of them the mean+1σ test rejected.
        false_tickers: usize,
    },
    /// A sample was accepted by the filter.
    Accepted {
        /// The accepted offset, ms.
        offset_ms: f64,
    },
    /// A sample was rejected by the filter.
    Rejected {
        /// The rejected offset, ms.
        offset_ms: f64,
    },
    /// First successful sample after a holdover outage: the engine
    /// corrected the clock and restarted warmup.
    Recovered {
        /// The offset observed at recovery, ms.
        offset_ms: f64,
    },
    /// A holdover-phase probe failed; the engine keeps freewheeling on
    /// the fitted drift.
    HoldoverFailed {
        /// The trend model's offset prediction at the failed probe, ms
        /// (`None` if no trend was ever fitted).
        predicted_ms: Option<f64>,
    },
    /// The selected server answered with a kiss-o'-death packet.
    KissODeath {
        /// The ASCII kiss code (e.g. `*b"RATE"`).
        code: [u8; 4],
    },
}

/// One record of an MNTP run.
#[derive(Clone, Debug)]
pub struct MntpRunRecord {
    /// True time of the event, seconds since run start.
    pub t_secs: f64,
    /// Wireless hints at the event (None on wired/cellular hops).
    pub hints: Option<WirelessHints>,
    /// What happened.
    pub outcome: QueryOutcome,
}

/// A completed run: per-event records plus ground-truth clock error.
#[derive(Clone, Debug, Default)]
pub struct MntpRun {
    /// Per-query-instant records.
    pub records: Vec<MntpRunRecord>,
    /// `(t_secs, clock true error ms)` sampled every few seconds —
    /// evaluation-only.
    pub true_error_ms: Vec<(f64, f64)>,
}

impl MntpRun {
    /// All accepted offsets, ms.
    pub fn accepted_offsets(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| match &r.outcome {
                QueryOutcome::Accepted { offset_ms } => Some(*offset_ms),
                _ => None,
            })
            .collect()
    }

    /// All rejected offsets, ms.
    pub fn rejected_offsets(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| match &r.outcome {
                QueryOutcome::Rejected { offset_ms } => Some(*offset_ms),
                _ => None,
            })
            .collect()
    }

    /// Count of deferred query instants.
    pub fn deferrals(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == QueryOutcome::Deferred).count()
    }

    /// Count of kiss-o'-death replies received.
    pub fn kod_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::KissODeath { .. }))
            .count()
    }

    /// Count of failed holdover probes.
    pub fn holdover_failures(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::HoldoverFailed { .. }))
            .count()
    }

    /// `(t_secs, offset_ms)` of every post-outage recovery.
    pub fn recoveries(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| match r.outcome {
                QueryOutcome::Recovered { offset_ms } => Some((r.t_secs, offset_ms)),
                _ => None,
            })
            .collect()
    }
}

/// Run the full Algorithm 1 engine for `duration_secs` of simulated time.
///
/// The engine is ticked once per `tick_secs` (1 s is the paper-faithful
/// choice: `wait(favorableSNRCondition())` re-checks the channel each
/// second). Clock commands are applied to `clock` as they are emitted.
pub fn run_full(
    cfg: MntpConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    tick_secs: f64,
) -> MntpRun {
    let mut engine = Mntp::new(cfg);
    let mut run = MntpRun::default();
    let ticks = (duration_secs as f64 / tick_secs).ceil() as u64;
    for i in 0..=ticks {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * tick_secs);
        let hints = testbed.hints(t);
        let now_local = clock.now(t);
        let deferred_before = engine.stats.deferred;
        let action = engine.on_tick(now_local, hints.as_ref());
        match action {
            MntpAction::Wait => {
                if engine.stats.deferred > deferred_before {
                    run.records.push(MntpRunRecord {
                        t_secs: t.as_secs_f64(),
                        hints,
                        outcome: QueryOutcome::Deferred,
                    });
                }
            }
            MntpAction::QueryMultiple(n) => {
                let ids = pool.pick_distinct(n);
                let mut offsets = Vec::new();
                for id in ids {
                    if let Ok(done) = perform_exchange(testbed, pool.server_mut(id), clock, t) {
                        offsets.push(done.sample.offset.as_millis_f64());
                    }
                }
                let outcome = if offsets.is_empty() {
                    engine.on_query_failed(clock.now(t));
                    QueryOutcome::Failed
                } else {
                    let before = engine.stats.false_tickers_rejected;
                    engine.on_warmup_round(clock.now(t), &offsets);
                    QueryOutcome::WarmupRound {
                        offsets_ms: offsets,
                        false_tickers: (engine.stats.false_tickers_rejected - before) as usize,
                    }
                };
                run.records.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
            }
            MntpAction::QuerySingle => {
                let id = pool.pick();
                let outcome = match perform_exchange(testbed, pool.server_mut(id), clock, t) {
                    Ok(done) => {
                        let ms = done.sample.offset.as_millis_f64();
                        match engine.on_regular_sample(clock.now(t), ms) {
                            SampleVerdict::Accepted { offset_ms } => {
                                QueryOutcome::Accepted { offset_ms }
                            }
                            SampleVerdict::Rejected { offset_ms } => {
                                QueryOutcome::Rejected { offset_ms }
                            }
                            SampleVerdict::Recovered { offset_ms } => {
                                QueryOutcome::Recovered { offset_ms }
                            }
                        }
                    }
                    Err(_) => {
                        engine.on_query_failed(clock.now(t));
                        QueryOutcome::Failed
                    }
                };
                run.records.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
            }
        }
        for cmd in engine.take_commands() {
            cmd.apply(clock, t);
        }
        // Ground-truth sampling every ~5 s.
        if (i as f64 * tick_secs) % 5.0 < tick_secs {
            run.true_error_ms
                .push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
        }
    }
    run
}

/// Run the full engine with the AIMD self-tuner adjusting the
/// regular-phase wait online (the paper's §7 future work). Identical to
/// [`run_full`] otherwise.
pub fn run_full_autotuned(
    cfg: MntpConfig,
    tune: crate::autotune::AutoTuneConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    tick_secs: f64,
) -> (MntpRun, crate::autotune::AutoTuner) {
    let mut engine = Mntp::new(cfg);
    let mut tuner = crate::autotune::AutoTuner::new(tune);
    let mut run = MntpRun::default();
    let ticks = (duration_secs as f64 / tick_secs).ceil() as u64;
    for i in 0..=ticks {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * tick_secs);
        let hints = testbed.hints(t);
        let now_local = clock.now(t);
        let deferred_before = engine.stats.deferred;
        match engine.on_tick(now_local, hints.as_ref()) {
            MntpAction::Wait => {
                if engine.stats.deferred > deferred_before {
                    run.records.push(MntpRunRecord {
                        t_secs: t.as_secs_f64(),
                        hints,
                        outcome: QueryOutcome::Deferred,
                    });
                }
            }
            MntpAction::QueryMultiple(n) => {
                let ids = pool.pick_distinct(n);
                let mut offsets = Vec::new();
                for id in ids {
                    if let Ok(done) = perform_exchange(testbed, pool.server_mut(id), clock, t) {
                        offsets.push(done.sample.offset.as_millis_f64());
                    }
                }
                let outcome = if offsets.is_empty() {
                    engine.on_query_failed(clock.now(t));
                    QueryOutcome::Failed
                } else {
                    engine.on_warmup_round(clock.now(t), &offsets);
                    QueryOutcome::WarmupRound { offsets_ms: offsets, false_tickers: 0 }
                };
                run.records.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
            }
            MntpAction::QuerySingle => {
                let id = pool.pick();
                let outcome = match perform_exchange(testbed, pool.server_mut(id), clock, t) {
                    Ok(done) => {
                        let ms = done.sample.offset.as_millis_f64();
                        let verdict = engine.on_regular_sample(clock.now(t), ms);
                        engine.set_regular_wait_secs(tuner.on_verdict(&verdict));
                        match verdict {
                            SampleVerdict::Accepted { offset_ms } => {
                                QueryOutcome::Accepted { offset_ms }
                            }
                            SampleVerdict::Rejected { offset_ms } => {
                                QueryOutcome::Rejected { offset_ms }
                            }
                            SampleVerdict::Recovered { offset_ms } => {
                                QueryOutcome::Recovered { offset_ms }
                            }
                        }
                    }
                    Err(_) => {
                        engine.on_query_failed(clock.now(t));
                        engine.set_regular_wait_secs(tuner.on_failure());
                        QueryOutcome::Failed
                    }
                };
                run.records.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
            }
        }
        for cmd in engine.take_commands() {
            cmd.apply(clock, t);
        }
        if (i as f64 * tick_secs) % 5.0 < tick_secs {
            run.true_error_ms
                .push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
        }
    }
    (run, tuner)
}

/// Configuration of the hardened, fault-aware driver.
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Per-query round-trip budget, seconds; replies arriving later are
    /// abandoned and the query counts as failed.
    pub timeout_secs: f64,
    /// Per-server health policy (reachability register, demotion bans,
    /// kiss-o'-death honoring).
    pub health: HealthConfig,
    /// Seed for the health tracker's selection RNG.
    pub health_seed: u64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig { timeout_secs: 1.0, health: HealthConfig::default(), health_seed: 0x4d4e5450 }
    }
}

/// Run the full engine through the hardened client stack against a
/// fault-injecting network.
///
/// Identical tick structure to [`run_full`], with three changes:
///
/// * server selection goes through a [`HealthTracker`] instead of the
///   pool's uniform pick, so blackholed / rate-limiting servers are
///   demoted and traffic fails over;
/// * every exchange runs under [`perform_exchange_faulted`] with a
///   per-query timeout, so the injected faults (§ fault model in
///   DESIGN.md) actually bite;
/// * kiss-o'-death replies ban the offending server and are recorded as
///   [`QueryOutcome::KissODeath`]; failed holdover probes are recorded
///   as [`QueryOutcome::HoldoverFailed`] with the freewheel prediction.
#[allow(clippy::too_many_arguments)]
pub fn run_full_faulted(
    cfg: MntpConfig,
    rcfg: RobustConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    faults: &mut FaultInjector,
    duration_secs: u64,
    tick_secs: f64,
) -> MntpRun {
    let mut engine = Mntp::new(cfg);
    let mut health = HealthTracker::new(pool.len(), rcfg.health.clone(), rcfg.health_seed);
    let timeout = Some(SimDuration::from_secs_f64(rcfg.timeout_secs));
    let mut run = MntpRun::default();
    let ticks = (duration_secs as f64 / tick_secs).ceil() as u64;
    for i in 0..=ticks {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * tick_secs);
        let ts = t.as_secs_f64();
        let hints = testbed.hints(t);
        let now_local = clock.now(t);
        let deferred_before = engine.stats.deferred;
        match engine.on_tick(now_local, hints.as_ref()) {
            MntpAction::Wait => {
                if engine.stats.deferred > deferred_before {
                    run.records.push(MntpRunRecord {
                        t_secs: ts,
                        hints,
                        outcome: QueryOutcome::Deferred,
                    });
                }
            }
            MntpAction::QueryMultiple(n) => {
                let ids = health.pick_distinct(n, ts);
                let mut offsets = Vec::new();
                for id in ids {
                    match perform_exchange_faulted(
                        testbed,
                        pool.server_mut(id),
                        clock,
                        t,
                        faults,
                        timeout,
                    ) {
                        Ok(done) => {
                            health.on_success(id, ts);
                            offsets.push(done.sample.offset.as_millis_f64());
                        }
                        Err(ExchangeError::KissODeath(code)) => health.on_kod(id, code, ts),
                        Err(_) => health.on_failure(id, ts),
                    }
                }
                let outcome = if offsets.is_empty() {
                    engine.on_query_failed(clock.now(t));
                    QueryOutcome::Failed
                } else {
                    let before = engine.stats.false_tickers_rejected;
                    engine.on_warmup_round(clock.now(t), &offsets);
                    QueryOutcome::WarmupRound {
                        offsets_ms: offsets,
                        false_tickers: (engine.stats.false_tickers_rejected - before) as usize,
                    }
                };
                run.records.push(MntpRunRecord { t_secs: ts, hints, outcome });
            }
            MntpAction::QuerySingle => {
                let id = health.pick(ts);
                let outcome = match perform_exchange_faulted(
                    testbed,
                    pool.server_mut(id),
                    clock,
                    t,
                    faults,
                    timeout,
                ) {
                    Ok(done) => {
                        health.on_success(id, ts);
                        let ms = done.sample.offset.as_millis_f64();
                        match engine.on_regular_sample(clock.now(t), ms) {
                            SampleVerdict::Accepted { offset_ms } => {
                                QueryOutcome::Accepted { offset_ms }
                            }
                            SampleVerdict::Rejected { offset_ms } => {
                                QueryOutcome::Rejected { offset_ms }
                            }
                            SampleVerdict::Recovered { offset_ms } => {
                                QueryOutcome::Recovered { offset_ms }
                            }
                        }
                    }
                    Err(err) => {
                        let outcome = match err {
                            ExchangeError::KissODeath(code) => {
                                health.on_kod(id, code, ts);
                                Some(QueryOutcome::KissODeath { code })
                            }
                            _ => {
                                health.on_failure(id, ts);
                                None
                            }
                        };
                        engine.on_query_failed(clock.now(t));
                        match outcome {
                            Some(o) => o,
                            None if engine.phase() == Phase::Holdover => {
                                QueryOutcome::HoldoverFailed {
                                    predicted_ms: engine.predicted_offset_ms(clock.now(t)),
                                }
                            }
                            None => QueryOutcome::Failed,
                        }
                    }
                };
                run.records.push(MntpRunRecord { t_secs: ts, hints, outcome });
            }
        }
        for cmd in engine.take_commands() {
            cmd.apply(clock, t);
        }
        if (i as f64 * tick_secs) % 5.0 < tick_secs {
            run.true_error_ms.push((ts, clock.true_error(t).as_millis_f64()));
        }
    }
    run
}

/// Run the §5.1 baseline: poll every `poll_secs`, gate + filter only, no
/// phases, no drift correction, clock untouched.
pub fn run_baseline(
    cfg: MntpConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    poll_secs: f64,
) -> MntpRun {
    let mut gate = HintGate::new(&cfg);
    let mut filter = TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
    let mut run = MntpRun::default();
    let polls = (duration_secs as f64 / poll_secs).floor() as u64;
    for i in 0..=polls {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * poll_secs);
        let hints = testbed.hints(t);
        let outcome = if !gate.favorable(hints.as_ref()) {
            QueryOutcome::Deferred
        } else {
            let id = pool.pick();
            match perform_exchange(testbed, pool.server_mut(id), clock, t) {
                Ok(done) => {
                    let ms = done.sample.offset.as_millis_f64();
                    if filter.offer(t.as_secs_f64(), ms) {
                        QueryOutcome::Accepted { offset_ms: ms }
                    } else {
                        QueryOutcome::Rejected { offset_ms: ms }
                    }
                }
                Err(_) => QueryOutcome::Failed,
            }
        };
        run.records.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
        run.true_error_ms.push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::{OscillatorConfig, SimRng};
    use netsim::testbed::TestbedConfig;
    use sntp::PoolConfig;

    fn clock(skew_ppm: f64, seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(skew_ppm).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    #[test]
    fn baseline_run_on_wireless_rejects_spikes() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 1);
        let mut pool = ServerPool::new(PoolConfig::default(), 2);
        let mut c = clock(0.0, 3);
        let cfg = MntpConfig::baseline(5.0);
        let run = run_baseline(cfg, &mut tb, &mut pool, &mut c, 1800, 5.0);
        let accepted = run.accepted_offsets();
        let rejected = run.rejected_offsets();
        assert!(!accepted.is_empty());
        assert!(run.deferrals() > 0, "gate should defer sometimes");
        // Accepted spread must be far tighter than what rejection removed.
        if !rejected.is_empty() {
            let max_acc = accepted.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            let max_rej = rejected.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            assert!(max_rej > max_acc, "rejected {max_rej} vs accepted {max_acc}");
        }
    }

    #[test]
    fn full_run_reaches_regular_phase_and_records() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
        let mut pool = ServerPool::new(PoolConfig::default(), 5);
        let mut c = clock(10.0, 6);
        let cfg = MntpConfig {
            warmup_period_secs: 300.0,
            warmup_wait_secs: 15.0,
            regular_wait_secs: 60.0,
            reset_period_secs: 100_000.0,
            ..Default::default()
        };
        let run = run_full(cfg, &mut tb, &mut pool, &mut c, 3600, 1.0);
        let warmup_rounds = run
            .records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::WarmupRound { .. }))
            .count();
        assert!(warmup_rounds >= 10, "warmup rounds {warmup_rounds}");
        let regular = run
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    QueryOutcome::Accepted { .. } | QueryOutcome::Rejected { .. }
                )
            })
            .count();
        assert!(regular >= 10, "regular samples {regular}");
        assert!(!run.true_error_ms.is_empty());
    }

    #[test]
    fn autotuned_driver_stretches_pacing_and_still_tracks() {
        let mut tb = Testbed::wireless(netsim::testbed::TestbedConfig::default(), 21);
        let mut pool = ServerPool::new(sntp::PoolConfig::default(), 22);
        let osc =
            clocksim::OscillatorConfig::laptop().with_skew_ppm(25.0).build(SimRng::new(23));
        let mut c = SimClock::new(osc, SimTime::ZERO);
        let cfg = MntpConfig {
            warmup_period_secs: 300.0,
            warmup_wait_secs: 10.0,
            regular_wait_secs: 30.0,
            reset_period_secs: 1e9,
            apply_mode: crate::config::ApplyMode::Step,
            ..Default::default()
        };
        let (run, tuner) = run_full_autotuned(
            cfg,
            crate::autotune::AutoTuneConfig::default(),
            &mut tb,
            &mut pool,
            &mut c,
            3600,
            1.0,
        );
        // The tuner must have stretched the wait beyond its floor…
        assert!(tuner.wait_secs() > 15.0, "wait {}", tuner.wait_secs());
        assert!(tuner.increases > 0);
        // …while the clock stays disciplined after warmup.
        let late: Vec<f64> = run
            .true_error_ms
            .iter()
            .filter(|(t, _)| *t > 1200.0)
            .map(|(_, e)| e.abs())
            .collect();
        let worst = late.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 120.0, "worst disciplined error {worst}");
    }

    #[test]
    fn faulted_run_survives_total_outage_and_recovers() {
        use netsim::{FaultKind, FaultSchedule, ServerSet};
        let go = || {
            let mut tb = Testbed::wireless(TestbedConfig::default(), 31);
            let mut pool = ServerPool::new(PoolConfig::default(), 32);
            let mut c = clock(25.0, 33);
            let cfg = MntpConfig {
                warmup_period_secs: 300.0,
                warmup_wait_secs: 10.0,
                regular_wait_secs: 30.0,
                reset_period_secs: 1e9,
                apply_mode: crate::config::ApplyMode::Step,
                ..Default::default()
            };
            let schedule = FaultSchedule::none().window(
                1800.0,
                3000.0,
                FaultKind::ServerOutage { servers: ServerSet::All },
            );
            let mut faults = FaultInjector::new(schedule, 34);
            run_full_faulted(
                cfg,
                RobustConfig::default(),
                &mut tb,
                &mut pool,
                &mut c,
                &mut faults,
                5400,
                1.0,
            )
        };
        let run = go();
        assert!(run.holdover_failures() > 0, "outage should force holdover probes");
        let recs = run.recoveries();
        assert!(!recs.is_empty(), "engine must recover after the outage");
        assert!(recs[0].0 > 3000.0, "recovery only after the window ends, got {}", recs[0].0);
        // Bit-identical replay: same seeds, same run.
        let again = go();
        assert_eq!(run.records.len(), again.records.len());
        assert_eq!(run.true_error_ms, again.true_error_ms);
    }

    #[test]
    fn faulted_run_records_kiss_o_death() {
        use netsim::{FaultKind, FaultSchedule, ServerSet};
        let mut tb = Testbed::wireless(TestbedConfig::default(), 41);
        let mut pool = ServerPool::new(PoolConfig::default(), 42);
        let mut c = clock(10.0, 43);
        let cfg = MntpConfig {
            warmup_period_secs: 120.0,
            warmup_wait_secs: 10.0,
            regular_wait_secs: 20.0,
            reset_period_secs: 1e9,
            ..Default::default()
        };
        // Every server rate-limits hard during the regular phase.
        let schedule = FaultSchedule::none().window(
            300.0,
            600.0,
            FaultKind::KissODeath { servers: ServerSet::All, min_poll_secs: 3600.0 },
        );
        let mut faults = FaultInjector::new(schedule, 44);
        let run = run_full_faulted(
            cfg,
            RobustConfig::default(),
            &mut tb,
            &mut pool,
            &mut c,
            &mut faults,
            900,
            1.0,
        );
        assert!(run.kod_count() > 0, "KoD replies should be recorded");
    }

    #[test]
    fn deterministic_given_seeds() {
        let go = || {
            let mut tb = Testbed::wireless(TestbedConfig::default(), 7);
            let mut pool = ServerPool::new(PoolConfig::default(), 8);
            let mut c = clock(5.0, 9);
            let run =
                run_baseline(MntpConfig::baseline(5.0), &mut tb, &mut pool, &mut c, 600, 5.0);
            run.accepted_offsets()
        };
        assert_eq!(go(), go());
    }
}
