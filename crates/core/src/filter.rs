//! MNTP's filtering heuristics (paper §4.2).
//!
//! Two independent rejection mechanisms live here:
//!
//! 1. **False-ticker rejection** ([`reject_false_tickers`]) for the
//!    multi-source warmup rounds: "We calculate the mean and standard
//!    deviation of the offsets and classify the time sources whose
//!    offsets exceed the mean plus one standard deviation as false
//!    tickers."
//! 2. **Trend-line outlier rejection** ([`TrendFilter`]): fit a degree-1
//!    least-squares line through the recorded `(time, offset)` samples —
//!    the clock's drift — extend it to predict where the next sample
//!    should land, and compare the new sample's *squared* error against
//!    the distribution of past squared errors; a sample more than one
//!    standard deviation above the mean squared error is rejected.
//!
//!    (The paper says "one standard deviation above *or below* the mean";
//!    rejecting samples for fitting *too well* would discard the best
//!    data, so — like the authors' released Python implementation — only
//!    the upper tail rejects. The deviation is noted in DESIGN.md.)
//!
//! Following the §5.3 tuner insight, the drift estimate is re-fit with
//! every accepted sample (configurable off for the ablation that
//! reproduces the pre-fix behaviour of rejecting everything after a bad
//! early estimate).

use clocksim::fit::{fit_line, LineFit};

/// Verdict for one source in a multi-source warmup round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FalseTickerVerdict {
    /// The source's offset is consistent with the round.
    Truechimer,
    /// The source deviates by more than mean + 1σ: rejected.
    FalseTicker,
}

/// Classify each offset of one round. With fewer than two offsets nothing
/// can be rejected. Returns one verdict per input, in order.
pub fn reject_false_tickers(offsets_ms: &[f64], sigma_mult: f64) -> Vec<FalseTickerVerdict> {
    if offsets_ms.len() < 2 {
        return vec![FalseTickerVerdict::Truechimer; offsets_ms.len()];
    }
    let mean = clocksim::stats::mean(offsets_ms);
    let std = clocksim::stats::stddev(offsets_ms);
    offsets_ms
        .iter()
        .map(|&o| {
            if (o - mean).abs() > sigma_mult * std && std > 0.0 {
                FalseTickerVerdict::FalseTicker
            } else {
                FalseTickerVerdict::Truechimer
            }
        })
        .collect()
}

/// Combine a round's surviving offsets into one value (mean of
/// truechimers; falls back to the plain mean if everything was rejected,
/// which can only happen with pathological σ).
pub fn combine_round(offsets_ms: &[f64], verdicts: &[FalseTickerVerdict]) -> f64 {
    let survivors: Vec<f64> = offsets_ms
        .iter()
        .zip(verdicts)
        .filter(|(_, v)| **v == FalseTickerVerdict::Truechimer)
        .map(|(o, _)| *o)
        .collect();
    if survivors.is_empty() {
        clocksim::stats::mean(offsets_ms)
    } else {
        clocksim::stats::mean(&survivors)
    }
}

/// The drift trend-line filter.
///
/// ```
/// use mntp::TrendFilter;
///
/// let mut filter = TrendFilter::new(1.0, true);
/// // Samples along a −20 ppm drift line are accepted…
/// for i in 0..10 {
///     let t = i as f64 * 15.0;
///     assert!(filter.offer(t, -0.02 * t));
/// }
/// // …and the drift estimate recovers the slope.
/// assert!((filter.drift_ppm().unwrap() + 20.0).abs() < 0.5);
/// // A 300 ms wireless spike is rejected.
/// assert!(!filter.offer(150.0, 300.0));
/// ```
#[derive(Clone, Debug)]
pub struct TrendFilter {
    /// Accepted samples: (elapsed local seconds, offset ms).
    points: Vec<(f64, f64)>,
    /// Squared prediction errors of accepted samples (for the 1σ band).
    sq_errors: Vec<f64>,
    /// Current fit, refreshed on accept when re-estimation is on.
    fit: Option<LineFit>,
    sigma_mult: f64,
    reestimate: bool,
    /// Minimum half-width of the accept band, in ms² of squared error.
    /// Without a floor, a run of near-perfect samples collapses the band
    /// to numerical noise and everything afterwards is rejected.
    min_band_ms2: f64,
    /// Fit over at most this many most-recent points, so the trend can
    /// follow slow curvature (temperature, wander) instead of being
    /// anchored by stale history.
    fit_window: usize,
    /// Samples collected before the trend exists; seeded by consensus.
    bootstrap: Vec<(f64, f64)>,
    /// Re-anchor once this many consecutive rejections agree with each
    /// other — the §5.3 lesson generalized: a filter that can wedge shut
    /// is worse than one that occasionally lets noise in. Genuine trend
    /// shifts produce mutually consistent rejections; channel spikes are
    /// heavy-tailed and never agree.
    reanchor_after: usize,
    recent_rejects: Vec<(f64, f64)>,
    accepted: u64,
    rejected: u64,
}

impl TrendFilter {
    /// New empty filter.
    pub fn new(sigma_mult: f64, reestimate: bool) -> Self {
        TrendFilter {
            points: Vec::new(),
            sq_errors: Vec::new(),
            fit: None,
            sigma_mult,
            reestimate,
            min_band_ms2: 64.0, // (8 ms)²: typical good-channel SNTP noise is never an outlier
            fit_window: 512,
            bootstrap: Vec::new(),
            reanchor_after: 5,
            recent_rejects: Vec::new(),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Override the minimum accept band (ms² of squared error).
    pub fn with_min_band_ms2(mut self, band: f64) -> Self {
        self.min_band_ms2 = band;
        self
    }

    /// Number of accepted samples recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Accepted / rejected counters.
    pub fn counts(&self) -> (u64, u64) {
        (self.accepted, self.rejected)
    }

    /// The current drift estimate: the slope of the trend line, in
    /// ms of offset per second — i.e. *parts per thousand*. Multiply by
    /// 1000 for ppm.
    pub fn drift_ms_per_sec(&self) -> Option<f64> {
        self.fit.map(|f| f.slope)
    }

    /// The current drift estimate in ppm.
    pub fn drift_ppm(&self) -> Option<f64> {
        self.drift_ms_per_sec().map(|s| s * 1000.0)
    }

    /// Predicted offset at elapsed time `t_secs`, if a trend exists.
    pub fn predict(&self, t_secs: f64) -> Option<f64> {
        self.fit.map(|f| f.predict(t_secs))
    }

    /// Record a sample unconditionally (warmup bootstrap, before the
    /// trend exists) and refresh the fit.
    pub fn record_unchecked(&mut self, t_secs: f64, offset_ms: f64) {
        self.push_point(t_secs, offset_ms);
        self.accepted += 1;
    }

    fn push_point(&mut self, t_secs: f64, offset_ms: f64) {
        // Track this sample's squared error against the pre-update trend,
        // seeding the error distribution the accept band uses.
        if let Some(f) = self.fit {
            let e = offset_ms - f.predict(t_secs);
            self.sq_errors.push(e * e);
            // Bounded history: old error statistics should age out so
            // the band tracks current channel conditions.
            if self.sq_errors.len() > 64 {
                self.sq_errors.remove(0);
            }
        }
        self.points.push((t_secs, offset_ms));
        if self.reestimate || self.fit.is_none() {
            self.refit();
        }
    }

    fn window(&self) -> &[(f64, f64)] {
        let start = self.points.len().saturating_sub(self.fit_window);
        self.points.get(start..).unwrap_or(&[])
    }

    /// Re-fit the trend from the most recent `fit_window` points (the
    /// warmup → regular transition calls this even when per-sample
    /// re-estimation is off).
    pub fn refit(&mut self) {
        self.fit = fit_line(self.window());
    }

    /// The accept/reject decision for a new sample.
    ///
    /// Before a trend exists, samples are buffered and judged against
    /// the running median of the buffer (the channel can be hostile at
    /// startup — paper §4.2's "a network could be completely lossy at
    /// the start" concern generalizes to *biased* at the start); once
    /// five samples are buffered, the consensus subset seeds the trend.
    pub fn offer(&mut self, t_secs: f64, offset_ms: f64) -> bool {
        const BOOTSTRAP_LEN: usize = 5;
        const BOOTSTRAP_TOLERANCE_MS: f64 = 20.0;
        let Some(f) = self.fit else {
            self.bootstrap.push((t_secs, offset_ms));
            let med = {
                let vals: Vec<f64> = self.bootstrap.iter().map(|p| p.1).collect();
                clocksim::stats::median(&vals)
            };
            let verdict = (offset_ms - med).abs() <= BOOTSTRAP_TOLERANCE_MS;
            if verdict {
                self.accepted += 1;
            } else {
                self.rejected += 1;
            }
            if self.bootstrap.len() >= BOOTSTRAP_LEN {
                // Seed from the consensus subset around the median.
                let seed: Vec<(f64, f64)> = self
                    .bootstrap
                    .drain(..)
                    .filter(|(_, o)| (o - med).abs() <= BOOTSTRAP_TOLERANCE_MS)
                    .collect();
                self.points = seed;
                self.refit();
                // Seed the error history too, so the accept band is live
                // from the very next sample instead of waving the first
                // few through.
                if let Some(f) = self.fit {
                    for &(t, o) in &self.points {
                        let e = o - f.predict(t);
                        self.sq_errors.push(e * e);
                    }
                }
            }
            return verdict;
        };
        let err = offset_ms - f.predict(t_secs);
        let sq = err * err;
        // Accept band: mean + sigma_mult * std of past squared errors —
        // the paper's wording, over a sliding window (old squared errors
        // age out, so one accepted burst cannot widen the band forever)
        // and with a floor (good-channel SNTP noise is never an
        // outlier). With fewer than 3 recorded errors the band is too
        // unstable — accept to keep bootstrapping.
        let accept = if self.sq_errors.len() < 3 {
            true
        } else {
            let mean = clocksim::stats::mean(&self.sq_errors);
            let std = clocksim::stats::stddev(&self.sq_errors);
            sq <= (mean + self.sigma_mult * std).max(self.min_band_ms2)
        };
        if accept {
            self.push_point(t_secs, offset_ms);
            self.accepted += 1;
            self.recent_rejects.clear();
            return true;
        }
        self.rejected += 1;
        self.recent_rejects.push((t_secs, offset_ms));
        if self.recent_rejects.len() > self.reanchor_after {
            self.recent_rejects.remove(0);
        }
        // Wedge escape: if the rejected samples are mutually consistent
        // (they fit their own line with small residuals), the *trend*
        // moved, not the channel. Re-anchor by stepping the intercept to
        // the cluster while keeping the slope (which carries far more
        // history than five points could re-estimate), then absorb the
        // cluster so future fits refine the slope from fresh data.
        if self.recent_rejects.len() == self.reanchor_after {
            if let Some(cluster_fit) = fit_line(&self.recent_rejects) {
                let worst = self
                    .recent_rejects
                    .iter()
                    .map(|&(t, o)| (o - cluster_fit.predict(t)).abs())
                    .fold(0.0f64, f64::max);
                // Much tighter than the accept band: a genuine trend
                // shift reproduces to a few ms (good-channel noise);
                // clusters of false-ticker or queueing leaks spread over
                // tens of ms and must not re-anchor the trend.
                if worst <= 5.0 {
                    let delta = if let Some(f) = self.fit {
                        let residuals: Vec<f64> = self
                            .recent_rejects
                            .iter()
                            .map(|&(t, o)| o - f.predict(t))
                            .collect();
                        clocksim::stats::mean(&residuals)
                    } else {
                        0.0
                    };
                    for p in &mut self.points {
                        p.1 += delta;
                    }
                    let cluster = std::mem::take(&mut self.recent_rejects);
                    for (t, o) in cluster {
                        self.points.push((t, o));
                    }
                    self.sq_errors.clear();
                    self.refit();
                    self.accepted += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Read-only view of recorded points (diagnostics, tuner).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Shift every recorded offset by `delta_ms`. Called after the driver
    /// *steps* the clock by `-delta_ms`, so that history stays in the
    /// corrected clock's frame and keeps predicting future measurements.
    pub fn translate(&mut self, delta_ms: f64) {
        for p in &mut self.points {
            p.1 += delta_ms;
        }
        self.refit();
    }

    /// Apply a rate change of `delta_ms_per_sec` pivoting at elapsed time
    /// `pivot_secs`. Called after a frequency trim: future offsets will
    /// follow the old trend plus `delta·(t − pivot)`, so history is
    /// sheared by the same transform to stay predictive.
    pub fn apply_rate_change(&mut self, delta_ms_per_sec: f64, pivot_secs: f64) {
        for p in &mut self.points {
            p.1 += delta_ms_per_sec * (p.0 - pivot_secs);
        }
        self.refit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_ticker_rejection_flags_the_outlier() {
        let offsets = [2.0, 3.0, 250.0];
        let v = reject_false_tickers(&offsets, 1.0);
        assert_eq!(v[0], FalseTickerVerdict::Truechimer);
        assert_eq!(v[1], FalseTickerVerdict::Truechimer);
        assert_eq!(v[2], FalseTickerVerdict::FalseTicker);
        let combined = combine_round(&offsets, &v);
        assert!((combined - 2.5).abs() < 1e-12);
    }

    #[test]
    fn agreeing_sources_lose_at_most_the_extreme() {
        // With three samples, the extreme one usually deviates by more
        // than 1σ — the paper's rule is deliberately aggressive ("to
        // ensure very tight clock synchronization"). What matters is that
        // the combination stays near the consensus.
        let offsets = [5.0, 5.5, 4.5];
        let v = reject_false_tickers(&offsets, 1.0);
        // The midpoint source always survives (its deviation is ≤ σ).
        assert_eq!(v[0], FalseTickerVerdict::Truechimer);
        let combined = combine_round(&offsets, &v);
        assert!((combined - 5.0).abs() <= 0.5, "combined={combined}");
    }

    #[test]
    fn single_source_cannot_be_rejected() {
        let v = reject_false_tickers(&[999.0], 1.0);
        assert_eq!(v, vec![FalseTickerVerdict::Truechimer]);
    }

    #[test]
    fn identical_sources_never_rejected() {
        let v = reject_false_tickers(&[7.0, 7.0, 7.0], 1.0);
        assert!(v.iter().all(|x| *x == FalseTickerVerdict::Truechimer));
    }

    fn seeded_filter(drift_ms_per_s: f64, n: usize) -> TrendFilter {
        let mut f = TrendFilter::new(1.0, true);
        for i in 0..n {
            let t = i as f64 * 15.0;
            // Small deterministic jitter around the drift line.
            let jitter = [(0.4), (-0.3), (0.1), (-0.2), (0.25)][i % 5];
            f.record_unchecked(t, drift_ms_per_s * t + jitter);
        }
        f
    }

    #[test]
    fn drift_estimate_matches_seeded_slope() {
        let f = seeded_filter(0.01, 10); // 10 ppm
        let ppm = f.drift_ppm().unwrap();
        assert!((ppm - 10.0).abs() < 1.0, "ppm={ppm}");
    }

    #[test]
    fn inlier_accepted_outlier_rejected() {
        let mut f = seeded_filter(0.01, 10);
        let t = 200.0;
        let on_trend = 0.01 * t;
        assert!(f.offer(t, on_trend + 0.2), "near-trend sample must pass");
        // A 300 ms outlier (wireless spike) must be rejected.
        assert!(!f.offer(t + 15.0, on_trend + 300.0));
        let (acc, rej) = f.counts();
        assert_eq!(rej, 1);
        assert!(acc >= 11);
    }

    #[test]
    fn first_samples_bootstrap_without_trend() {
        let mut f = TrendFilter::new(1.0, true);
        assert!(f.offer(0.0, 3.0));
        assert!(f.offer(15.0, 3.2));
        assert!(f.offer(30.0, 2.9));
        assert!(f.offer(45.0, 3.1));
        assert!(f.offer(60.0, 3.0));
        // Five consistent samples seed the trend.
        assert_eq!(f.len(), 5);
        assert!(f.drift_ppm().is_some());
    }

    #[test]
    fn hostile_bootstrap_outliers_do_not_seed_the_trend() {
        let mut f = TrendFilter::new(1.0, true);
        // The channel is hostile at startup: two wild samples among the
        // first five must neither be "accepted" nor enter the seed.
        assert!(f.offer(0.0, 1.0));
        assert!(!f.offer(5.0, -173.0), "wild sample accepted during bootstrap");
        assert!(f.offer(10.0, 0.5));
        assert!(!f.offer(15.0, -77.0));
        assert!(f.offer(20.0, 1.5));
        // Seeded from the consensus subset only.
        assert_eq!(f.len(), 3);
        let p = f.predict(25.0).unwrap();
        assert!(p.abs() < 10.0, "trend seeded near consensus, p={p}");
    }

    #[test]
    fn no_reestimate_keeps_initial_fit() {
        let mut f = TrendFilter::new(1.0, false);
        for i in 0..10 {
            f.record_unchecked(i as f64 * 10.0, 0.02 * (i as f64 * 10.0));
        }
        f.refit();
        let before = f.drift_ppm().unwrap();
        // Accept several samples from a *different* slope; the fit must
        // not move (this is the pre-§5.3-fix behaviour).
        for i in 10..14 {
            let t = i as f64 * 10.0;
            f.offer(t, 0.02 * 90.0 + 0.001 * (t - 90.0));
        }
        let after = f.drift_ppm().unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn reestimate_adapts_the_fit() {
        let mut f = TrendFilter::new(1.0, true);
        for i in 0..10 {
            f.record_unchecked(i as f64 * 10.0, 0.02 * (i as f64 * 10.0));
        }
        let before = f.drift_ppm().unwrap();
        for i in 10..40 {
            let t = i as f64 * 10.0;
            // Slope gently flattens.
            f.offer(t, 0.02 * 90.0 + 0.005 * (t - 90.0));
        }
        let after = f.drift_ppm().unwrap();
        assert!(after < before, "fit should adapt: {before} -> {after}");
    }

    #[test]
    fn prediction_extends_the_line() {
        let f = seeded_filter(0.05, 20);
        let p = f.predict(1000.0).unwrap();
        assert!((p - 50.0).abs() < 2.0, "p={p}");
    }

    #[test]
    fn counts_start_zero() {
        let f = TrendFilter::new(1.0, true);
        assert_eq!(f.counts(), (0, 0));
        assert!(f.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, prop_assert_eq, props};

    props! {
        /// Samples on a noiseless line are always accepted, whatever the
        /// slope.
        fn clean_line_never_rejected(slope in prop::floats(-0.1..0.1), n in prop::sizes(5..40)) {
            let mut f = TrendFilter::new(1.0, true);
            for i in 0..n {
                let t = i as f64 * 15.0;
                prop_assert!(f.offer(t, slope * t));
            }
            prop_assert_eq!(f.counts().1, 0);
        }

        /// False-ticker verdicts never reject the majority when all
        /// offsets are equal, and never reject more than half of three
        /// agreeing-plus-one-outlier rounds.
        fn false_ticker_rejection_bounded(base in prop::floats(-50.0..50.0), outlier in prop::floats(200.0..500.0)) {
            let offsets = [base, base + 1.0, base - 1.0, base + outlier];
            let v = reject_false_tickers(&offsets, 1.0);
            let rejected = v.iter().filter(|x| **x == FalseTickerVerdict::FalseTicker).count();
            prop_assert!(rejected <= 2);
            prop_assert_eq!(v[3], FalseTickerVerdict::FalseTicker);
        }
    }

    /// The case `proptest` shrank to and pinned in
    /// `proptest-regressions/filter.txt` before the workspace went
    /// hermetic (`cc aad29e72…`): a clean line with slope
    /// −0.01828777755328621 over 15 samples must be fully accepted. Kept
    /// as an explicit unit test so the historical failure stays covered
    /// without the proptest seed-file machinery.
    #[test]
    fn regression_clean_line_slope_neg_0_0183_n15() {
        let slope = -0.018_287_777_553_286_21;
        let n = 15usize;
        let mut f = TrendFilter::new(1.0, true);
        for i in 0..n {
            let t = i as f64 * 15.0;
            assert!(f.offer(t, slope * t), "sample {i} rejected");
        }
        assert_eq!(f.counts().1, 0);
    }
}
