//! MNTP configuration: the four tunable parameters of Algorithm 1 plus
//! the baseline wireless-hint thresholds of §4.2.

/// How (and whether) MNTP applies accepted offsets to the system clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyMode {
    /// Record offsets only; never touch the clock. This is the
    /// measurement configuration of the paper's §5.1/§5.2 comparisons,
    /// where reported offsets are the metric.
    RecordOnly,
    /// Step the clock by each accepted offset.
    Step,
    /// Slew the clock by each accepted offset (bounded rate).
    Slew,
}

/// Full MNTP configuration.
#[derive(Clone, Debug)]
pub struct MntpConfig {
    // ---- wireless-hint thresholds (paper §4.2, "not arbitrary") ----
    /// Minimum acceptable RSSI, dBm. Paper: −75.
    pub rssi_min_dbm: f64,
    /// Maximum acceptable noise, dBm. Paper: −70.
    pub noise_max_dbm: f64,
    /// Minimum acceptable SNR margin (RSSI − noise), dB. Paper: 20.
    pub snr_margin_min_db: f64,

    // ---- the four Algorithm 1 parameters ----
    /// `warmupPeriod`: duration of the warmup phase, seconds.
    pub warmup_period_secs: f64,
    /// `warmupWaitTime`: interval between warmup requests, seconds.
    pub warmup_wait_secs: f64,
    /// `regularWaitTime`: interval between regular requests, seconds.
    pub regular_wait_secs: f64,
    /// `resetPeriod`: warmup + regular duration before a full restart,
    /// seconds.
    pub reset_period_secs: f64,

    // ---- structural knobs ----
    /// Sources queried in parallel during warmup (paper: 3 — the
    /// 0/1/3.pool.ntp.org references).
    pub warmup_sources: usize,
    /// Minimum recorded offsets before the drift trend is trusted
    /// (paper: 10).
    pub min_warmup_samples: usize,
    /// σ multiplier of the squared-error accept band (paper: 1).
    pub filter_sigma: f64,
    /// Re-estimate drift with every accepted sample — the §5.3 fix
    /// discovered with the tuner. Disable only for the ablation that
    /// reproduces the pre-fix failure mode.
    pub reestimate_drift: bool,
    /// Correct the clock's frequency by the estimated drift at the
    /// warmup → regular transition (Algorithm 1 step 16).
    pub drift_correction: bool,
    /// What to do with accepted offsets.
    pub apply_mode: ApplyMode,
    /// In [`ApplyMode::Slew`], step instead of slewing when an accepted
    /// offset exceeds this many ms (ntpd's step threshold, `STEPT`).
    /// A slew is rate-capped, so a large correction takes minutes to
    /// apply — during which every new sample still measures the
    /// uncorrected remainder and fights the trend filter's translated
    /// frame. Stepping past the threshold keeps the filter's
    /// instant-application assumption true. `None` always slews.
    pub step_threshold_ms: Option<f64>,
    /// ntpd's stepout analogue: after this many *consecutive* trend
    /// rejections whose median offset exceeds
    /// [`step_threshold_ms`](MntpConfig::step_threshold_ms), step the
    /// clock by that median anyway. A trend filter on a noisy channel
    /// can reject a genuinely stepped clock forever (its re-anchor
    /// needs a cleaner cluster than the channel will ever produce); a
    /// persistently large offset must eventually win over the filter's
    /// opinion. `None` disables; requires `step_threshold_ms`.
    pub stepout_rejects: Option<u32>,

    // ---- robustness / holdover knobs (beyond the paper) ----
    /// Consecutive regular-phase query failures before the engine gives
    /// up on the network and enters holdover.
    pub holdover_after_failures: u32,
    /// First holdover probe interval, seconds; doubles per further
    /// failure…
    pub holdover_base_wait_secs: f64,
    /// …capped here, seconds.
    pub holdover_max_wait_secs: f64,
}

impl Default for MntpConfig {
    /// The paper's §5.2 long-experiment configuration: hint thresholds as
    /// published, warmup 30 min with requests every 15 s, regular
    /// requests every 15 min, reset every 4 h.
    fn default() -> Self {
        MntpConfig {
            rssi_min_dbm: -75.0,
            noise_max_dbm: -70.0,
            snr_margin_min_db: 20.0,
            warmup_period_secs: 30.0 * 60.0,
            warmup_wait_secs: 15.0,
            regular_wait_secs: 15.0 * 60.0,
            reset_period_secs: 240.0 * 60.0,
            warmup_sources: 3,
            min_warmup_samples: 10,
            filter_sigma: 1.0,
            reestimate_drift: true,
            drift_correction: true,
            apply_mode: ApplyMode::RecordOnly,
            step_threshold_ms: None,
            stepout_rejects: None,
            holdover_after_failures: 3,
            holdover_base_wait_secs: 30.0,
            holdover_max_wait_secs: 480.0,
        }
    }
}

impl MntpConfig {
    /// The §5.1 head-to-head baseline: "we do not consider warmup and
    /// regular periods, and we switched off the drift correction feature"
    /// — requests every `poll_secs` (the paper used 5 s), gate + filter
    /// only.
    pub fn baseline(poll_secs: f64) -> Self {
        MntpConfig {
            warmup_wait_secs: poll_secs,
            regular_wait_secs: poll_secs,
            drift_correction: false,
            ..Default::default()
        }
    }

    /// Construct from the four tuner parameters, everything else default.
    /// Arguments in **minutes**, matching the units of the paper's
    /// Table 2.
    pub fn from_tuner_minutes(
        warmup_period_min: f64,
        warmup_wait_min: f64,
        regular_wait_min: f64,
        reset_period_min: f64,
    ) -> Self {
        MntpConfig {
            warmup_period_secs: warmup_period_min * 60.0,
            warmup_wait_secs: warmup_wait_min * 60.0,
            regular_wait_secs: regular_wait_min * 60.0,
            reset_period_secs: reset_period_min * 60.0,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let c = MntpConfig::default();
        assert_eq!(c.rssi_min_dbm, -75.0);
        assert_eq!(c.noise_max_dbm, -70.0);
        assert_eq!(c.snr_margin_min_db, 20.0);
        assert_eq!(c.warmup_sources, 3);
        assert_eq!(c.min_warmup_samples, 10);
        assert_eq!(c.filter_sigma, 1.0);
        assert!(c.reestimate_drift);
    }

    #[test]
    fn tuner_units_are_minutes() {
        let c = MntpConfig::from_tuner_minutes(30.0, 0.25, 15.0, 240.0);
        assert_eq!(c.warmup_period_secs, 1800.0);
        assert_eq!(c.warmup_wait_secs, 15.0);
        assert_eq!(c.regular_wait_secs, 900.0);
        assert_eq!(c.reset_period_secs, 14_400.0);
    }

    #[test]
    fn baseline_disables_phasing_machinery() {
        let c = MntpConfig::baseline(5.0);
        assert!(!c.drift_correction);
        assert_eq!(c.warmup_wait_secs, 5.0);
        assert_eq!(c.regular_wait_secs, 5.0);
    }
}
