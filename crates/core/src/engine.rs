//! Algorithm 1: the MNTP two-phase clock-synchronization engine.
//!
//! Sans-io: the engine never touches a socket or a clock. The driver
//! calls [`Mntp::on_tick`] with the current *local* time and the current
//! wireless hints; the engine answers with what to do
//! ([`MntpAction::QueryMultiple`] during warmup,
//! [`MntpAction::QuerySingle`] during the regular phase, or
//! [`MntpAction::Wait`] when the gate defers or nothing is due). The
//! driver performs the exchanges and feeds results back through
//! [`Mntp::on_warmup_round`] / [`Mntp::on_regular_sample`]; clock
//! corrections accumulate in a command queue drained with
//! [`Mntp::take_commands`].
//!
//! Phase logic follows the paper exactly:
//!
//! * **Warmup** (steps 4–14): gate on hints; query `warmup_sources` pool
//!   references in parallel every `warmupWaitTime`; reject false tickers
//!   (mean + 1σ); record until `warmupPeriod` has elapsed *and* at least
//!   `min_warmup_samples` offsets are recorded (the trend needs 10
//!   points, §4.2); then estimate drift by least squares.
//! * **Regular** (steps 16–26): correct clock drift; gate on hints;
//!   query a single source every `regularWaitTime`; accept/reject each
//!   sample against the extended trend line; accepted samples correct
//!   the clock and (per the §5.3 fix) re-estimate the drift.
//! * **Reset** (steps 23–24): after `resetPeriod`, restart from warmup.
//!
//! Beyond the paper, the engine has a **holdover** phase for graceful
//! degradation: when `holdover_after_failures` consecutive regular-phase
//! query rounds fail (servers unreachable), it stops expecting samples
//! and *freewheels on the fitted drift model* — the frequency trim
//! already applied keeps the clock running at the estimated true rate,
//! so error grows at the small residual drift instead of the raw
//! oscillator skew. Probes continue with capped exponential backoff;
//! the first successful sample yields [`SampleVerdict::Recovered`],
//! corrects the clock, and re-enters warmup to rebuild the trend. The
//! reset timer is suspended while in holdover (restarting warmup with
//! no reachable servers would discard the very model being freewheeled
//! on).

use clocksim::ClockCommand;
use netsim::WirelessHints;
use ntp_wire::{NtpDuration, NtpTimestamp};

use crate::config::{ApplyMode, MntpConfig};
use crate::filter::{combine_round, reject_false_tickers, TrendFilter};
use crate::gate::HintGate;

/// Which phase of Algorithm 1 the engine is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Steps 4–14: multi-source sampling, trend construction.
    Warmup,
    /// Steps 16–26: single-source sampling, clock correction.
    Regular,
    /// All servers unreachable: freewheel on the fitted drift model and
    /// probe with backoff until one answers.
    Holdover,
}

/// What the driver should do right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MntpAction {
    /// Nothing due, or the gate deferred the request.
    Wait,
    /// Query this many distinct pool sources in parallel (warmup).
    QueryMultiple(usize),
    /// Query one source (regular phase).
    QuerySingle,
}

/// The engine's verdict on a regular-phase sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleVerdict {
    /// Consistent with the trend: recorded (and clock corrected, if an
    /// apply mode is on).
    Accepted {
        /// The sample's offset, ms.
        offset_ms: f64,
    },
    /// Outlier: discarded.
    Rejected {
        /// The discarded offset, ms.
        offset_ms: f64,
    },
    /// First sample after a holdover episode: connectivity is back, the
    /// clock was corrected by this offset, and warmup restarts.
    Recovered {
        /// The recovery sample's offset, ms.
        offset_ms: f64,
    },
}

/// Counters exposed for evaluation and the signals/selection plot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MntpStats {
    /// Warmup rounds completed.
    pub warmup_rounds: u64,
    /// Individual source offsets rejected as false tickers.
    pub false_tickers_rejected: u64,
    /// Regular samples accepted.
    pub accepted: u64,
    /// Regular samples rejected by the trend filter.
    pub rejected: u64,
    /// Queries deferred by the hint gate.
    pub deferred: u64,
    /// Full resets performed.
    pub resets: u64,
    /// Query rounds that failed (all losses).
    pub failures: u64,
    /// Holdover episodes entered.
    pub holdovers: u64,
    /// Holdover episodes ended by a successful sample.
    pub recoveries: u64,
    /// Forced steps after a rejection streak (ntpd stepout analogue).
    pub stepouts: u64,
}

/// The MNTP engine.
#[derive(Clone, Debug)]
pub struct Mntp {
    cfg: MntpConfig,
    gate: HintGate,
    filter: TrendFilter,
    phase: Phase,
    /// Local time the current cycle (warmup start) began.
    cycle_start: Option<NtpTimestamp>,
    /// Local time before which no request is due.
    next_request: Option<NtpTimestamp>,
    /// Drift (ppm) already compensated via frequency trim.
    applied_trim_ppm: f64,
    /// Query rounds failed since the last success (holdover trigger and
    /// backoff exponent).
    consecutive_failures: u32,
    /// Offsets of consecutive rejected regular samples (stepout
    /// tracking; cleared on any accept/recover/reset).
    reject_streak: Vec<f64>,
    pending: Vec<ClockCommand>,
    /// Public counters.
    pub stats: MntpStats,
}

impl Mntp {
    /// New engine in warmup.
    pub fn new(cfg: MntpConfig) -> Self {
        let gate = HintGate::new(&cfg);
        let filter = TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
        Mntp {
            cfg,
            gate,
            filter,
            phase: Phase::Warmup,
            cycle_start: None,
            next_request: None,
            applied_trim_ppm: 0.0,
            consecutive_failures: 0,
            reject_streak: Vec::new(),
            pending: Vec::new(),
            stats: MntpStats::default(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current drift estimate in ppm, once a trend exists.
    pub fn drift_ppm(&self) -> Option<f64> {
        self.filter.drift_ppm()
    }

    /// Predicted trend offset (ms) at local time `now` — the blue
    /// "corrected drift" line of the paper's Figure 12.
    pub fn predicted_offset_ms(&self, now: NtpTimestamp) -> Option<f64> {
        let start = self.cycle_start?;
        self.filter.predict(elapsed_secs(start, now))
    }

    /// Drain the clock commands produced since the last call.
    pub fn take_commands(&mut self) -> Vec<ClockCommand> {
        std::mem::take(&mut self.pending)
    }

    /// Read-only access to the trend filter (tuner / diagnostics).
    pub fn filter(&self) -> &TrendFilter {
        &self.filter
    }

    /// Adjust the regular-phase wait at runtime (the self-tuning hook,
    /// [`crate::autotune`]). Takes effect from the next scheduling
    /// decision.
    pub fn set_regular_wait_secs(&mut self, secs: f64) {
        self.cfg.regular_wait_secs = secs.max(1.0);
    }

    /// The current regular-phase wait, seconds.
    pub fn regular_wait_secs(&self) -> f64 {
        self.cfg.regular_wait_secs
    }

    /// Failures recorded since the last successful round.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    fn reset(&mut self, now: NtpTimestamp) {
        self.phase = Phase::Warmup;
        self.reject_streak.clear();
        self.cycle_start = Some(now);
        self.next_request = Some(now);
        self.filter = TrendFilter::new(self.cfg.filter_sigma, self.cfg.reestimate_drift);
        // The applied frequency trim persists — the clock really is
        // better; the new warmup estimates the *residual* drift.
        self.stats.resets += 1;
    }

    /// Step the engine at local time `now` with the current hints.
    pub fn on_tick(&mut self, now: NtpTimestamp, hints: Option<&WirelessHints>) -> MntpAction {
        let start = *self.cycle_start.get_or_insert(now);
        if self.next_request.is_none() {
            self.next_request = Some(now);
        }
        // Step 23: reset after resetPeriod — suspended during holdover,
        // where discarding the drift model would break the freewheel.
        if self.phase != Phase::Holdover
            && elapsed_secs(start, now) >= self.cfg.reset_period_secs
        {
            self.reset(now);
        }

        // Warmup → regular transition (steps 11–13 + 16).
        if self.phase == Phase::Warmup
            && elapsed_secs(self.cycle_start.unwrap_or(now), now) >= self.cfg.warmup_period_secs
            && self.filter.len() >= self.cfg.min_warmup_samples
        {
            self.filter.refit();
            self.phase = Phase::Regular;
            if self.cfg.drift_correction {
                self.emit_trim_update(now);
            }
        }

        // `next_request` was seeded at the top of the tick; a `None` here
        // would mean a reset cleared it mid-tick, and "due now" is the
        // sane reading of that state.
        let due = self.next_request.unwrap_or(now);
        if now.wrapping_sub(due).is_negative() {
            return MntpAction::Wait;
        }
        // Steps 5 / 17: acquire offset only when the channel is stable.
        // Holdover probes bypass the gate: with every server down, a
        // marginal channel is no reason not to *try* (and a gate stuck
        // unfavorable must never be able to starve recovery).
        if self.phase != Phase::Holdover && !self.gate.favorable(hints) {
            self.stats.deferred += 1;
            return MntpAction::Wait;
        }
        match self.phase {
            Phase::Warmup => MntpAction::QueryMultiple(self.cfg.warmup_sources),
            Phase::Regular | Phase::Holdover => MntpAction::QuerySingle,
        }
    }

    /// Maintain the frequency trim so the clock runs at the estimated
    /// true rate (step 16, re-run each regular round).
    ///
    /// Every emitted trim also shears the recorded history to the new
    /// rate, so the filter's fitted slope is always the *residual*
    /// drift still uncorrected — the next update trims by that
    /// residual, not by the total. (Comparing the post-shear fit
    /// against the cumulative trim would undo each correction on the
    /// following round and leave the clock running at its raw skew.)
    fn emit_trim_update(&mut self, _now: NtpTimestamp) {
        if self.cfg.apply_mode == ApplyMode::RecordOnly {
            return;
        }
        let Some(residual) = self.filter.drift_ppm() else { return };
        if residual.abs() > 0.1 {
            self.pending.push(ClockCommand::TrimFrequencyPpm(residual));
            self.applied_trim_ppm += residual;
            // Future offsets will flatten by `residual`; shear history so
            // the trend keeps predicting what will actually be measured.
            if let Some(start) = self.cycle_start {
                let pivot = elapsed_secs(start, _now);
                self.filter.apply_rate_change(-residual * 1e-3, pivot);
            }
        }
    }

    /// Feed back a completed warmup round: one offset (ms) per source
    /// that answered. Schedules the next warmup request. Returns the
    /// combined (post-false-ticker) offset and whether the trend filter
    /// recorded it, or `None` when the round was empty.
    pub fn on_warmup_round(
        &mut self,
        now: NtpTimestamp,
        offsets_ms: &[f64],
    ) -> Option<(f64, bool)> {
        self.schedule_next(now, self.cfg.warmup_wait_secs);
        if offsets_ms.is_empty() {
            self.stats.failures += 1;
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            return None;
        }
        self.consecutive_failures = 0;
        self.stats.warmup_rounds += 1;
        let verdicts = reject_false_tickers(offsets_ms, self.cfg.filter_sigma);
        self.stats.false_tickers_rejected += verdicts
            .iter()
            .filter(|v| **v == crate::filter::FalseTickerVerdict::FalseTicker)
            .count() as u64;
        let combined = combine_round(offsets_ms, &verdicts);
        let t = elapsed_secs(self.cycle_start.unwrap_or(now), now);
        // Steps 7–9: bootstrap the first min_warmup_samples unchecked,
        // then run the trend accept test on later warmup samples too.
        let recorded = if self.filter.len() < self.cfg.min_warmup_samples {
            self.filter.record_unchecked(t, combined);
            true
        } else {
            self.filter.offer(t, combined)
        };
        Some((combined, recorded))
    }

    /// Feed back a regular-phase sample (offset in ms). Returns the
    /// verdict; accepted samples enqueue clock corrections per the apply
    /// mode. In holdover, any sample at all means the network is back:
    /// the verdict is [`SampleVerdict::Recovered`], the clock is
    /// corrected by the sample, and the engine re-enters warmup to
    /// rebuild its trend (keeping the applied frequency trim).
    pub fn on_regular_sample(&mut self, now: NtpTimestamp, offset_ms: f64) -> SampleVerdict {
        if self.phase == Phase::Holdover {
            return self.recover(now, offset_ms);
        }
        self.consecutive_failures = 0;
        self.schedule_next(now, self.cfg.regular_wait_secs);
        // Step 16 re-runs drift correction each round.
        if self.cfg.drift_correction {
            self.emit_trim_update(now);
        }
        let t = elapsed_secs(self.cycle_start.unwrap_or(now), now);
        if self.filter.offer(t, offset_ms) {
            self.reject_streak.clear();
            self.stats.accepted += 1;
            let offset = NtpDuration::from_seconds_f64(offset_ms / 1e3);
            match self.cfg.apply_mode {
                ApplyMode::RecordOnly => {}
                ApplyMode::Step => {
                    self.pending.push(ClockCommand::Step(offset));
                    self.filter.translate(-offset_ms);
                }
                ApplyMode::Slew => {
                    // Past the step threshold a rate-capped slew takes
                    // minutes, during which every new sample measures
                    // the uncorrected remainder against an
                    // already-translated trend: step instead.
                    if self.cfg.step_threshold_ms.is_some_and(|t| offset_ms.abs() > t) {
                        self.pending.push(ClockCommand::Step(offset));
                    } else {
                        self.pending.push(ClockCommand::Slew(offset));
                    }
                    self.filter.translate(-offset_ms);
                }
            }
            SampleVerdict::Accepted { offset_ms }
        } else {
            self.stats.rejected += 1;
            self.stepout(offset_ms);
            SampleVerdict::Rejected { offset_ms }
        }
    }

    /// Track a rejected offset and force a step once the streak says
    /// the filter — not the clock — is the thing that's wrong. The
    /// trend itself is untouched: it was predicting the *corrected*
    /// clock all along, so stepping the clock to it reconciles the two
    /// without a translate.
    fn stepout(&mut self, offset_ms: f64) {
        let (Some(k), Some(threshold)) = (self.cfg.stepout_rejects, self.cfg.step_threshold_ms)
        else {
            return;
        };
        self.reject_streak.push(offset_ms);
        if self.reject_streak.len() < k.max(1) as usize {
            return;
        }
        let mut sorted = self.reject_streak.clone();
        sorted.sort_by(f64::total_cmp);
        let Some(&median) = sorted.get(sorted.len() / 2) else {
            return; // unreachable: the streak was just pushed to
        };
        self.reject_streak.clear();
        if median.abs() > threshold && self.cfg.apply_mode != ApplyMode::RecordOnly {
            self.stats.stepouts += 1;
            self.pending.push(ClockCommand::Step(NtpDuration::from_seconds_f64(median / 1e3)));
        }
    }

    /// Report a failed query round (every request lost).
    ///
    /// In the regular phase, `holdover_after_failures` consecutive
    /// failures trip the engine into [`Phase::Holdover`]. Holdover
    /// probes back off exponentially from `holdover_base_wait_secs`,
    /// capped at `holdover_max_wait_secs` — the next probe is always
    /// scheduled, so no failure pattern can stop the engine from
    /// querying (the liveness property pinned by the prop tests).
    pub fn on_query_failed(&mut self, now: NtpTimestamp) {
        self.stats.failures += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.phase == Phase::Regular
            && self.consecutive_failures >= self.cfg.holdover_after_failures
        {
            self.phase = Phase::Holdover;
            self.stats.holdovers += 1;
        }
        let wait = match self.phase {
            Phase::Warmup => self.cfg.warmup_wait_secs,
            Phase::Regular => self.cfg.regular_wait_secs,
            Phase::Holdover => {
                let over = self.consecutive_failures.saturating_sub(self.cfg.holdover_after_failures);
                (self.cfg.holdover_base_wait_secs * 2f64.powi(over.min(16) as i32))
                    .min(self.cfg.holdover_max_wait_secs)
            }
        };
        self.schedule_next(now, wait);
    }

    /// A sample arrived while freewheeling: correct the clock, restart
    /// warmup (trim and cycle history retained by the clock, trend
    /// rebuilt from scratch).
    fn recover(&mut self, now: NtpTimestamp, offset_ms: f64) -> SampleVerdict {
        self.stats.recoveries += 1;
        self.consecutive_failures = 0;
        self.reject_streak.clear();
        let offset = NtpDuration::from_seconds_f64(offset_ms / 1e3);
        match self.cfg.apply_mode {
            ApplyMode::RecordOnly => {}
            ApplyMode::Step => self.pending.push(ClockCommand::Step(offset)),
            ApplyMode::Slew => {
                if self.cfg.step_threshold_ms.is_some_and(|t| offset_ms.abs() > t) {
                    self.pending.push(ClockCommand::Step(offset));
                } else {
                    self.pending.push(ClockCommand::Slew(offset));
                }
            }
        }
        self.phase = Phase::Warmup;
        self.cycle_start = Some(now);
        self.filter = TrendFilter::new(self.cfg.filter_sigma, self.cfg.reestimate_drift);
        self.schedule_next(now, self.cfg.warmup_wait_secs);
        SampleVerdict::Recovered { offset_ms }
    }

    fn schedule_next(&mut self, now: NtpTimestamp, wait_secs: f64) {
        self.next_request =
            Some(now.wrapping_add_duration(NtpDuration::from_seconds_f64(wait_secs)));
    }
}

fn elapsed_secs(start: NtpTimestamp, now: NtpTimestamp) -> f64 {
    now.wrapping_sub(start).as_seconds_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(secs: f64) -> NtpTimestamp {
        NtpTimestamp::from_parts(1000, 0)
            .wrapping_add_duration(NtpDuration::from_seconds_f64(secs))
    }

    fn good_hints() -> WirelessHints {
        WirelessHints { rssi_dbm: -60.0, noise_dbm: -92.0 }
    }

    fn bad_hints() -> WirelessHints {
        WirelessHints { rssi_dbm: -80.0, noise_dbm: -65.0 }
    }

    fn fast_cfg() -> MntpConfig {
        MntpConfig {
            warmup_period_secs: 100.0,
            warmup_wait_secs: 10.0,
            regular_wait_secs: 20.0,
            reset_period_secs: 10_000.0,
            min_warmup_samples: 5,
            ..Default::default()
        }
    }

    /// Drive a full warmup with clean samples; returns the engine in the
    /// regular phase at the given time.
    fn warmed_up() -> (Mntp, f64) {
        let mut m = Mntp::new(fast_cfg());
        let mut t = 0.0;
        while m.phase() == Phase::Warmup {
            match m.on_tick(ts(t), Some(&good_hints())) {
                MntpAction::QueryMultiple(n) => {
                    assert_eq!(n, 3);
                    m.on_warmup_round(ts(t), &[1.0, 1.1, 0.9]);
                }
                MntpAction::QuerySingle => break,
                MntpAction::Wait => {}
            }
            t += 1.0;
            assert!(t < 1000.0, "warmup never completed");
        }
        (m, t)
    }

    #[test]
    fn starts_in_warmup_and_queries_multiple() {
        let mut m = Mntp::new(fast_cfg());
        assert_eq!(m.phase(), Phase::Warmup);
        assert_eq!(m.on_tick(ts(0.0), Some(&good_hints())), MntpAction::QueryMultiple(3));
    }

    #[test]
    fn gate_defers_queries() {
        let mut m = Mntp::new(fast_cfg());
        assert_eq!(m.on_tick(ts(0.0), Some(&bad_hints())), MntpAction::Wait);
        assert_eq!(m.stats.deferred, 1);
        // Channel recovers: query goes out.
        assert_eq!(m.on_tick(ts(1.0), Some(&good_hints())), MntpAction::QueryMultiple(3));
    }

    #[test]
    fn warmup_respects_wait_time() {
        let mut m = Mntp::new(fast_cfg());
        assert_eq!(m.on_tick(ts(0.0), Some(&good_hints())), MntpAction::QueryMultiple(3));
        m.on_warmup_round(ts(0.0), &[1.0, 1.0, 1.0]);
        // Next request only after warmup_wait_secs = 10.
        assert_eq!(m.on_tick(ts(5.0), Some(&good_hints())), MntpAction::Wait);
        assert_eq!(m.on_tick(ts(10.0), Some(&good_hints())), MntpAction::QueryMultiple(3));
    }

    #[test]
    fn transitions_to_regular_after_period_and_samples() {
        let (m, t) = warmed_up();
        assert_eq!(m.phase(), Phase::Regular);
        assert!(t >= 100.0, "period must elapse, t={t}");
        assert!(m.stats.warmup_rounds >= 5);
        assert!(m.drift_ppm().is_some());
    }

    #[test]
    fn insufficient_samples_extend_warmup() {
        let mut m = Mntp::new(fast_cfg());
        // Never answer any query: no samples recorded.
        for i in 0..30 {
            let t = i as f64 * 10.0;
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_query_failed(ts(t));
            }
        }
        // Way past warmup_period, but still warming up.
        assert_eq!(m.phase(), Phase::Warmup);
        assert!(m.stats.failures > 10);
    }

    #[test]
    fn regular_phase_accepts_inliers_rejects_outliers() {
        let (mut m, t0) = warmed_up();
        let mut t = t0 + 20.0;
        // On-trend sample (trend ≈ 1.0 ms flat).
        assert_eq!(m.on_tick(ts(t), Some(&good_hints())), MntpAction::QuerySingle);
        assert!(matches!(m.on_regular_sample(ts(t), 1.05), SampleVerdict::Accepted { .. }));
        t += 20.0;
        m.on_tick(ts(t), Some(&good_hints()));
        assert!(matches!(m.on_regular_sample(ts(t), 350.0), SampleVerdict::Rejected { .. }));
        assert_eq!(m.stats.rejected, 1);
    }

    #[test]
    fn false_tickers_rejected_in_warmup() {
        let mut m = Mntp::new(fast_cfg());
        m.on_tick(ts(0.0), Some(&good_hints()));
        m.on_warmup_round(ts(0.0), &[1.0, 1.2, 300.0]);
        assert_eq!(m.stats.false_tickers_rejected, 1);
        // Combined value excludes the false ticker: the recorded point is
        // near 1.1, so a later 1.1-ish round keeps the trend near 1.
        assert!(m.filter().points()[0].1 < 5.0);
    }

    #[test]
    fn reset_after_reset_period() {
        let cfg = MntpConfig { reset_period_secs: 500.0, ..fast_cfg() };
        let mut m = Mntp::new(cfg);
        // Warm up quickly.
        let mut t = 0.0;
        while m.phase() == Phase::Warmup && t < 400.0 {
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_warmup_round(ts(t), &[0.5, 0.6, 0.4]);
            }
            t += 1.0;
        }
        assert_eq!(m.phase(), Phase::Regular);
        // Cross the reset boundary.
        m.on_tick(ts(501.0), Some(&good_hints()));
        assert_eq!(m.phase(), Phase::Warmup);
        assert_eq!(m.stats.resets, 1);
        assert!(m.filter().is_empty(), "trend cleared on reset");
    }

    #[test]
    fn record_only_mode_emits_no_commands() {
        let (mut m, t0) = warmed_up();
        m.on_tick(ts(t0 + 20.0), Some(&good_hints()));
        m.on_regular_sample(ts(t0 + 20.0), 1.0);
        assert!(m.take_commands().is_empty());
    }

    #[test]
    fn step_mode_emits_step_commands() {
        let cfg = MntpConfig { apply_mode: crate::config::ApplyMode::Step, ..fast_cfg() };
        let mut m = Mntp::new(cfg);
        let mut t = 0.0;
        while m.phase() == Phase::Warmup && t < 400.0 {
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_warmup_round(ts(t), &[2.0, 2.1, 1.9]);
            }
            t += 1.0;
        }
        m.on_tick(ts(t + 20.0), Some(&good_hints()));
        m.on_regular_sample(ts(t + 20.0), 2.0);
        let cmds = m.take_commands();
        assert!(
            cmds.iter().any(|c| matches!(c, ClockCommand::Step(_))),
            "expected a step, got {cmds:?}"
        );
    }

    #[test]
    fn slew_mode_steps_past_the_threshold() {
        let mk = |threshold| {
            let cfg = MntpConfig {
                apply_mode: crate::config::ApplyMode::Slew,
                step_threshold_ms: threshold,
                ..fast_cfg()
            };
            let mut m = Mntp::new(cfg);
            let mut t = 0.0;
            while m.phase() == Phase::Warmup && t < 400.0 {
                if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                    m.on_warmup_round(ts(t), &[2.0, 2.1, 1.9]);
                }
                t += 1.0;
            }
            m.on_tick(ts(t + 20.0), Some(&good_hints()));
            m.on_regular_sample(ts(t + 20.0), 2.0);
            m.take_commands()
        };
        // Under the threshold (or with none set): a bounded-rate slew.
        assert!(mk(None).iter().any(|c| matches!(c, ClockCommand::Slew(_))));
        assert!(mk(Some(10.0)).iter().any(|c| matches!(c, ClockCommand::Slew(_))));
        // Past it: the correction is applied as a step.
        assert!(mk(Some(0.5)).iter().any(|c| matches!(c, ClockCommand::Step(_))));
    }

    #[test]
    fn rejection_streak_forces_a_stepout() {
        let cfg = MntpConfig {
            apply_mode: crate::config::ApplyMode::Slew,
            step_threshold_ms: Some(50.0),
            stepout_rejects: Some(3),
            ..fast_cfg()
        };
        let mut m = Mntp::new(cfg);
        let mut t = 0.0;
        while m.phase() == Phase::Warmup && t < 400.0 {
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_warmup_round(ts(t), &[1.0, 1.1, 0.9]);
            }
            t += 1.0;
        }
        // Noisy +80 ms-ish samples: each is rejected by the trend, and
        // the spread keeps the filter's own re-anchor (residual bar a
        // few ms) from firing — the stuck-client shape.
        let offsets = [71.0, 95.0, 83.0];
        let mut stepped = Vec::new();
        for off in offsets {
            m.on_tick(ts(t + 20.0), Some(&good_hints()));
            t += 20.0;
            assert!(matches!(m.on_regular_sample(ts(t), off), SampleVerdict::Rejected { .. }));
            stepped.extend(m.take_commands());
        }
        assert_eq!(m.stats.stepouts, 1);
        let step = stepped
            .iter()
            .find_map(|c| match c {
                ClockCommand::Step(d) => Some(d.as_seconds_f64() * 1e3),
                _ => None,
            })
            .expect("third consecutive reject forces a step");
        assert!((step - 83.0).abs() < 1e-6, "steps by the streak median, got {step}");
        // The streak is consumed: three more small rejects don't step.
        for off in [9.0, 9.5, 10.0] {
            m.on_tick(ts(t + 20.0), Some(&good_hints()));
            t += 20.0;
            m.on_regular_sample(ts(t), off);
        }
        assert_eq!(m.stats.stepouts, 1);
    }

    #[test]
    fn missing_hints_still_work() {
        // Wired/cellular host: gate passes, algorithm runs.
        let mut m = Mntp::new(fast_cfg());
        assert_eq!(m.on_tick(ts(0.0), None), MntpAction::QueryMultiple(3));
    }

    #[test]
    fn predicted_offset_tracks_trend() {
        let (m, t) = warmed_up();
        let p = m.predicted_offset_ms(ts(t + 100.0)).unwrap();
        assert!((p - 1.0).abs() < 0.5, "prediction {p} should sit near 1 ms");
    }

    #[test]
    fn empty_warmup_round_counts_as_failure() {
        let mut m = Mntp::new(fast_cfg());
        m.on_tick(ts(0.0), Some(&good_hints()));
        m.on_warmup_round(ts(0.0), &[]);
        assert_eq!(m.stats.failures, 1);
        assert_eq!(m.stats.warmup_rounds, 0);
    }

    /// Drive the warmed-up engine through `n` consecutive regular-phase
    /// failures, returning the time of the last one.
    fn fail_times(m: &mut Mntp, mut t: f64, n: usize) -> f64 {
        for _ in 0..n {
            while m.on_tick(ts(t), Some(&good_hints())) != MntpAction::QuerySingle {
                t += 1.0;
                assert!(t < 10_000.0, "query never became due");
            }
            m.on_query_failed(ts(t));
        }
        t
    }

    #[test]
    fn consecutive_failures_trip_holdover_with_longer_wait() {
        let (mut m, t0) = warmed_up();
        let t = fail_times(&mut m, t0, 3);
        assert_eq!(m.phase(), Phase::Holdover);
        assert_eq!(m.stats.holdovers, 1);
        assert_eq!(m.consecutive_failures(), 3);
        // First holdover probe waits holdover_base_wait_secs (30), not
        // the 20 s regular wait.
        assert_eq!(m.on_tick(ts(t + 20.0), Some(&good_hints())), MntpAction::Wait);
        assert_eq!(m.on_tick(ts(t + 31.0), Some(&good_hints())), MntpAction::QuerySingle);
    }

    #[test]
    fn holdover_backoff_doubles_to_cap() {
        let (mut m, t0) = warmed_up();
        let mut t = fail_times(&mut m, t0, 3);
        assert_eq!(m.phase(), Phase::Holdover);
        // Keep failing; gaps between probes double 30 → 480 and stay.
        let mut last = t;
        for expect in [30.0, 60.0, 120.0, 240.0, 480.0, 480.0] {
            while m.on_tick(ts(t), Some(&good_hints())) != MntpAction::QuerySingle {
                t += 1.0;
                assert!(t < 20_000.0, "probe never became due");
            }
            assert!(
                (t - last - expect).abs() <= 1.0,
                "gap {} vs expected {expect}",
                t - last
            );
            last = t;
            m.on_query_failed(ts(t));
        }
    }

    #[test]
    fn holdover_probe_bypasses_the_gate() {
        let (mut m, t0) = warmed_up();
        let mut t = fail_times(&mut m, t0, 3);
        assert_eq!(m.phase(), Phase::Holdover);
        let deferred_before = m.stats.deferred;
        // Channel is terrible, but the probe still goes out when due —
        // a stuck-unfavorable gate must not starve recovery.
        let mut action = MntpAction::Wait;
        for _ in 0..600 {
            action = m.on_tick(ts(t), Some(&bad_hints()));
            if action != MntpAction::Wait {
                break;
            }
            t += 1.0;
        }
        assert_eq!(action, MntpAction::QuerySingle);
        assert_eq!(m.stats.deferred, deferred_before);
    }

    #[test]
    fn recovery_steps_clock_and_restarts_warmup() {
        let cfg = MntpConfig { apply_mode: ApplyMode::Step, ..fast_cfg() };
        let mut m = Mntp::new(cfg);
        let mut t = 0.0;
        while m.phase() == Phase::Warmup && t < 400.0 {
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_warmup_round(ts(t), &[1.0, 1.1, 0.9]);
            }
            t += 1.0;
        }
        assert_eq!(m.phase(), Phase::Regular);
        m.take_commands();
        t = fail_times(&mut m, t, 3);
        assert_eq!(m.phase(), Phase::Holdover);
        // Network comes back: the next probe's sample is the recovery.
        while m.on_tick(ts(t), Some(&good_hints())) != MntpAction::QuerySingle {
            t += 1.0;
        }
        let v = m.on_regular_sample(ts(t), -250.0);
        assert_eq!(v, SampleVerdict::Recovered { offset_ms: -250.0 });
        assert_eq!(m.phase(), Phase::Warmup);
        assert_eq!(m.stats.recoveries, 1);
        assert_eq!(m.consecutive_failures(), 0);
        let cmds = m.take_commands();
        assert!(
            cmds.iter().any(|c| matches!(c, ClockCommand::Step(_))),
            "recovery must correct the clock, got {cmds:?}"
        );
        assert!(m.filter().is_empty(), "trend rebuilt from scratch");
    }

    #[test]
    fn reset_timer_suspended_in_holdover() {
        let cfg = MntpConfig { reset_period_secs: 500.0, ..fast_cfg() };
        let mut m = Mntp::new(cfg);
        let mut t = 0.0;
        while m.phase() == Phase::Warmup && t < 400.0 {
            if let MntpAction::QueryMultiple(_) = m.on_tick(ts(t), Some(&good_hints())) {
                m.on_warmup_round(ts(t), &[1.0, 1.1, 0.9]);
            }
            t += 1.0;
        }
        assert_eq!(m.phase(), Phase::Regular);
        fail_times(&mut m, t, 3);
        assert_eq!(m.phase(), Phase::Holdover);
        // Far past the reset boundary: still freewheeling, no reset —
        // restarting warmup with no reachable servers would discard the
        // drift model being freewheeled on.
        m.on_tick(ts(2000.0), Some(&good_hints()));
        assert_eq!(m.phase(), Phase::Holdover);
        assert_eq!(m.stats.resets, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    fn mk_ts(secs: f64) -> NtpTimestamp {
        NtpTimestamp::from_parts(1000, 0)
            .wrapping_add_duration(NtpDuration::from_seconds_f64(secs))
    }

    props! {
        /// Liveness: after ANY sequence of query successes (1) and
        /// failures (0) — including those that trip holdover — the
        /// engine always asks for another query within a bounded wait.
        /// No reachable state leaves `on_tick` returning `Wait` forever.
        fn scheduler_always_queries_again(events in prop::vecs(prop::ints(0..2), 0..48)) {
            let cfg = MntpConfig {
                warmup_period_secs: 60.0,
                warmup_wait_secs: 5.0,
                regular_wait_secs: 20.0,
                reset_period_secs: 4000.0,
                min_warmup_samples: 5,
                ..Default::default()
            };
            // Longest legal gap is holdover_max_wait_secs = 480.
            let bound = cfg.holdover_max_wait_secs + 120.0;
            let hints = WirelessHints { rssi_dbm: -60.0, noise_dbm: -92.0 };
            let mut m = Mntp::new(cfg);
            let mut t = 0.0;
            for &ev in &events {
                let start = t;
                let action = loop {
                    let a = m.on_tick(mk_ts(t), Some(&hints));
                    if a != MntpAction::Wait {
                        break a;
                    }
                    t += 1.0;
                    prop_assert!(
                        t - start < bound,
                        "engine stopped querying in phase {:?} after {} events",
                        m.phase(),
                        events.len()
                    );
                };
                match (action, ev == 1) {
                    (MntpAction::QueryMultiple(_), true) => {
                        m.on_warmup_round(mk_ts(t), &[1.0, 1.1, 0.9]);
                    }
                    (MntpAction::QuerySingle, true) => {
                        m.on_regular_sample(mk_ts(t), 1.0);
                    }
                    (_, false) => m.on_query_failed(mk_ts(t)),
                    (MntpAction::Wait, true) => unreachable!("loop broke on non-Wait"),
                }
            }
            // After the whole history, one more query must still come.
            let start = t;
            loop {
                if m.on_tick(mk_ts(t), Some(&hints)) != MntpAction::Wait {
                    break;
                }
                t += 1.0;
                prop_assert!(
                    t - start < bound,
                    "engine never queried again, stuck in phase {:?}",
                    m.phase()
                );
            }
        }
    }
}
