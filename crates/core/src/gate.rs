//! The wireless-hint gate (paper §4.1–4.2).
//!
//! MNTP emits a synchronization request only when **all three** baseline
//! thresholds hold:
//!
//! * RSSI strictly greater than −75 dBm,
//! * noise strictly less than −70 dBm,
//! * SNR margin (RSSI − noise) at least 20 dB.
//!
//! "These values are not arbitrary, rather they emerged through an
//! iterative process of refining our experiments" — they are plain
//! config here ([`crate::MntpConfig`]) so the `ablation_thresholds` bench
//! can sweep them.

use netsim::WirelessHints;

use crate::config::MntpConfig;

/// The request gate: thresholds plus defer/pass counters.
#[derive(Clone, Debug)]
pub struct HintGate {
    rssi_min_dbm: f64,
    noise_max_dbm: f64,
    snr_margin_min_db: f64,
    passed: u64,
    deferred: u64,
}

impl HintGate {
    /// Build from a config's thresholds.
    pub fn new(cfg: &MntpConfig) -> Self {
        HintGate {
            rssi_min_dbm: cfg.rssi_min_dbm,
            noise_max_dbm: cfg.noise_max_dbm,
            snr_margin_min_db: cfg.snr_margin_min_db,
            passed: 0,
            deferred: 0,
        }
    }

    /// `favorableSNRCondition()` of Algorithm 1. `None` hints (no wireless
    /// adaptor to query, e.g. wired or cellular) pass the gate: MNTP
    /// degrades to plain filtered SNTP when hints are unavailable.
    pub fn favorable(&mut self, hints: Option<&WirelessHints>) -> bool {
        let ok = match hints {
            None => true,
            Some(h) => {
                h.rssi_dbm > self.rssi_min_dbm
                    && h.noise_dbm < self.noise_max_dbm
                    && h.snr_margin_db() >= self.snr_margin_min_db
            }
        };
        if ok {
            self.passed += 1;
        } else {
            self.deferred += 1;
        }
        ok
    }

    /// Checks that passed.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Checks that deferred a request.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> HintGate {
        HintGate::new(&MntpConfig::default())
    }

    fn hints(rssi: f64, noise: f64) -> WirelessHints {
        WirelessHints { rssi_dbm: rssi, noise_dbm: noise }
    }

    #[test]
    fn good_channel_passes() {
        let mut g = gate();
        assert!(g.favorable(Some(&hints(-65.0, -90.0))));
        assert_eq!(g.passed(), 1);
    }

    #[test]
    fn weak_rssi_defers() {
        let mut g = gate();
        assert!(!g.favorable(Some(&hints(-76.0, -99.0))));
        assert_eq!(g.deferred(), 1);
    }

    #[test]
    fn high_noise_defers() {
        let mut g = gate();
        // SNR margin is 31 dB but noise itself breaches −70.
        assert!(!g.favorable(Some(&hints(-38.0, -69.0))));
    }

    #[test]
    fn thin_snr_margin_defers() {
        let mut g = gate();
        // Both absolute thresholds fine, margin only 15 dB.
        assert!(!g.favorable(Some(&hints(-74.0, -89.0))));
    }

    #[test]
    fn exact_boundaries() {
        let mut g = gate();
        // RSSI must be strictly greater than −75.
        assert!(!g.favorable(Some(&hints(-75.0, -99.0))));
        // Noise must be strictly less than −70.
        assert!(!g.favorable(Some(&hints(-40.0, -70.0))));
        // Margin of exactly 20 dB passes (≥).
        assert!(g.favorable(Some(&hints(-70.0, -90.0))));
    }

    #[test]
    fn missing_hints_pass() {
        let mut g = gate();
        assert!(g.favorable(None));
    }

    #[test]
    fn counters_accumulate() {
        let mut g = gate();
        g.favorable(Some(&hints(-60.0, -95.0)));
        g.favorable(Some(&hints(-80.0, -95.0)));
        g.favorable(Some(&hints(-60.0, -60.0)));
        assert_eq!(g.passed(), 1);
        assert_eq!(g.deferred(), 2);
    }
}
