//! The client-stack abstraction: one [`Discipline`] trait behind which
//! every clock-synchronization client in the workspace lives.
//!
//! A discipline is the *decision* half of a client: when to poll, which
//! servers to ask, what to make of each reply, and which clock commands
//! to emit. The *mechanics* — ticking simulated time, carrying packets
//! through the (possibly fault-injected) network, applying clock
//! commands, sampling ground truth — live in exactly one place, the
//! generic [`crate::driver::drive`] loop. Three disciplines ship
//! in-tree:
//!
//! * [`SntpDiscipline`] — naive SNTP (fixed cadence, step on every
//!   reply) and the paper's §5.1 gate+filter baseline, selected by
//!   constructor;
//! * [`MntpDiscipline`] — the full Algorithm 1 engine, optionally
//!   wrapped with the AIMD auto-tuner and/or the hardened
//!   health-tracking stack;
//! * `NtpdDiscipline` (in the `ntpd-sim` crate) — the RFC 5905
//!   mitigation pipeline.
//!
//! The trait is object-safe on purpose: the fleet simulator drives a
//! heterogeneous `Vec<Box<dyn Discipline>>` of thousands of clients
//! through the same hooks.

use clocksim::{ClockCommand, ClockControl, SimClock};
use clocksim::time::SimTime;
use netsim::WirelessHints;
use sntp::{CompletedExchange, ExchangeError, HealthTracker, ServerSelect};

use crate::autotune::AutoTuner;
use crate::config::MntpConfig;
use crate::driver::{QueryOutcome, RobustConfig};
use crate::engine::{Mntp, MntpAction, Phase, SampleVerdict};
use crate::filter::TrendFilter;
use crate::gate::HintGate;

/// What a discipline wants to do at one tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Do nothing this tick.
    Idle {
        /// Record a [`QueryOutcome::Deferred`] event for this tick
        /// (true when a scheduler *wanted* to poll but a gate said no;
        /// false when the tick simply wasn't a poll instant).
        record_deferred: bool,
    },
    /// Query these servers, in order, this tick.
    Query(Vec<usize>),
}

/// One server's answer within a query round.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeResult {
    /// The server that was queried.
    pub server_id: usize,
    /// What came back.
    pub outcome: Result<CompletedExchange, ExchangeError>,
}

/// A clock-synchronization client stack, as seen by the generic driver.
///
/// Per tick the driver calls [`poll`](Discipline::poll); if it returns
/// [`Directive::Query`] the driver performs one exchange per listed
/// server and hands the full round to
/// [`complete`](Discipline::complete); finally
/// [`take_commands`](Discipline::take_commands) is drained and applied
/// to the client clock. Implementations read the clock themselves (via
/// the `clock` argument) at exactly the points their algorithms need a
/// local timestamp — the driver never pre-reads it for them, because
/// exchanges advance the clock position and the *post*-exchange local
/// time is what engines like MNTP observe.
///
/// `Send` is a supertrait: the fleet runner moves boxed disciplines to
/// worker threads when ticking shards in parallel. Every discipline is
/// plain owned data, so the bound costs implementations nothing.
pub trait Discipline: Send {
    /// Whether this discipline consumes link-layer wireless hints. The
    /// driver only samples (and thereby advances) the testbed's hint
    /// process for disciplines that want it, so hint-blind clients
    /// (ntpd, naive SNTP) perturb nothing they never read.
    fn wants_hints(&self) -> bool {
        true
    }

    /// Decide what to do at tick instant `t`. Server selection draws
    /// from `select` — the shared `ServerPool` in single-client
    /// drivers, a per-client `PickLane` in the fleet runner.
    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive;

    /// Digest a completed query round (one entry per server queried, in
    /// query order). Returns the outcome to record, if any.
    fn complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome>;

    /// Drain pending clock commands; the driver applies them at the
    /// current tick instant.
    fn take_commands(&mut self) -> Vec<ClockCommand>;
}

/// Which kind of round an [`MntpDiscipline`] has in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RoundKind {
    Single,
    Warmup,
}

/// The full MNTP Algorithm 1 engine as a [`Discipline`].
///
/// Three configurations, matching the three historical driver loops:
/// [`full`](MntpDiscipline::full) (plain engine),
/// [`autotuned`](MntpDiscipline::autotuned) (AIMD wait tuning), and
/// [`hardened`](MntpDiscipline::hardened) (health-tracked server
/// selection, kiss-o'-death honoring, holdover observability).
pub struct MntpDiscipline {
    engine: Mntp,
    tuner: Option<AutoTuner>,
    health: Option<HealthTracker>,
    round: RoundKind,
    /// When set, regular-phase rounds query this many *distinct*
    /// servers and run intersection/cluster/combine selection
    /// ([`crate::selection::select_round`]) over the answers instead of
    /// trusting a single source.
    resilient_fanout: Option<usize>,
}

impl MntpDiscipline {
    /// Plain engine: pool-uniform server selection, no tuner.
    pub fn full(cfg: MntpConfig) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: None,
            health: None,
            round: RoundKind::Single,
            resilient_fanout: None,
        }
    }

    /// Engine plus the AIMD self-tuner adjusting the regular-phase wait.
    pub fn autotuned(cfg: MntpConfig, tune: crate::autotune::AutoTuneConfig) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: Some(AutoTuner::new(tune)),
            health: None,
            round: RoundKind::Single,
            resilient_fanout: None,
        }
    }

    /// The hardened stack: server selection through a health tracker
    /// sized for a pool of `pool_len` servers, per
    /// [`RobustConfig::health`].
    pub fn hardened(cfg: MntpConfig, rcfg: &RobustConfig, pool_len: usize) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: None,
            health: Some(HealthTracker::new(pool_len, rcfg.health.clone(), rcfg.health_seed)),
            round: RoundKind::Single,
            resilient_fanout: None,
        }
    }

    /// The falseticker-resilient stack: [`hardened`] plus regular-phase
    /// fan-out — every regular round queries `fanout` distinct servers
    /// and feeds the answers through the RFC 5905-style
    /// intersection/cluster/combine selection, so a pool member that
    /// turns falseticker *mid-run* (after warmup vetting) is outvoted
    /// and demoted instead of steering the clock.
    ///
    /// [`hardened`]: MntpDiscipline::hardened
    pub fn resilient(
        cfg: MntpConfig,
        rcfg: &RobustConfig,
        pool_len: usize,
        fanout: usize,
    ) -> Self {
        let mut d = MntpDiscipline::hardened(cfg, rcfg, pool_len);
        d.resilient_fanout = Some(fanout.clamp(2, pool_len.max(2)));
        d
    }

    /// Attach an AIMD wait tuner to any stack (builder-style). The
    /// hardened and resilient constructors ship without one; a fleet
    /// that wants rejection streaks to speed sampling up — so a stepped
    /// or re-anchoring client re-converges in rounds, not multiples of
    /// the full regular wait — opts in here.
    pub fn with_autotune(mut self, tune: crate::autotune::AutoTuneConfig) -> Self {
        self.tuner = Some(AutoTuner::new(tune));
        self
    }

    /// Hand the tuner back (for reporting), consuming the discipline.
    pub fn into_tuner(self) -> Option<AutoTuner> {
        self.tuner
    }

    /// Observability: the engine's current phase.
    pub fn phase(&self) -> Phase {
        self.engine.phase()
    }

    fn warmup_complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> QueryOutcome {
        let ts = t.as_secs_f64();
        let mut offsets = Vec::new();
        for r in round {
            match r.outcome {
                Ok(done) => {
                    if let Some(h) = &mut self.health {
                        h.on_success(r.server_id, ts);
                    }
                    offsets.push(done.sample.offset.as_millis_f64());
                }
                Err(ExchangeError::KissODeath(code)) => {
                    if let Some(h) = &mut self.health {
                        h.on_kod(r.server_id, code, ts);
                    }
                }
                Err(_) => {
                    if let Some(h) = &mut self.health {
                        h.on_failure(r.server_id, ts);
                    }
                }
            }
        }
        if offsets.is_empty() {
            self.engine.on_query_failed(clock.now(t));
            return QueryOutcome::Failed;
        }
        if self.tuner.is_some() {
            // The autotuned driver never attributed false-ticker
            // rejections per round; preserved for artifact stability.
            self.engine.on_warmup_round(clock.now(t), &offsets);
            return QueryOutcome::WarmupRound { offsets_ms: offsets, false_tickers: 0 };
        }
        let before = self.engine.stats.false_tickers_rejected;
        self.engine.on_warmup_round(clock.now(t), &offsets);
        QueryOutcome::WarmupRound {
            offsets_ms: offsets,
            false_tickers: (self.engine.stats.false_tickers_rejected - before) as usize,
        }
    }

    /// A fan-out regular round: health accounting for every entry, then
    /// selection over the answers. The combined offset feeds the engine
    /// exactly like a single-server sample; servers the selection
    /// discarded are demoted in the health tracker so future rounds
    /// de-prioritize them.
    fn resilient_complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> QueryOutcome {
        let ts = t.as_secs_f64();
        for r in round {
            match r.outcome {
                Ok(_) => {
                    if let Some(h) = &mut self.health {
                        h.on_success(r.server_id, ts);
                    }
                }
                Err(ExchangeError::KissODeath(code)) => {
                    if let Some(h) = &mut self.health {
                        h.on_kod(r.server_id, code, ts);
                    }
                }
                Err(_) => {
                    if let Some(h) = &mut self.health {
                        h.on_failure(r.server_id, ts);
                    }
                }
            }
        }
        match crate::selection::select_round(round) {
            Some(sel) => {
                if let Some(h) = &mut self.health {
                    for id in &sel.discarded {
                        h.on_failure(*id, ts);
                    }
                }
                let verdict = self.engine.on_regular_sample(clock.now(t), sel.offset_ms);
                if let Some(tu) = &mut self.tuner {
                    self.engine.set_regular_wait_secs(tu.on_verdict(&verdict));
                }
                match verdict {
                    SampleVerdict::Accepted { offset_ms } => QueryOutcome::Accepted { offset_ms },
                    SampleVerdict::Rejected { offset_ms } => QueryOutcome::Rejected { offset_ms },
                    SampleVerdict::Recovered { offset_ms } => QueryOutcome::Recovered { offset_ms },
                }
            }
            None => {
                // No majority clique (or nothing answered): the round
                // produced no trustworthy sample. Surface a KoD if one
                // arrived — the fleet's rate accounting depends on it.
                let kod = round.iter().find_map(|r| match r.outcome {
                    Err(ExchangeError::KissODeath(code)) => Some(code),
                    _ => None,
                });
                self.engine.on_query_failed(clock.now(t));
                match kod {
                    Some(code) => QueryOutcome::KissODeath { code },
                    None if self.engine.phase() == Phase::Holdover => {
                        QueryOutcome::HoldoverFailed {
                            predicted_ms: self.engine.predicted_offset_ms(clock.now(t)),
                        }
                    }
                    None => QueryOutcome::Failed,
                }
            }
        }
    }

    fn single_complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> QueryOutcome {
        let ts = t.as_secs_f64();
        let Some(r) = round.first() else {
            return QueryOutcome::Failed;
        };
        match r.outcome {
            Ok(done) => {
                if let Some(h) = &mut self.health {
                    h.on_success(r.server_id, ts);
                }
                let ms = done.sample.offset.as_millis_f64();
                let verdict = self.engine.on_regular_sample(clock.now(t), ms);
                if let Some(tu) = &mut self.tuner {
                    self.engine.set_regular_wait_secs(tu.on_verdict(&verdict));
                }
                match verdict {
                    SampleVerdict::Accepted { offset_ms } => QueryOutcome::Accepted { offset_ms },
                    SampleVerdict::Rejected { offset_ms } => QueryOutcome::Rejected { offset_ms },
                    SampleVerdict::Recovered { offset_ms } => QueryOutcome::Recovered { offset_ms },
                }
            }
            Err(err) => {
                if self.health.is_some() {
                    let noted = match err {
                        ExchangeError::KissODeath(code) => {
                            if let Some(h) = &mut self.health {
                                h.on_kod(r.server_id, code, ts);
                            }
                            Some(QueryOutcome::KissODeath { code })
                        }
                        _ => {
                            if let Some(h) = &mut self.health {
                                h.on_failure(r.server_id, ts);
                            }
                            None
                        }
                    };
                    self.engine.on_query_failed(clock.now(t));
                    match noted {
                        Some(o) => o,
                        None if self.engine.phase() == Phase::Holdover => {
                            QueryOutcome::HoldoverFailed {
                                predicted_ms: self.engine.predicted_offset_ms(clock.now(t)),
                            }
                        }
                        None => QueryOutcome::Failed,
                    }
                } else {
                    self.engine.on_query_failed(clock.now(t));
                    if let Some(tu) = &mut self.tuner {
                        self.engine.set_regular_wait_secs(tu.on_failure());
                    }
                    QueryOutcome::Failed
                }
            }
        }
    }
}

impl Discipline for MntpDiscipline {
    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive {
        let now_local = clock.now(t);
        let deferred_before = self.engine.stats.deferred;
        match self.engine.on_tick(now_local, hints) {
            MntpAction::Wait => Directive::Idle {
                record_deferred: self.engine.stats.deferred > deferred_before,
            },
            MntpAction::QueryMultiple(n) => {
                self.round = RoundKind::Warmup;
                let ids = match &mut self.health {
                    Some(h) => h.pick_distinct(n, t.as_secs_f64()),
                    None => select.pick_distinct(n),
                };
                Directive::Query(ids)
            }
            MntpAction::QuerySingle => {
                self.round = RoundKind::Single;
                match self.resilient_fanout {
                    Some(n) => {
                        let ids = match &mut self.health {
                            Some(h) => h.pick_distinct(n, t.as_secs_f64()),
                            None => select.pick_distinct(n),
                        };
                        Directive::Query(ids)
                    }
                    None => {
                        let id = match &mut self.health {
                            Some(h) => h.pick(t.as_secs_f64()),
                            None => select.pick(),
                        };
                        Directive::Query(vec![id])
                    }
                }
            }
        }
    }

    fn complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome> {
        Some(match self.round {
            RoundKind::Warmup => self.warmup_complete(t, clock, round),
            RoundKind::Single if self.resilient_fanout.is_some() => {
                self.resilient_complete(t, clock, round)
            }
            RoundKind::Single => self.single_complete(t, clock, round),
        })
    }

    fn take_commands(&mut self) -> Vec<ClockCommand> {
        self.engine.take_commands()
    }
}

/// Plain SNTP as a [`Discipline`]: either the naive client (poll on a
/// fixed cadence, step the clock on every reply — what a stock mobile
/// SNTP client does) or the paper's §5.1 baseline (hint gate + trend
/// filter over a fixed cadence, clock untouched).
pub struct SntpDiscipline {
    gate: Option<HintGate>,
    filter: Option<TrendFilter>,
    step_on_reply: bool,
    /// Self-paced cadence, seconds. `None` means "query every driver
    /// tick" (the historical single-client loops tick at the poll
    /// period); the fleet world ticks faster than any one client polls,
    /// so fleet clients pace themselves.
    poll_period_secs: Option<f64>,
    polls_done: u64,
    pending: Vec<ClockCommand>,
}

impl SntpDiscipline {
    /// The §5.1 baseline: gate + filter, no clock commands.
    pub fn baseline(cfg: &MntpConfig) -> Self {
        SntpDiscipline {
            gate: Some(HintGate::new(cfg)),
            filter: Some(TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift)),
            step_on_reply: false,
            poll_period_secs: None,
            polls_done: 0,
            pending: Vec::new(),
        }
    }

    /// The naive client: no gate, no filter, step on every reply.
    pub fn naive() -> Self {
        SntpDiscipline {
            gate: None,
            filter: None,
            step_on_reply: true,
            poll_period_secs: None,
            polls_done: 0,
            pending: Vec::new(),
        }
    }

    /// Make the discipline pace itself at `period_secs` instead of
    /// querying on every driver tick (builder-style).
    pub fn self_paced(mut self, period_secs: f64) -> Self {
        self.poll_period_secs = Some(period_secs);
        self
    }
}

impl Discipline for SntpDiscipline {
    fn wants_hints(&self) -> bool {
        self.gate.is_some()
    }

    fn poll(
        &mut self,
        t: SimTime,
        _clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive {
        if let Some(period) = self.poll_period_secs {
            // Due when t reaches the next multiple of the period; both
            // sides are exact products, so no epsilon is needed.
            if t.as_secs_f64() < self.polls_done as f64 * period {
                return Directive::Idle { record_deferred: false };
            }
            self.polls_done += 1;
        }
        if let Some(g) = &mut self.gate {
            if !g.favorable(hints) {
                return Directive::Idle { record_deferred: true };
            }
        }
        Directive::Query(vec![select.pick()])
    }

    fn complete(
        &mut self,
        t: SimTime,
        _clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome> {
        let Some(r) = round.first() else {
            return Some(QueryOutcome::Failed);
        };
        Some(match r.outcome {
            Ok(done) => {
                let ms = done.sample.offset.as_millis_f64();
                if self.step_on_reply {
                    self.pending.push(ClockCommand::Step(done.sample.offset));
                }
                match &mut self.filter {
                    Some(f) => {
                        if f.offer(t.as_secs_f64(), ms) {
                            QueryOutcome::Accepted { offset_ms: ms }
                        } else {
                            QueryOutcome::Rejected { offset_ms: ms }
                        }
                    }
                    None => QueryOutcome::Accepted { offset_ms: ms },
                }
            }
            Err(_) => QueryOutcome::Failed,
        })
    }

    fn take_commands(&mut self) -> Vec<ClockCommand> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::rng::SimRng;
    use clocksim::time::SimDuration;
    use clocksim::OscillatorConfig;
    use ntp_wire::NtpDuration;
    use sntp::exchange::CompletedExchange;
    use sntp::{OffsetSample, PickLane};

    fn mk_clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(20.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn good_hints() -> WirelessHints {
        WirelessHints { rssi_dbm: -40.0, noise_dbm: -95.0 }
    }

    fn ok(server_id: usize, offset_ms: f64) -> ExchangeResult {
        let sample = OffsetSample {
            offset: NtpDuration::from_seconds_f64(offset_ms / 1e3),
            delay: NtpDuration::from_seconds_f64(0.02),
            t1: ntp_wire::NtpTimestamp::from_parts(0, 0),
            t4: ntp_wire::NtpTimestamp::from_parts(0, 0),
            stratum: 2,
        };
        ExchangeResult {
            server_id,
            outcome: Ok(CompletedExchange {
                sample,
                true_fwd: SimDuration::from_millis(10),
                true_back: SimDuration::from_millis(10),
                completed_at: SimTime::ZERO,
                server_id,
            }),
        }
    }

    /// Drive a discipline for `secs` one-second ticks, answering every
    /// queried server via `respond`. Returns how many query rounds the
    /// discipline issued in each half of the horizon.
    fn drive_for(
        d: &mut MntpDiscipline,
        clk: &mut SimClock,
        secs: u64,
        mut respond: impl FnMut(usize, usize) -> ExchangeResult,
    ) -> (u64, u64) {
        let hints = good_hints();
        let mut lane = PickLane::new(4, 0x77);
        let (mut first_half, mut second_half) = (0u64, 0u64);
        let mut rounds_done = 0usize;
        for s in 0..secs {
            let t = SimTime::ZERO + SimDuration::from_secs_f64(s as f64);
            match d.poll(t, clk, Some(&hints), &mut lane) {
                Directive::Idle { .. } => {}
                Directive::Query(ids) => {
                    if s < secs / 2 {
                        first_half += 1;
                    } else {
                        second_half += 1;
                    }
                    let round: Vec<ExchangeResult> =
                        ids.iter().map(|id| respond(*id, rounds_done)).collect();
                    rounds_done += 1;
                    let _ = d.complete(t, clk, &round);
                }
            }
            for cmd in d.take_commands() {
                cmd.apply(clk, t);
            }
        }
        (first_half, second_half)
    }

    /// A pool member that turns falseticker mid-run is outvoted: the
    /// resilient fan-out keeps accepted regular-phase offsets near the
    /// honest servers' truth instead of following the liar.
    #[test]
    fn resilient_round_outvotes_midrun_falseticker() {
        let rcfg = RobustConfig::default();
        let mut d = MntpDiscipline::resilient(MntpConfig::default(), &rcfg, 4, 3);
        let mut clk = mk_clock(5);
        let hints = good_hints();
        let mut lane = PickLane::new(4, 0x99);
        let mut accepted = Vec::new();
        let mut saw_fanout_round = false;
        for s in 0..4000u64 {
            let t = SimTime::ZERO + SimDuration::from_secs_f64(s as f64);
            match d.poll(t, &mut clk, Some(&hints), &mut lane) {
                Directive::Idle { .. } => {}
                Directive::Query(ids) => {
                    let regular = d.phase() == Phase::Regular;
                    if regular && ids.len() >= 2 {
                        saw_fanout_round = true;
                    }
                    // Server 3 goes bad at t=1000s: +500 ms forever.
                    let round: Vec<ExchangeResult> = ids
                        .iter()
                        .map(|id| {
                            if *id == 3 && s >= 1000 {
                                ok(*id, 505.0)
                            } else {
                                ok(*id, 5.0)
                            }
                        })
                        .collect();
                    if let Some(QueryOutcome::Accepted { offset_ms }) =
                        d.complete(t, &mut clk, &round)
                    {
                        if regular && s >= 1000 {
                            accepted.push(offset_ms);
                        }
                    }
                }
            }
            for cmd in d.take_commands() {
                cmd.apply(&mut clk, t);
            }
        }
        assert!(saw_fanout_round, "resilient discipline never fanned out a regular round");
        assert!(!accepted.is_empty(), "no regular samples accepted after onset");
        for ms in &accepted {
            assert!(
                ms.abs() < 100.0,
                "falseticker steered an accepted regular sample: {ms} ms"
            );
        }
    }

    /// Fanout is clamped into [2, pool size].
    #[test]
    fn resilient_fanout_is_clamped() {
        let rcfg = RobustConfig::default();
        let d = MntpDiscipline::resilient(MntpConfig::default(), &rcfg, 4, 99);
        assert_eq!(d.resilient_fanout, Some(4));
        let d = MntpDiscipline::resilient(MntpConfig::default(), &rcfg, 4, 0);
        assert_eq!(d.resilient_fanout, Some(2));
    }

    mod proptests {
        use super::*;
        use devtools::prop;
        use devtools::{prop_assert, props};

        fn outcome_for(code: i64, server_id: usize) -> ExchangeResult {
            match code {
                0 => ok(server_id, 5.0),
                1 => ExchangeResult {
                    server_id,
                    outcome: Err(ExchangeError::KissODeath(*b"RATE")),
                },
                2 => ExchangeResult { server_id, outcome: Err(ExchangeError::Blackholed) },
                _ => ExchangeResult { server_id, outcome: Err(ExchangeError::RejectedReply) },
            }
        }

        props! {
            /// Robustness floor for the fleet's hardened stacks: no
            /// success/KoD/failure sequence wedges the client — whatever
            /// the servers did historically, it keeps issuing queries.
            fn no_outcome_sequence_wedges_hardened_client(
                codes in prop::vecs(prop::ints(0..4), 1..40),
                resilient in prop::ints(0..2),
            ) {
                let rcfg = RobustConfig::default();
                let mut d = if resilient == 1 {
                    MntpDiscipline::resilient(MntpConfig::default(), &rcfg, 4, 3)
                } else {
                    MntpDiscipline::hardened(MntpConfig::default(), &rcfg, 4)
                };
                let mut clk = mk_clock(11);
                let (first, second) = drive_for(&mut d, &mut clk, 4000, |id, round| {
                    let code = codes.get(round % codes.len()).copied().unwrap_or(0);
                    outcome_for(code, id)
                });
                prop_assert!(first > 0, "client never queried at all");
                prop_assert!(
                    second > 0,
                    "client wedged: {first} rounds early, none in the second half"
                );
            }
        }
    }
}
