//! The client-stack abstraction: one [`Discipline`] trait behind which
//! every clock-synchronization client in the workspace lives.
//!
//! A discipline is the *decision* half of a client: when to poll, which
//! servers to ask, what to make of each reply, and which clock commands
//! to emit. The *mechanics* — ticking simulated time, carrying packets
//! through the (possibly fault-injected) network, applying clock
//! commands, sampling ground truth — live in exactly one place, the
//! generic [`crate::driver::drive`] loop. Three disciplines ship
//! in-tree:
//!
//! * [`SntpDiscipline`] — naive SNTP (fixed cadence, step on every
//!   reply) and the paper's §5.1 gate+filter baseline, selected by
//!   constructor;
//! * [`MntpDiscipline`] — the full Algorithm 1 engine, optionally
//!   wrapped with the AIMD auto-tuner and/or the hardened
//!   health-tracking stack;
//! * `NtpdDiscipline` (in the `ntpd-sim` crate) — the RFC 5905
//!   mitigation pipeline.
//!
//! The trait is object-safe on purpose: the fleet simulator drives a
//! heterogeneous `Vec<Box<dyn Discipline>>` of thousands of clients
//! through the same hooks.

use clocksim::{ClockCommand, ClockControl, SimClock};
use clocksim::time::SimTime;
use netsim::WirelessHints;
use sntp::{CompletedExchange, ExchangeError, HealthTracker, ServerSelect};

use crate::autotune::AutoTuner;
use crate::config::MntpConfig;
use crate::driver::{QueryOutcome, RobustConfig};
use crate::engine::{Mntp, MntpAction, Phase, SampleVerdict};
use crate::filter::TrendFilter;
use crate::gate::HintGate;

/// What a discipline wants to do at one tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Do nothing this tick.
    Idle {
        /// Record a [`QueryOutcome::Deferred`] event for this tick
        /// (true when a scheduler *wanted* to poll but a gate said no;
        /// false when the tick simply wasn't a poll instant).
        record_deferred: bool,
    },
    /// Query these servers, in order, this tick.
    Query(Vec<usize>),
}

/// One server's answer within a query round.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeResult {
    /// The server that was queried.
    pub server_id: usize,
    /// What came back.
    pub outcome: Result<CompletedExchange, ExchangeError>,
}

/// A clock-synchronization client stack, as seen by the generic driver.
///
/// Per tick the driver calls [`poll`](Discipline::poll); if it returns
/// [`Directive::Query`] the driver performs one exchange per listed
/// server and hands the full round to
/// [`complete`](Discipline::complete); finally
/// [`take_commands`](Discipline::take_commands) is drained and applied
/// to the client clock. Implementations read the clock themselves (via
/// the `clock` argument) at exactly the points their algorithms need a
/// local timestamp — the driver never pre-reads it for them, because
/// exchanges advance the clock position and the *post*-exchange local
/// time is what engines like MNTP observe.
///
/// `Send` is a supertrait: the fleet runner moves boxed disciplines to
/// worker threads when ticking shards in parallel. Every discipline is
/// plain owned data, so the bound costs implementations nothing.
pub trait Discipline: Send {
    /// Whether this discipline consumes link-layer wireless hints. The
    /// driver only samples (and thereby advances) the testbed's hint
    /// process for disciplines that want it, so hint-blind clients
    /// (ntpd, naive SNTP) perturb nothing they never read.
    fn wants_hints(&self) -> bool {
        true
    }

    /// Decide what to do at tick instant `t`. Server selection draws
    /// from `select` — the shared `ServerPool` in single-client
    /// drivers, a per-client `PickLane` in the fleet runner.
    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive;

    /// Digest a completed query round (one entry per server queried, in
    /// query order). Returns the outcome to record, if any.
    fn complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome>;

    /// Drain pending clock commands; the driver applies them at the
    /// current tick instant.
    fn take_commands(&mut self) -> Vec<ClockCommand>;
}

/// Which kind of round an [`MntpDiscipline`] has in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RoundKind {
    Single,
    Warmup,
}

/// The full MNTP Algorithm 1 engine as a [`Discipline`].
///
/// Three configurations, matching the three historical driver loops:
/// [`full`](MntpDiscipline::full) (plain engine),
/// [`autotuned`](MntpDiscipline::autotuned) (AIMD wait tuning), and
/// [`hardened`](MntpDiscipline::hardened) (health-tracked server
/// selection, kiss-o'-death honoring, holdover observability).
pub struct MntpDiscipline {
    engine: Mntp,
    tuner: Option<AutoTuner>,
    health: Option<HealthTracker>,
    round: RoundKind,
}

impl MntpDiscipline {
    /// Plain engine: pool-uniform server selection, no tuner.
    pub fn full(cfg: MntpConfig) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: None,
            health: None,
            round: RoundKind::Single,
        }
    }

    /// Engine plus the AIMD self-tuner adjusting the regular-phase wait.
    pub fn autotuned(cfg: MntpConfig, tune: crate::autotune::AutoTuneConfig) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: Some(AutoTuner::new(tune)),
            health: None,
            round: RoundKind::Single,
        }
    }

    /// The hardened stack: server selection through a health tracker
    /// sized for a pool of `pool_len` servers, per
    /// [`RobustConfig::health`].
    pub fn hardened(cfg: MntpConfig, rcfg: &RobustConfig, pool_len: usize) -> Self {
        MntpDiscipline {
            engine: Mntp::new(cfg),
            tuner: None,
            health: Some(HealthTracker::new(pool_len, rcfg.health.clone(), rcfg.health_seed)),
            round: RoundKind::Single,
        }
    }

    /// Hand the tuner back (for reporting), consuming the discipline.
    pub fn into_tuner(self) -> Option<AutoTuner> {
        self.tuner
    }

    /// Observability: the engine's current phase.
    pub fn phase(&self) -> Phase {
        self.engine.phase()
    }

    fn warmup_complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> QueryOutcome {
        let ts = t.as_secs_f64();
        let mut offsets = Vec::new();
        for r in round {
            match r.outcome {
                Ok(done) => {
                    if let Some(h) = &mut self.health {
                        h.on_success(r.server_id, ts);
                    }
                    offsets.push(done.sample.offset.as_millis_f64());
                }
                Err(ExchangeError::KissODeath(code)) => {
                    if let Some(h) = &mut self.health {
                        h.on_kod(r.server_id, code, ts);
                    }
                }
                Err(_) => {
                    if let Some(h) = &mut self.health {
                        h.on_failure(r.server_id, ts);
                    }
                }
            }
        }
        if offsets.is_empty() {
            self.engine.on_query_failed(clock.now(t));
            return QueryOutcome::Failed;
        }
        if self.tuner.is_some() {
            // The autotuned driver never attributed false-ticker
            // rejections per round; preserved for artifact stability.
            self.engine.on_warmup_round(clock.now(t), &offsets);
            return QueryOutcome::WarmupRound { offsets_ms: offsets, false_tickers: 0 };
        }
        let before = self.engine.stats.false_tickers_rejected;
        self.engine.on_warmup_round(clock.now(t), &offsets);
        QueryOutcome::WarmupRound {
            offsets_ms: offsets,
            false_tickers: (self.engine.stats.false_tickers_rejected - before) as usize,
        }
    }

    fn single_complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> QueryOutcome {
        let ts = t.as_secs_f64();
        let Some(r) = round.first() else {
            return QueryOutcome::Failed;
        };
        match r.outcome {
            Ok(done) => {
                if let Some(h) = &mut self.health {
                    h.on_success(r.server_id, ts);
                }
                let ms = done.sample.offset.as_millis_f64();
                let verdict = self.engine.on_regular_sample(clock.now(t), ms);
                if let Some(tu) = &mut self.tuner {
                    self.engine.set_regular_wait_secs(tu.on_verdict(&verdict));
                }
                match verdict {
                    SampleVerdict::Accepted { offset_ms } => QueryOutcome::Accepted { offset_ms },
                    SampleVerdict::Rejected { offset_ms } => QueryOutcome::Rejected { offset_ms },
                    SampleVerdict::Recovered { offset_ms } => QueryOutcome::Recovered { offset_ms },
                }
            }
            Err(err) => {
                if self.health.is_some() {
                    let noted = match err {
                        ExchangeError::KissODeath(code) => {
                            if let Some(h) = &mut self.health {
                                h.on_kod(r.server_id, code, ts);
                            }
                            Some(QueryOutcome::KissODeath { code })
                        }
                        _ => {
                            if let Some(h) = &mut self.health {
                                h.on_failure(r.server_id, ts);
                            }
                            None
                        }
                    };
                    self.engine.on_query_failed(clock.now(t));
                    match noted {
                        Some(o) => o,
                        None if self.engine.phase() == Phase::Holdover => {
                            QueryOutcome::HoldoverFailed {
                                predicted_ms: self.engine.predicted_offset_ms(clock.now(t)),
                            }
                        }
                        None => QueryOutcome::Failed,
                    }
                } else {
                    self.engine.on_query_failed(clock.now(t));
                    if let Some(tu) = &mut self.tuner {
                        self.engine.set_regular_wait_secs(tu.on_failure());
                    }
                    QueryOutcome::Failed
                }
            }
        }
    }
}

impl Discipline for MntpDiscipline {
    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive {
        let now_local = clock.now(t);
        let deferred_before = self.engine.stats.deferred;
        match self.engine.on_tick(now_local, hints) {
            MntpAction::Wait => Directive::Idle {
                record_deferred: self.engine.stats.deferred > deferred_before,
            },
            MntpAction::QueryMultiple(n) => {
                self.round = RoundKind::Warmup;
                let ids = match &mut self.health {
                    Some(h) => h.pick_distinct(n, t.as_secs_f64()),
                    None => select.pick_distinct(n),
                };
                Directive::Query(ids)
            }
            MntpAction::QuerySingle => {
                self.round = RoundKind::Single;
                let id = match &mut self.health {
                    Some(h) => h.pick(t.as_secs_f64()),
                    None => select.pick(),
                };
                Directive::Query(vec![id])
            }
        }
    }

    fn complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome> {
        Some(match self.round {
            RoundKind::Warmup => self.warmup_complete(t, clock, round),
            RoundKind::Single => self.single_complete(t, clock, round),
        })
    }

    fn take_commands(&mut self) -> Vec<ClockCommand> {
        self.engine.take_commands()
    }
}

/// Plain SNTP as a [`Discipline`]: either the naive client (poll on a
/// fixed cadence, step the clock on every reply — what a stock mobile
/// SNTP client does) or the paper's §5.1 baseline (hint gate + trend
/// filter over a fixed cadence, clock untouched).
pub struct SntpDiscipline {
    gate: Option<HintGate>,
    filter: Option<TrendFilter>,
    step_on_reply: bool,
    /// Self-paced cadence, seconds. `None` means "query every driver
    /// tick" (the historical single-client loops tick at the poll
    /// period); the fleet world ticks faster than any one client polls,
    /// so fleet clients pace themselves.
    poll_period_secs: Option<f64>,
    polls_done: u64,
    pending: Vec<ClockCommand>,
}

impl SntpDiscipline {
    /// The §5.1 baseline: gate + filter, no clock commands.
    pub fn baseline(cfg: &MntpConfig) -> Self {
        SntpDiscipline {
            gate: Some(HintGate::new(cfg)),
            filter: Some(TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift)),
            step_on_reply: false,
            poll_period_secs: None,
            polls_done: 0,
            pending: Vec::new(),
        }
    }

    /// The naive client: no gate, no filter, step on every reply.
    pub fn naive() -> Self {
        SntpDiscipline {
            gate: None,
            filter: None,
            step_on_reply: true,
            poll_period_secs: None,
            polls_done: 0,
            pending: Vec::new(),
        }
    }

    /// Make the discipline pace itself at `period_secs` instead of
    /// querying on every driver tick (builder-style).
    pub fn self_paced(mut self, period_secs: f64) -> Self {
        self.poll_period_secs = Some(period_secs);
        self
    }
}

impl Discipline for SntpDiscipline {
    fn wants_hints(&self) -> bool {
        self.gate.is_some()
    }

    fn poll(
        &mut self,
        t: SimTime,
        _clock: &mut SimClock,
        hints: Option<&WirelessHints>,
        select: &mut dyn ServerSelect,
    ) -> Directive {
        if let Some(period) = self.poll_period_secs {
            // Due when t reaches the next multiple of the period; both
            // sides are exact products, so no epsilon is needed.
            if t.as_secs_f64() < self.polls_done as f64 * period {
                return Directive::Idle { record_deferred: false };
            }
            self.polls_done += 1;
        }
        if let Some(g) = &mut self.gate {
            if !g.favorable(hints) {
                return Directive::Idle { record_deferred: true };
            }
        }
        Directive::Query(vec![select.pick()])
    }

    fn complete(
        &mut self,
        t: SimTime,
        _clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome> {
        let Some(r) = round.first() else {
            return Some(QueryOutcome::Failed);
        };
        Some(match r.outcome {
            Ok(done) => {
                let ms = done.sample.offset.as_millis_f64();
                if self.step_on_reply {
                    self.pending.push(ClockCommand::Step(done.sample.offset));
                }
                match &mut self.filter {
                    Some(f) => {
                        if f.offer(t.as_secs_f64(), ms) {
                            QueryOutcome::Accepted { offset_ms: ms }
                        } else {
                            QueryOutcome::Rejected { offset_ms: ms }
                        }
                    }
                    None => QueryOutcome::Accepted { offset_ms: ms },
                }
            }
            Err(_) => QueryOutcome::Failed,
        })
    }

    fn take_commands(&mut self) -> Vec<ClockCommand> {
        std::mem::take(&mut self.pending)
    }
}
