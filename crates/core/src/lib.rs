//! # mntp
//!
//! **Mobile NTP** — the contribution of *MNTP: Enhancing Time
//! Synchronization for Mobile Devices* (Mani, Durairajan, Barford,
//! Sommers; IMC 2016), reimplemented as a Rust library over the
//! workspace's simulation substrate.
//!
//! MNTP is a lightweight modification of SNTP with two ideas (paper §4):
//!
//! 1. **Channel-aware pacing** — emit synchronization requests *only*
//!    when link-layer *wireless hints* (RSSI, noise, SNR margin) say the
//!    channel is stable ([`gate::HintGate`]); defer otherwise.
//! 2. **Lightweight filtering** — fit a least-squares trend line through
//!    recorded offsets (the clock's drift), predict where the next sample
//!    should land, and reject outliers by a one-standard-deviation test
//!    on squared errors ([`filter::TrendFilter`]). During the multi-source
//!    warmup, reject *false tickers* whose offsets deviate from the round
//!    mean by more than one standard deviation.
//!
//! [`engine::Mntp`] assembles both into the full two-phase Algorithm 1
//! (warmup with three pool sources → drift estimate → regular phase with
//! one source, reset after `resetPeriod`). [`driver`] runs either the
//! full engine or the unphased gate+filter baseline (the configuration of
//! the paper's §5.1 head-to-head experiments) against a
//! [`netsim::Testbed`].
//!
//! Everything is sans-io: the engine consumes local-clock timestamps,
//! hints, and offset samples, and emits query decisions plus
//! [`clocksim::ClockCommand`]s. That is exactly what lets the paper's
//! *MNTP tuner* (the `tuner` crate) replay the algorithm over recorded
//! traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod config;
pub mod discipline;
pub mod driver;
pub mod engine;
pub mod fleet;
pub mod filter;
pub mod gate;
pub mod selection;

pub use autotune::{AutoTuneConfig, AutoTuner};
pub use config::{ApplyMode, MntpConfig};
pub use discipline::{Directive, Discipline, ExchangeResult, MntpDiscipline, SntpDiscipline};
pub use driver::{
    drive, run_baseline, run_full, run_full_autotuned, run_full_faulted, DriverConfig, MntpRun,
    MntpRunRecord, QueryOutcome, RobustConfig,
};
pub use engine::{Mntp, MntpAction, Phase, SampleVerdict};
pub use fleet::{
    run_fleet, run_fleet_chaos_on, run_fleet_on, ChaosSession, FleetClient, FleetRun,
    FleetRunConfig, GroupSample,
};
pub use filter::{FalseTickerVerdict, TrendFilter};
pub use gate::HintGate;
pub use selection::{select_round, RoundSelection};
