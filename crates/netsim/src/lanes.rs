//! Struct-of-arrays storage for fleet-scale populations of 802.11 lanes.
//!
//! [`crate::wifi::WifiChannel`] is one struct per device — fine for a
//! testbed, wasteful for a million-client fleet where the hot tick loop
//! touches one or two scalars per lane: an array-of-structs layout drags a
//! whole `WifiChannel` (config copy included) through the cache per touch.
//! [`ChannelBank`] stores the population column-wise — one `Vec` per piece
//! of per-lane state, one *shared* config/coefficient block — so a sweep
//! over lanes walks dense, homogeneous arrays.
//!
//! [`Lane`] is a borrowed view of one column slot; it implements
//! [`ChannelIo`] by delegating to the same free functions in
//! [`crate::wifi`] that `WifiChannel` uses, with the same RNG call order,
//! so a lane and a standalone channel seeded identically produce
//! bit-identical delay/hint sequences (pinned by tests below).
//!
//! Shared-state caveat: the utilization *target* and the transmit power are
//! bank-wide scalars here (the fleet's cross-traffic generator drives every
//! lane's target identically, and fleet WAPs never adjust power), while
//! `WifiChannel` carries both per instance. The per-lane OU state —
//! shadow fading, noise jitter, ramped utilization — stays per-lane.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

use crate::wifi::{
    self, ChannelIo, StepCoeffs, WifiConfig, WirelessHints,
};

/// A population of last-hop channels in struct-of-arrays layout.
#[derive(Clone, Debug)]
pub struct ChannelBank {
    cfg: WifiConfig,
    /// Step coefficients keyed on exact `dt` — shared across lanes: the
    /// fleet advances lanes on a common cadence, so the cache hits almost
    /// always; any other `dt` recomputes, keeping results bit-identical to
    /// the uncached math.
    coeffs: StepCoeffs,
    target_utilization: f64,
    tx_power_dbm: f64,
    shadow_db: Vec<f64>,
    noise_jitter_db: Vec<f64>,
    utilization: Vec<f64>,
    last_update: Vec<SimTime>,
    rng: Vec<SimRng>,
}

impl ChannelBank {
    /// Create a bank of `rngs.len()` lanes at `t = 0`, one RNG stream per
    /// lane. Initial state matches `WifiChannel::new` lane-for-lane.
    pub fn new(cfg: WifiConfig, rngs: Vec<SimRng>) -> Self {
        let n = rngs.len();
        let tx = cfg.tx_power_dbm;
        ChannelBank {
            cfg,
            coeffs: StepCoeffs::empty(),
            target_utilization: 0.05,
            tx_power_dbm: tx,
            shadow_db: vec![0.0; n],
            noise_jitter_db: vec![0.0; n],
            utilization: vec![0.05; n],
            last_update: vec![SimTime::ZERO; n],
            rng: rngs,
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.rng.len()
    }

    /// Whether the bank holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.rng.is_empty()
    }

    /// Set every lane's medium-utilization *target* in `[0, 1]`; each
    /// lane's current utilization ramps toward it independently.
    pub fn set_utilization(&mut self, u: f64) {
        self.target_utilization = u.clamp(0.0, 1.0);
    }

    /// A mutable view of lane `i`, or `None` when out of range. Column
    /// lookups happen once here; the view itself never indexes.
    pub fn lane(&mut self, i: usize) -> Option<Lane<'_>> {
        Some(Lane {
            cfg: &self.cfg,
            coeffs: &mut self.coeffs,
            target_utilization: self.target_utilization,
            tx_power_dbm: self.tx_power_dbm,
            shadow_db: self.shadow_db.get_mut(i)?,
            noise_jitter_db: self.noise_jitter_db.get_mut(i)?,
            utilization: self.utilization.get_mut(i)?,
            last_update: self.last_update.get_mut(i)?,
            rng: self.rng.get_mut(i)?,
        })
    }
}

/// A borrowed view of one lane in a [`ChannelBank`]: one element of each
/// state column plus the bank-wide shared scalars. Mirrors the transmit
/// surface of [`crate::wifi::WifiChannel`].
#[derive(Debug)]
pub struct Lane<'a> {
    cfg: &'a WifiConfig,
    coeffs: &'a mut StepCoeffs,
    target_utilization: f64,
    tx_power_dbm: f64,
    shadow_db: &'a mut f64,
    noise_jitter_db: &'a mut f64,
    utilization: &'a mut f64,
    last_update: &'a mut SimTime,
    rng: &'a mut SimRng,
}

impl Lane<'_> {
    /// Evolve this lane's OU processes up to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        let dt = (t - *self.last_update).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        // `NaN != NaN`, so the first step always computes.
        if self.coeffs.dt != dt {
            *self.coeffs = StepCoeffs::for_dt(self.cfg, dt);
        }
        wifi::ou_step(
            self.coeffs,
            self.shadow_db,
            self.noise_jitter_db,
            self.utilization,
            self.target_utilization,
            self.rng,
        );
        *self.last_update = t;
    }

    fn rssi_dbm(&self) -> f64 {
        wifi::rssi_dbm(self.cfg, self.tx_power_dbm, *self.shadow_db, self.last_update.as_secs_f64())
    }

    fn noise_dbm(&self) -> f64 {
        wifi::noise_dbm(self.cfg, *self.utilization, *self.noise_jitter_db)
    }

    /// Current wireless hints (advances the lane to `t` first).
    pub fn hints(&mut self, t: SimTime) -> WirelessHints {
        self.advance_to(t);
        WirelessHints { rssi_dbm: self.rssi_dbm(), noise_dbm: self.noise_dbm() }
    }

    /// Current medium utilization of this lane.
    pub fn utilization(&self) -> f64 {
        *self.utilization
    }

    fn transmit_frame(&mut self) -> Option<SimDuration> {
        let u = *self.utilization;
        let p_fail = wifi::attempt_failure_prob(self.cfg, self.rssi_dbm(), self.noise_dbm(), u);
        wifi::transmit_frame_delay(self.cfg, p_fail, u, self.rng)
    }

    /// Transmit an uplink (station → WAP) packet at time `t`.
    pub fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        self.transmit_frame()
    }

    /// Transmit a downlink (WAP → station) packet at time `t`. Pays the
    /// additional AP-queue bufferbloat behind cross-traffic.
    pub fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        let frame = self.transmit_frame()?;
        let bloat_ms = wifi::downlink_bloat_ms(self.cfg, *self.utilization, self.rng);
        let total = frame.as_millis_f64() + bloat_ms;
        Some(SimDuration::from_millis_f64(total.min(self.cfg.delay_cap_ms)))
    }
}

impl ChannelIo for Lane<'_> {
    fn advance_to(&mut self, t: SimTime) {
        Lane::advance_to(self, t);
    }
    fn hints(&mut self, t: SimTime) -> WirelessHints {
        Lane::hints(self, t)
    }
    fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration> {
        Lane::transmit_up(self, t)
    }
    fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration> {
        Lane::transmit_down(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::WifiChannel;

    /// A lane and a standalone channel, seeded identically and driven
    /// through the same op sequence, must agree bit-for-bit — the SoA
    /// layout is a storage detail, never an observable one.
    #[test]
    fn lane_matches_standalone_channel_bit_for_bit() {
        let cfg = WifiConfig::default();
        let seeds = [11u64, 12, 13];
        let mut bank =
            ChannelBank::new(cfg.clone(), seeds.iter().map(|&s| SimRng::new(s)).collect());
        let mut solo: Vec<WifiChannel> =
            seeds.iter().map(|&s| WifiChannel::new(cfg.clone(), SimRng::new(s))).collect();

        for step in 0..400u64 {
            let t = SimTime::from_millis((step * 137) as i64);
            if step == 120 {
                bank.set_utilization(0.8);
                for ch in &mut solo {
                    ch.set_utilization(0.8);
                }
            }
            for (i, ch) in solo.iter_mut().enumerate() {
                let mut lane = bank.lane(i).expect("lane in range");
                match step % 3 {
                    0 => assert_eq!(lane.hints(t), ch.hints(t), "hints lane {i} step {step}"),
                    1 => assert_eq!(
                        lane.transmit_up(t),
                        ch.transmit_up(t),
                        "uplink lane {i} step {step}"
                    ),
                    _ => assert_eq!(
                        lane.transmit_down(t),
                        ch.transmit_down(t),
                        "downlink lane {i} step {step}"
                    ),
                }
                let lane = bank.lane(i).expect("lane in range");
                assert_eq!(lane.utilization(), ch.utilization(), "util lane {i} step {step}");
            }
        }
    }

    /// The shared `dt` coefficient cache must not let one lane's step size
    /// contaminate another's: interleave two lanes on different cadences.
    #[test]
    fn interleaved_cadences_do_not_cross_contaminate() {
        let cfg = WifiConfig::default();
        let mut bank = ChannelBank::new(cfg.clone(), vec![SimRng::new(21), SimRng::new(22)]);
        let mut a = WifiChannel::new(cfg.clone(), SimRng::new(21));
        let mut b = WifiChannel::new(cfg, SimRng::new(22));
        for step in 1..200i64 {
            // Lane 0 ticks every second, lane 1 every 700 ms — the shared
            // cache misses on every call, recomputing keyed-exact values.
            let ta = SimTime::from_millis(step * 1000);
            let tb = SimTime::from_millis(step * 700);
            assert_eq!(bank.lane(0).unwrap().hints(ta), a.hints(ta));
            assert_eq!(bank.lane(1).unwrap().hints(tb), b.hints(tb));
        }
    }

    #[test]
    fn lane_out_of_range_is_none() {
        let mut bank = ChannelBank::new(WifiConfig::default(), vec![SimRng::new(1)]);
        assert!(bank.lane(0).is_some());
        assert!(bank.lane(1).is_none());
        assert_eq!(bank.len(), 1);
        assert!(!bank.is_empty());
    }
}
