//! Named deployment scenarios — the "wider variety of cellular and WiFi
//! settings" the paper's §7 wants MNTP evaluated in.
//!
//! Each scenario is a complete [`TestbedConfig`] preset; the
//! `experiments::extended` scenario sweep runs SNTP and MNTP across all
//! of them and reports how the improvement factor holds up.

use crate::crosstraffic::CrossTrafficConfig;
use crate::testbed::{MonitorConfig, TestbedConfig};
use crate::wifi::{MobilityProfile, WifiConfig};

/// A named scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The testbed configuration.
    pub config: TestbedConfig,
}

/// The paper's laboratory setting (the default everywhere else).
pub fn lab() -> Scenario {
    Scenario {
        name: "lab",
        description: "paper §3.2 testbed: nearby WAP, monitor node stirring the channel",
        config: TestbedConfig::default(),
    }
}

/// A busy café: close AP, but heavy unrelated traffic most of the time.
pub fn cafe() -> Scenario {
    Scenario {
        name: "cafe",
        description: "close AP, persistently busy medium, no monitor games",
        config: TestbedConfig {
            wifi: WifiConfig {
                path_loss_db: 74.0,
                noise_jitter_sigma_db: 3.0,
                ..Default::default()
            },
            cross: CrossTrafficConfig {
                duration_range_secs: (20.0, 120.0),
                active_util_range: (0.45, 0.85),
                idle_util_range: (0.10, 0.25),
                ..Default::default()
            },
            initial_frequency: 0.7,
            monitor_enabled: false,
            monitor: MonitorConfig::default(),
        },
    }
}

/// An apartment at the far end of the flat: weak signal, light traffic.
pub fn apartment_far_room() -> Scenario {
    Scenario {
        name: "apartment",
        description: "distant AP through walls, light background traffic",
        config: TestbedConfig {
            wifi: WifiConfig {
                path_loss_db: 89.0,
                shadow_sigma_db: 4.0,
                ..Default::default()
            },
            cross: CrossTrafficConfig {
                active_util_range: (0.30, 0.60),
                ..Default::default()
            },
            initial_frequency: 0.2,
            monitor_enabled: false,
            monitor: MonitorConfig::default(),
        },
    }
}

/// Pacing around an office with the device in hand.
pub fn pacing_user() -> Scenario {
    Scenario {
        name: "pacing",
        description: "lab channel plus a user pacing (±8 dB path-loss swing, 2 min period)",
        config: TestbedConfig {
            wifi: WifiConfig {
                mobility: MobilityProfile::Pace { amplitude_db: 8.0, period_secs: 120.0 },
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

/// Walking away from the AP (garden, corridor): signal decays steadily.
pub fn walk_away() -> Scenario {
    Scenario {
        name: "walk-away",
        description: "signal decays 1 dB/min up to +14 dB path loss",
        config: TestbedConfig {
            wifi: WifiConfig {
                mobility: MobilityProfile::WalkAway { db_per_minute: 1.0, max_extra_db: 14.0 },
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

/// All scenarios, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![lab(), cafe(), apartment_far_room(), pacing_user(), walk_away()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use clocksim::time::SimTime;

    #[test]
    fn all_scenarios_produce_traffic_and_hints() {
        for sc in all() {
            let name = sc.name;
            let mut tb = Testbed::wireless(sc.config, 1);
            let mut delivered = 0;
            for i in 0..200 {
                let t = SimTime::from_secs(i * 5);
                assert!(tb.hints(t).is_some(), "{name}: hints missing");
                if tb.last_hop_up(t).is_some() {
                    delivered += 1;
                }
            }
            assert!(delivered > 50, "{name}: only {delivered}/200 delivered");
        }
    }

    #[test]
    fn pacing_moves_rssi_periodically() {
        let mut tb = Testbed::wireless(pacing_user().config, 2);
        let rssi: Vec<f64> =
            (0..48).map(|i| tb.hints(SimTime::from_secs(i * 5)).unwrap().rssi_dbm).collect();
        let min = rssi.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rssi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 10.0, "pacing swing {}", max - min);
    }

    #[test]
    fn walk_away_degrades_monotonically_on_average() {
        let mut tb = Testbed::wireless(walk_away().config, 3);
        let early: Vec<f64> =
            (0..60).map(|i| tb.hints(SimTime::from_secs(i * 5)).unwrap().rssi_dbm).collect();
        let late: Vec<f64> = (240..300)
            .map(|i| tb.hints(SimTime::from_secs(i * 5)).unwrap().rssi_dbm)
            .collect();
        let em = clocksim::stats::mean(&early);
        let lm = clocksim::stats::mean(&late);
        assert!(lm < em - 5.0, "early {em} late {lm}");
    }

    #[test]
    fn cafe_medium_is_busier_than_lab() {
        // The café AP is *closer* (fewer frame losses) but its medium is
        // persistently occupied: mean utilization must be clearly higher.
        let mean_util = |cfg: TestbedConfig, seed| {
            let mut tb = Testbed::wireless(cfg, seed);
            let mut total = 0.0;
            for i in 0..400 {
                let t = SimTime::from_secs(i * 5);
                // hints() advances the channel (state is pull-model lazy).
                tb.hints(t);
                if let crate::testbed::LastHop::Wireless(w) = &tb.state.last_hop {
                    total += w.utilization();
                }
            }
            total / 400.0
        };
        let lab_u = mean_util(lab().config, 4);
        let cafe_u = mean_util(cafe().config, 4);
        assert!(cafe_u > lab_u + 0.05, "lab {lab_u:.2} cafe {cafe_u:.2}");
    }
}
