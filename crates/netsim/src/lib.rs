//! # netsim
//!
//! A deterministic discrete-event network simulator purpose-built for the
//! MNTP reproduction. It supplies every network the paper's experiments
//! ran on:
//!
//! * [`kernel`] — the event-queue executor ([`kernel::Sim`]): closures
//!   scheduled at absolute times, FIFO-stable for ties, fully
//!   deterministic for a given seed.
//! * [`link`] — composable per-packet delay and loss models (fixed /
//!   normal / lognormal / heavy-tail delay; Bernoulli / Gilbert–Elliott
//!   loss) used for wired segments and Internet backbones.
//! * [`wifi`] — the 802.11 last-hop model: transmit power, log-distance
//!   path loss with Ornstein–Uhlenbeck shadowing, a noise floor lifted by
//!   interference bursts, SNR-dependent frame loss with DCF-style retry
//!   delay, and medium-utilization queueing (AP-side bufferbloat on the
//!   downlink). Exposes the (RSSI, noise) *wireless hints* MNTP reads.
//! * [`cellular`] — the 4G model behind the paper's Figure 5: RRC
//!   promotion delay, high-variance OWDs, downlink bufferbloat.
//! * [`crosstraffic`] — the monitor node's interfering file downloads.
//! * [`faults`] — deterministic, seed-driven episodic fault injection
//!   (loss storms, server outages, kiss-o'-death windows, falseticker
//!   onset, delay-asymmetry spikes, duplicate/corrupt replies, client
//!   clock steps) layered on top of the channel models.
//! * [`chaos`] — the population-scale generalization of [`faults`]:
//!   seed-deterministic fleet fault plans over client-range and server
//!   domains (regional loss storms and delay spikes, server outages
//!   with scheduled restarts, falseticker onset, clock-step waves),
//!   queryable statelessly from any shard.
//! * [`pcap`] — a libpcap writer: simulated exchanges dump to `.pcap`
//!   files openable in Wireshark (the paper's pipeline was built on
//!   tcpdump captures of exactly this traffic).
//! * [`scenarios`] — named deployment presets (lab / café / apartment /
//!   pacing / walk-away) for the §7 "wider variety of settings" sweeps.
//! * [`testbed`] — the assembled laboratory testbed of Figure 3: WAP +
//!   target node + monitor node, including the monitor's feedback
//!   controller that tunes download frequency and transmit power from
//!   observed ping loss, exactly as described in §3.2.
//!
//! Protocol implementations (`sntp`, `ntpd-sim`, `mntp`) are *sans-io*
//! state machines; this crate is where their messages acquire delay, loss
//! and asymmetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellular;
pub mod chaos;
pub mod crosstraffic;
pub mod faults;
pub mod fleet;
pub mod kernel;
pub mod lanes;
pub mod link;
pub mod pcap;
pub mod scenarios;
pub mod testbed;
mod wheel;
pub mod wifi;

pub use chaos::{ChaosEvent, ClientChaosLatch, ClientRange, FleetFaultPlan, ServerChaosLatch};
pub use faults::{FaultInjector, FaultKind, FaultSchedule, FaultWindow, PacketFate, ServerSet};
pub use fleet::{FleetConfig, FleetNet, ServerModel, ServerModelConfig, ServiceDecision};
pub use kernel::{SchedulerKind, Sim};
pub use lanes::{ChannelBank, Lane};
pub use link::{DelayModel, Link, LossModel};
pub use testbed::{LastHop, Testbed, TestbedConfig};
pub use wifi::{ChannelIo, WifiChannel, WifiConfig, WirelessHints};
