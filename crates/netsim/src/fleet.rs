//! Shared multi-client simulation world: N clients, M servers, one AP.
//!
//! The single-client [`crate::testbed::Testbed`] reproduces the paper's
//! §3.2 bench: one phone, one monitor node, one WAP. This module scales
//! that world out for the fleet experiments (§6 scalability discussion):
//! one [`Sim`] kernel hosts `N` client channels contending behind the
//! same access point plus `M` server-side service models, so a single
//! trial can observe both ends — per-client offset error *and* the
//! server-side arrival process the paper measured from production logs
//! (Figures 11/12).
//!
//! # Sharding
//!
//! At fleet scale (100k–1M clients) the world is partitioned by client id
//! into `K` contiguous [`FleetShard`]s, each owning its own deterministic
//! [`Sim`] kernel and a struct-of-arrays [`ChannelBank`] for its id range.
//! Shards share *nothing* mutable: the one world-coupling process — the
//! cross-traffic source behind the AP — is replicated per shard from an
//! identical RNG stream, so every shard computes the same utilization
//! schedule independently. Server models stay global (they are driven
//! serially, in client-id order, by the fleet runner's epoch barrier — see
//! `mntp::fleet`). Consequently `K` is an execution detail: any shard
//! count produces byte-identical worlds, which is what lets the runner
//! tick shards on parallel workers.
//!
//! # RNG lanes
//!
//! All randomness is split deterministically from the trial seed so a
//! fleet trial is reproducible at any parallelism and stable under
//! population growth (client `i`'s lane does not depend on `N` or on the
//! shard count):
//!
//! ```text
//! root = SimRng::new(seed)
//! ├── root.fork(1) = channel lane root;  channel i ← chan_root.fork(i)
//! ├── root.fork(2) = cross-traffic source (replicated per shard)
//! └── (server models are deterministic queues: no RNG lane)
//! ```
//!
//! # Server model
//!
//! [`ServerModel`] is the capacity side of a public NTP server: a
//! bounded FIFO service queue (arrivals beyond the backlog cap are
//! dropped on the floor, as a real socket buffer would) plus the
//! kiss-o'-death policy of RFC 5905 §7.4. The RATE policy mirrors the
//! client-side ban bookkeeping in `sntp::health`: a client polling
//! faster than the hard floor is always RATEd, and under overload the
//! floor rises to `overload_min_poll`, which is clamped by construction
//! to the 64 s back-off `sntp::health` imposes after a RATE kiss — so a
//! client that honours its ban is never re-RATEd by the same server.

use std::collections::VecDeque;

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

use crate::crosstraffic::{CrossTraffic, CrossTrafficConfig};
use crate::kernel::Sim;
use crate::lanes::{ChannelBank, Lane};
use crate::wifi::{WifiConfig, WirelessHints};

/// Capacity and rate-limit policy of one simulated server.
#[derive(Clone, Debug)]
pub struct ServerModelConfig {
    /// Maximum requests in the service backlog; arrivals past this are
    /// dropped without a reply (socket buffer overflow).
    pub queue_capacity: usize,
    /// Time to serve one request once it reaches the head of the queue.
    pub service_time: SimDuration,
    /// Hard per-client minimum poll spacing, seconds. Polling faster
    /// than this always draws a RATE kiss, loaded or not.
    pub min_poll_secs: f64,
    /// Per-client minimum poll spacing enforced while overloaded,
    /// seconds. Clamped to the 64 s RATE ban of `sntp::health` so a
    /// ban-honouring client can never be re-RATEd.
    pub overload_min_poll_secs: f64,
    /// Backlog length at which the overload poll floor kicks in.
    pub overload_backlog: usize,
    /// Optional graceful-degradation ladder (`None` — the default —
    /// reproduces the two-rung policy above exactly).
    pub ladder: Option<DegradationConfig>,
}

impl Default for ServerModelConfig {
    fn default() -> Self {
        ServerModelConfig {
            queue_capacity: 64,
            service_time: SimDuration::from_secs_f64(300e-6),
            min_poll_secs: 2.0,
            overload_min_poll_secs: 64.0,
            overload_backlog: 32,
            ladder: None,
        }
    }
}

/// The graceful-degradation ladder: an intermediate *ramp* rung between
/// the hard floor and the overload floor, plus priority shedding of
/// abusive pollers once the overload rung is reached.
///
/// Rungs, by backlog depth: `[0, ramp_backlog)` → hard floor;
/// `[ramp_backlog, overload_backlog)` → `ramp_min_poll_secs`;
/// `[overload_backlog, ..)` → the overload floor, and arrivals from
/// clients with `shed_strikes` consecutive RATE kisses are *shed*
/// (silently dropped) before compliant clients lose queue space. A
/// compliant gap (at or beyond the active floor) clears a client's
/// strikes. Every rung stays clamped to [`HEALTH_RATE_BAN_SECS`], so
/// the ban-compliance invariant of the base policy carries over.
#[derive(Clone, Copy, Debug)]
pub struct DegradationConfig {
    /// Backlog length at which the ramp rung engages.
    pub ramp_backlog: usize,
    /// Per-client minimum poll spacing on the ramp rung, seconds.
    /// Clamped into `[min_poll_secs, overload_min_poll_secs]`.
    pub ramp_min_poll_secs: f64,
    /// Consecutive RATE kisses after which an arrival is shed instead
    /// of answered while the overload rung is active.
    pub shed_strikes: u8,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig { ramp_backlog: 16, ramp_min_poll_secs: 16.0, shed_strikes: 3 }
    }
}

/// The 64 s back-off `sntp::health` applies after a RATE kiss. The
/// overload poll floor is clamped to this so the server never demands a
/// longer spacing than the ban the client already serves.
pub const HEALTH_RATE_BAN_SECS: f64 = 64.0;

/// What the server decided to do with one arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceDecision {
    /// Backlog full: the request is silently discarded.
    Dropped,
    /// The request will be answered at `depart`; `kod` selects a RATE
    /// kiss instead of a time reply.
    Served {
        /// Departure (transmit) time of the reply.
        depart: SimTime,
        /// Reply is a kiss-o'-death RATE packet.
        kod: bool,
    },
}

/// Aggregate counters for one server model.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerModelStats {
    /// Requests that reached the server.
    pub arrivals: u64,
    /// Requests answered with a time reply.
    pub served: u64,
    /// Requests dropped for backlog overflow.
    pub dropped: u64,
    /// Requests answered with a RATE kiss.
    pub kod_sent: u64,
    /// Largest backlog observed at any arrival instant.
    pub peak_backlog: usize,
    /// Requests shed by the degradation ladder (abusive pollers dropped
    /// under overload before compliant clients lose queue space).
    pub shed: u64,
    /// Times the server restarted (outage recovery).
    pub restarts: u64,
}

/// Bounded-queue service model with load-dependent RATE policy.
///
/// Deterministic: identical arrival sequences produce identical
/// decisions, so fleet trials stay byte-reproducible at any `--jobs`.
#[derive(Clone, Debug)]
pub struct ServerModel {
    cfg: ServerModelConfig,
    /// Departure times of requests still in service, oldest first.
    /// Monotone non-decreasing, so replies leave in global FIFO order
    /// and a single client's replies can never reorder.
    queue: VecDeque<SimTime>,
    /// When the server frees up after the newest queued request.
    busy_until: SimTime,
    /// Monotone clamp for arrivals delivered slightly out of order
    /// within one driver tick (clients are iterated in id order, not
    /// arrival order — a documented approximation; see DESIGN.md).
    horizon: SimTime,
    /// Last accepted arrival per client id for the RATE policy, in
    /// nanoseconds (`i64::MIN` = never seen), indexed by client id and
    /// grown on demand. Dense storage rather than a map: at fleet scale
    /// every client shows up, and arrival admission is the server-side
    /// hot path.
    last_seen: Vec<i64>,
    /// Consecutive RATE kisses per client id (ladder shedding), grown
    /// in lockstep with `last_seen`; unused when the ladder is off.
    strikes: Vec<u8>,
    /// Counters.
    pub stats: ServerModelStats,
}

impl ServerModel {
    /// Empty model. `overload_min_poll_secs` is clamped into
    /// `[min_poll_secs, HEALTH_RATE_BAN_SECS]`, and the ladder's ramp
    /// rung into `[min_poll_secs, overload_min_poll_secs]`.
    pub fn new(mut cfg: ServerModelConfig) -> Self {
        cfg.overload_min_poll_secs = cfg
            .overload_min_poll_secs
            .clamp(cfg.min_poll_secs, HEALTH_RATE_BAN_SECS);
        if let Some(ladder) = &mut cfg.ladder {
            ladder.ramp_min_poll_secs = ladder
                .ramp_min_poll_secs
                .clamp(cfg.min_poll_secs, cfg.overload_min_poll_secs);
            ladder.ramp_backlog = ladder.ramp_backlog.min(cfg.overload_backlog);
        }
        ServerModel {
            cfg,
            queue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            horizon: SimTime::ZERO,
            last_seen: Vec::new(),
            strikes: Vec::new(),
            stats: ServerModelStats::default(),
        }
    }

    /// Current backlog length (requests not yet departed as of the last
    /// arrival processed).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Configured policy.
    pub fn config(&self) -> &ServerModelConfig {
        &self.cfg
    }

    /// Admit one request from `client` arriving at `at` and decide its
    /// fate. Out-of-order arrivals are clamped forward to the latest
    /// arrival already processed.
    pub fn on_arrival(&mut self, client: u32, at: SimTime) -> ServiceDecision {
        let at = at.max(self.horizon);
        self.horizon = at;
        self.stats.arrivals += 1;

        // Drain everything that departed before this arrival.
        while self.queue.front().is_some_and(|d| *d <= at) {
            self.queue.pop_front();
        }
        self.stats.peak_backlog = self.stats.peak_backlog.max(self.queue.len());

        let overloaded = self.queue.len() >= self.cfg.overload_backlog;
        let idx = client as usize;

        // Ladder rung 2, shedding: under overload an arrival from a
        // client with `shed_strikes` consecutive RATE kisses is dropped
        // before it can take queue space from a compliant client.
        if let Some(ladder) = self.cfg.ladder {
            let strikes = self.strikes.get(idx).copied().unwrap_or(0);
            if overloaded && strikes >= ladder.shed_strikes {
                self.stats.shed += 1;
                return ServiceDecision::Dropped;
            }
        }

        if self.queue.len() >= self.cfg.queue_capacity {
            self.stats.dropped += 1;
            return ServiceDecision::Dropped;
        }

        // RATE policy: hard floor always; with the ladder, the ramp
        // floor on middling backlog; overload floor (≤ the 64 s health
        // ban) while the backlog is deep.
        let ramp_floor = self.cfg.ladder.and_then(|l| {
            (self.queue.len() >= l.ramp_backlog).then_some(l.ramp_min_poll_secs)
        });
        let prev = self.last_seen.get(idx).copied().unwrap_or(i64::MIN);
        let kod = prev != i64::MIN && {
            let gap = (at - SimTime(prev)).as_secs_f64();
            gap < self.cfg.min_poll_secs
                || (overloaded && gap < self.cfg.overload_min_poll_secs)
                || ramp_floor.is_some_and(|floor| gap < floor)
        };
        if idx >= self.last_seen.len() {
            self.last_seen.resize(idx + 1, i64::MIN);
        }
        if let Some(slot) = self.last_seen.get_mut(idx) {
            *slot = at.as_nanos();
        }
        if self.cfg.ladder.is_some() {
            if idx >= self.strikes.len() {
                self.strikes.resize(idx + 1, 0);
            }
            if let Some(slot) = self.strikes.get_mut(idx) {
                *slot = if kod { slot.saturating_add(1) } else { 0 };
            }
        }

        let start = self.busy_until.max(at);
        let depart = start + self.cfg.service_time;
        self.busy_until = depart;
        self.queue.push_back(depart);
        if kod {
            self.stats.kod_sent += 1;
        } else {
            self.stats.served += 1;
        }
        ServiceDecision::Served { depart, kod }
    }

    /// Restart the server at `at` (outage recovery): the backlog is
    /// gone, the process is idle, and the rate table is *cold* — every
    /// client reads as never-seen, so the recovering herd's first polls
    /// are answered instead of mass-RATEd, and the table re-warms from
    /// post-restart behaviour alone. Ban-honoring clients therefore
    /// stay RATE-free across restarts (property-tested below); abusive
    /// pollers re-earn their strikes.
    pub fn restart(&mut self, at: SimTime) {
        let at = at.max(self.horizon);
        self.horizon = at;
        self.busy_until = at;
        self.queue.clear();
        self.last_seen.clear();
        self.strikes.clear();
        self.stats.restarts += 1;
    }
}

/// Fleet world parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of clients (one WiFi channel each).
    pub clients: usize,
    /// Number of server-side service models.
    pub servers: usize,
    /// Per-client channel parameters.
    pub wifi: WifiConfig,
    /// Shared cross-traffic source behind the access point.
    pub cross: CrossTrafficConfig,
    /// Initial download frequency of the cross-traffic source.
    pub initial_frequency: f64,
    /// Service model applied to every server.
    pub server: ServerModelConfig,
    /// Number of deterministic kernel shards the client population is
    /// partitioned across (contiguous id ranges). Purely an execution
    /// detail: any value ≥ 1 produces a byte-identical world; clamped to
    /// the client count.
    pub shards: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 100,
            servers: 4,
            wifi: WifiConfig::default(),
            cross: CrossTrafficConfig::default(),
            initial_frequency: 0.4,
            server: ServerModelConfig::default(),
            shards: 1,
        }
    }
}

/// Mutable world state owned by one shard's kernel.
pub struct ShardState {
    /// Last-hop channels for this shard's id range, column-wise.
    bank: ChannelBank,
    /// This shard's replica of the shared download source contending for
    /// the AP uplink. Every shard holds an identical copy (same config,
    /// same RNG stream), so all shards compute the same utilization
    /// schedule without communicating.
    cross: CrossTraffic,
}

/// One shard of the fleet world: a deterministic [`Sim`] kernel driving
/// the cross-traffic replica, plus the channel bank for a contiguous
/// range of client ids.
pub struct FleetShard {
    sim: Sim<ShardState>,
    state: ShardState,
    /// First global client id owned by this shard.
    lo: usize,
}

/// Background process: the cross-traffic replica re-decides and pushes
/// the new utilization target to the shard's channel bank.
fn cross_tick(state: &mut ShardState, sim: &mut Sim<ShardState>) {
    let t = sim.now();
    let util = state.cross.decide(t);
    state.bank.set_utilization(util);
    sim.schedule_fn_in(state.cross.decision_interval(), cross_tick);
}

impl FleetShard {
    /// Current kernel time of this shard.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Run this shard's background processes up to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.sim.run_until(&mut self.state, t);
    }

    /// First global client id owned by this shard.
    pub fn client_lo(&self) -> usize {
        self.lo
    }

    /// Number of clients owned by this shard.
    pub fn client_count(&self) -> usize {
        self.state.bank.len()
    }

    /// Whether global client id `client` lives in this shard.
    pub fn contains(&self, client: usize) -> bool {
        client >= self.lo && client - self.lo < self.state.bank.len()
    }

    /// The lane of *global* client id `client`, or `None` when the id is
    /// outside this shard's range.
    pub fn lane(&mut self, client: usize) -> Option<Lane<'_>> {
        let local = client.checked_sub(self.lo)?;
        self.state.bank.lane(local)
    }
}

/// The shared multi-client world: `K` deterministic kernel shards plus
/// the global server-side service models.
pub struct FleetNet {
    shards: Vec<FleetShard>,
    servers: Vec<ServerModel>,
}

impl FleetNet {
    /// Build a fleet world from the trial seed using the documented
    /// RNG-lane scheme (see module docs).
    pub fn new(cfg: &FleetConfig, seed: u64) -> Self {
        let mut root = SimRng::new(seed);
        let mut chan_root = root.fork(1);
        let cross_rng = root.fork(2);
        // Lane RNGs are forked serially in global id order — client i's
        // stream depends only on (seed, i), never on N or the shard count.
        let mut lane_rngs: Vec<SimRng> =
            (0..cfg.clients).map(|i| chan_root.fork(i as u64)).collect();
        let servers = (0..cfg.servers)
            .map(|_| ServerModel::new(cfg.server.clone()))
            .collect();
        let k = cfg.shards.max(1).min(cfg.clients.max(1));
        let base = cfg.clients / k;
        let rem = cfg.clients % k;
        let mut shards = Vec::with_capacity(k);
        let mut lo = 0usize;
        for s in 0..k {
            let len = base + usize::from(s < rem);
            let rngs: Vec<SimRng> = lane_rngs.drain(..len).collect();
            let bank = ChannelBank::new(cfg.wifi.clone(), rngs);
            let cross =
                CrossTraffic::new(cfg.cross.clone(), cfg.initial_frequency, cross_rng.clone());
            let mut sim = Sim::default();
            sim.schedule_fn_at(SimTime::ZERO, cross_tick);
            shards.push(FleetShard { sim, state: ShardState { bank, cross }, lo });
            lo += len;
        }
        FleetNet { shards, servers }
    }

    /// Current kernel time (all shards advance in lockstep under
    /// [`FleetNet::advance_to`]).
    pub fn now(&self) -> SimTime {
        self.shards.first().map_or(SimTime::ZERO, FleetShard::now)
    }

    /// Run background processes (cross-traffic decisions) on every shard
    /// up to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        for shard in &mut self.shards {
            shard.advance_to(t);
        }
    }

    /// Cross-layer hints for one client's channel at `t`, advancing the
    /// world first. `None` for an out-of-range client id.
    pub fn hints(&mut self, client: usize, t: SimTime) -> Option<WirelessHints> {
        self.advance_to(t);
        let shard = self.shards.iter_mut().find(|s| s.contains(client))?;
        shard.lane(client).map(|mut lane| lane.hints(t))
    }

    /// Simultaneous mutable access to one client's lane and one server's
    /// service model (the two ends of an exchange). `None` if either id
    /// is out of range.
    pub fn lanes(&mut self, client: usize, server: usize) -> Option<(Lane<'_>, &mut ServerModel)> {
        let server = self.servers.get_mut(server)?;
        let shard = self.shards.iter_mut().find(|s| s.contains(client))?;
        let lane = shard.lane(client)?;
        Some((lane, server))
    }

    /// Simultaneous mutable access to the shard array and the global
    /// server models — the split the epoch-barrier fleet runner needs to
    /// tick shards on parallel workers while serializing server-side
    /// admission.
    pub fn parts(&mut self) -> (&mut [FleetShard], &mut [ServerModel]) {
        (&mut self.shards, &mut self.servers)
    }

    /// One server's service model, for post-run stats collection.
    pub fn server_model(&self, server: usize) -> Option<&ServerModel> {
        self.servers.get(server)
    }

    /// Number of client channels across all shards.
    pub fn client_count(&self) -> usize {
        self.shards.iter().map(FleetShard::client_count).sum()
    }

    /// Number of server models.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of kernel shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn quiet_server_serves_everyone() {
        let mut m = ServerModel::new(ServerModelConfig::default());
        for i in 0..10u32 {
            let d = m.on_arrival(i, secs(i as f64));
            assert!(matches!(d, ServiceDecision::Served { kod: false, .. }));
        }
        assert_eq!(m.stats.served, 10);
        assert_eq!(m.stats.dropped, 0);
        assert_eq!(m.stats.kod_sent, 0);
    }

    #[test]
    fn departures_are_fifo_and_monotone() {
        let mut m = ServerModel::new(ServerModelConfig::default());
        let mut last = SimTime::ZERO;
        // A burst of simultaneous arrivals must depart in admission
        // order, spaced by the service time.
        for i in 0..20u32 {
            match m.on_arrival(i, secs(1.0)) {
                ServiceDecision::Served { depart, .. } => {
                    assert!(depart > last, "reply {i} departs out of order");
                    last = depart;
                }
                ServiceDecision::Dropped => panic!("capacity 64 cannot drop 20"),
            }
        }
    }

    #[test]
    fn backlog_overflow_drops() {
        let cfg = ServerModelConfig { queue_capacity: 4, ..ServerModelConfig::default() };
        let mut m = ServerModel::new(cfg);
        let mut dropped = 0;
        for i in 0..10u32 {
            if m.on_arrival(i, secs(1.0)) == ServiceDecision::Dropped {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 6);
        assert_eq!(m.stats.dropped, 6);
        // The queue drains: later arrivals are served again.
        assert!(matches!(
            m.on_arrival(99, secs(100.0)),
            ServiceDecision::Served { kod: false, .. }
        ));
    }

    #[test]
    fn fast_poller_draws_rate_kiss() {
        let mut m = ServerModel::new(ServerModelConfig::default());
        assert!(matches!(
            m.on_arrival(7, secs(10.0)),
            ServiceDecision::Served { kod: false, .. }
        ));
        // 0.5 s later: below the 2 s hard floor.
        assert!(matches!(
            m.on_arrival(7, secs(10.5)),
            ServiceDecision::Served { kod: true, .. }
        ));
        // A different client at the same instant is fine.
        assert!(matches!(
            m.on_arrival(8, secs(10.5)),
            ServiceDecision::Served { kod: false, .. }
        ));
    }

    #[test]
    fn overload_floor_never_exceeds_health_ban() {
        let cfg = ServerModelConfig {
            overload_min_poll_secs: 500.0, // misconfigured: must clamp
            ..ServerModelConfig::default()
        };
        let m = ServerModel::new(cfg);
        assert!(m.config().overload_min_poll_secs <= HEALTH_RATE_BAN_SECS);
    }

    #[test]
    fn out_of_order_arrivals_clamp_forward() {
        let mut m = ServerModel::new(ServerModelConfig::default());
        m.on_arrival(0, secs(5.0));
        // Client 1's arrival computed earlier in the tick loop but
        // delivered after client 0's: clamped to 5.0, still served.
        match m.on_arrival(1, secs(4.9)) {
            ServiceDecision::Served { depart, .. } => assert!(depart >= secs(5.0)),
            ServiceDecision::Dropped => panic!("clamped arrival must be admitted"),
        }
    }

    #[test]
    fn fleet_world_is_deterministic() {
        let cfg = FleetConfig { clients: 5, servers: 2, ..FleetConfig::default() };
        let mut a = FleetNet::new(&cfg, 42);
        let mut b = FleetNet::new(&cfg, 42);
        for step in 1..=20 {
            let t = secs(step as f64);
            for c in 0..5 {
                assert_eq!(a.hints(c, t), b.hints(c, t), "client {c} step {step}");
            }
        }
    }

    #[test]
    fn channel_lanes_stable_under_population_growth() {
        // Client i's channel behaviour must not depend on N: lane i is
        // forked by index, not drawn sequentially.
        let small = FleetConfig { clients: 3, servers: 1, ..FleetConfig::default() };
        let big = FleetConfig { clients: 8, servers: 1, ..FleetConfig::default() };
        let mut a = FleetNet::new(&small, 7);
        let mut b = FleetNet::new(&big, 7);
        for step in 1..=10 {
            let t = secs(step as f64);
            for c in 0..3 {
                assert_eq!(a.hints(c, t), b.hints(c, t), "client {c} step {step}");
            }
        }
    }

    #[test]
    fn shard_count_is_not_observable() {
        // The whole sharding contract in one assertion: partitioning the
        // same seeded world across K kernels must not change a single
        // hint or transmit delay for any client.
        let mk = |shards| FleetConfig { clients: 7, servers: 2, shards, ..FleetConfig::default() };
        let mut a = FleetNet::new(&mk(1), 99);
        let mut b = FleetNet::new(&mk(3), 99);
        assert_eq!(a.shard_count(), 1);
        assert_eq!(b.shard_count(), 3);
        assert_eq!(a.client_count(), b.client_count());
        for step in 1..=30usize {
            let t = secs(step as f64 * 0.7);
            for c in 0..7 {
                assert_eq!(a.hints(c, t), b.hints(c, t), "hints client {c} step {step}");
            }
            let c = step % 7;
            let (mut la, _) = a.lanes(c, 0).expect("lane");
            let da = la.transmit_up(t);
            let (mut lb, _) = b.lanes(c, 0).expect("lane");
            assert_eq!(da, lb.transmit_up(t), "uplink client {c} step {step}");
        }
    }

    #[test]
    fn shards_clamp_to_population() {
        let cfg = FleetConfig { clients: 3, servers: 1, shards: 16, ..FleetConfig::default() };
        let net = FleetNet::new(&cfg, 5);
        assert_eq!(net.shard_count(), 3);
        assert_eq!(net.client_count(), 3);
    }

    #[test]
    fn bursty_same_tick_load_triggers_overload_floor() {
        let cfg = ServerModelConfig {
            service_time: SimDuration::from_secs_f64(30.0),
            overload_backlog: 2,
            ..ServerModelConfig::default()
        };
        let mut m = ServerModel::new(cfg);
        // Fill the backlog (30 s service keeps it deep), then a repeat
        // visitor inside the overload floor (but outside the 2 s hard
        // floor) draws a RATE kiss.
        for c in 0..5u32 {
            m.on_arrival(c, secs(1.0));
        }
        assert!(matches!(
            m.on_arrival(0, secs(11.0)),
            ServiceDecision::Served { kod: true, .. }
        ));
        assert!(m.stats.kod_sent >= 1);
    }

    #[test]
    fn ladder_ramp_floor_rates_between_rungs() {
        let cfg = ServerModelConfig {
            service_time: SimDuration::from_secs_f64(30.0),
            overload_backlog: 8,
            ladder: Some(DegradationConfig {
                ramp_backlog: 2,
                ramp_min_poll_secs: 16.0,
                shed_strikes: 200,
            }),
            ..ServerModelConfig::default()
        };
        let mut m = ServerModel::new(cfg);
        // Backlog 3 after these (30 s service): ramp rung, not overload.
        for c in 1..4u32 {
            m.on_arrival(c, secs(1.0));
        }
        m.on_arrival(0, secs(2.0));
        // 8 s later: beyond the 2 s hard floor but inside the 16 s ramp
        // floor — RATEd only because the ramp rung is engaged.
        assert!(matches!(
            m.on_arrival(0, secs(10.0)),
            ServiceDecision::Served { kod: true, .. }
        ));
        // 20 s later: beyond the ramp floor — served.
        assert!(matches!(
            m.on_arrival(0, secs(30.0)),
            ServiceDecision::Served { kod: false, .. }
        ));
    }

    #[test]
    fn ladder_sheds_striking_pollers_under_overload_only() {
        let cfg = ServerModelConfig {
            service_time: SimDuration::from_secs_f64(30.0),
            overload_backlog: 4,
            ladder: Some(DegradationConfig {
                ramp_backlog: 2,
                ramp_min_poll_secs: 4.0,
                shed_strikes: 2,
            }),
            ..ServerModelConfig::default()
        };
        let mut m = ServerModel::new(cfg);
        // Deep backlog from background clients.
        for c in 10..16u32 {
            m.on_arrival(c, secs(1.0));
        }
        // Client 0 hammers at 0.5 s spacing: two RATE kisses earn the
        // strikes, then arrivals are shed while overload persists.
        m.on_arrival(0, secs(2.0));
        assert!(matches!(
            m.on_arrival(0, secs(2.5)),
            ServiceDecision::Served { kod: true, .. }
        ));
        assert!(matches!(
            m.on_arrival(0, secs(3.0)),
            ServiceDecision::Served { kod: true, .. }
        ));
        let before = m.stats.shed;
        assert_eq!(m.on_arrival(0, secs(3.5)), ServiceDecision::Dropped);
        assert_eq!(m.stats.shed, before + 1);
        // A compliant client at the same instant is still served.
        assert!(matches!(
            m.on_arrival(20, secs(3.5)),
            ServiceDecision::Served { .. }
        ));
        // Once the queue drains (no overload), the striker is answered
        // again — and a ban-length gap clears its strikes.
        assert!(matches!(
            m.on_arrival(0, secs(300.0)),
            ServiceDecision::Served { kod: false, .. }
        ));
    }

    #[test]
    fn restart_clears_backlog_and_rate_state() {
        let cfg = ServerModelConfig {
            service_time: SimDuration::from_secs_f64(30.0),
            ladder: Some(DegradationConfig::default()),
            ..ServerModelConfig::default()
        };
        let mut m = ServerModel::new(cfg);
        for c in 0..10u32 {
            m.on_arrival(c, secs(1.0));
        }
        // Client 0 just polled at t=1; without the restart a poll at
        // t=2 would draw a RATE kiss (hard floor 2 s).
        m.restart(secs(1.5));
        assert_eq!(m.backlog(), 0);
        assert_eq!(m.stats.restarts, 1);
        match m.on_arrival(0, secs(2.0)) {
            ServiceDecision::Served { depart, kod } => {
                assert!(!kod, "cold rate table must not RATE the first post-restart poll");
                // The process restarted idle: service begins at the
                // arrival, not behind the pre-restart backlog.
                assert!(depart <= secs(2.0) + SimDuration::from_secs_f64(30.0));
            }
            ServiceDecision::Dropped => panic!("restarted server must serve"),
        }
    }

    #[test]
    fn lanes_rejects_out_of_range() {
        let cfg = FleetConfig { clients: 2, servers: 1, ..FleetConfig::default() };
        let mut net = FleetNet::new(&cfg, 1);
        assert!(net.lanes(0, 0).is_some());
        assert!(net.lanes(2, 0).is_none());
        assert!(net.lanes(0, 1).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    props! {
        /// The bounded service queue is globally FIFO, so one client's
        /// replies can never overtake each other — for any interleaving
        /// of clients, gaps, and backlog states.
        fn same_client_replies_never_reorder(
            clients in prop::vecs(prop::ints(0..6), 2..200),
            gaps_ms in prop::vecs(prop::ints(0..2000), 2..200),
        ) {
            let cfg = ServerModelConfig {
                queue_capacity: 8,
                service_time: SimDuration::from_secs_f64(0.05),
                ..ServerModelConfig::default()
            };
            let mut m = ServerModel::new(cfg);
            let mut t = 0.0f64;
            let mut last_per_client: std::collections::BTreeMap<u32, SimTime> =
                std::collections::BTreeMap::new();
            let mut last_any = SimTime::ZERO;
            for (c, g) in clients.iter().zip(gaps_ms.iter()) {
                t += *g as f64 / 1e3;
                let c = *c as u32;
                if let ServiceDecision::Served { depart, .. } = m.on_arrival(c, secs(t)) {
                    prop_assert!(depart >= last_any, "global FIFO violated at t={t}");
                    last_any = depart;
                    if let Some(prev) = last_per_client.insert(c, depart) {
                        prop_assert!(depart > prev, "client {c} reply reordered at t={t}");
                    }
                }
            }
        }

        /// RFC 5905 ban compliance: a client spaced at or beyond the
        /// 64 s RATE back-off of `sntp::health` is never RATEd, no
        /// matter what load the rest of the fleet applies — the overload
        /// poll floor is clamped to the ban by construction.
        fn ban_honoring_client_never_rated(
            load_clients in prop::vecs(prop::ints(1..40), 1..300),
            load_gaps_ms in prop::vecs(prop::ints(0..300), 1..300),
            honor_slack_s in prop::vecs(prop::ints(0..30), 5..20),
        ) {
            // Merge a hammering background population with client 0,
            // which honors the health ban (>= 64 s between polls), into
            // one time-sorted arrival sequence.
            let mut events: Vec<(f64, u32)> = Vec::new();
            let mut t = 0.0f64;
            for (c, g) in load_clients.iter().zip(load_gaps_ms.iter()) {
                t += *g as f64 / 1e3;
                events.push((t, *c as u32));
            }
            let mut th = 0.0f64;
            for slack in &honor_slack_s {
                th += HEALTH_RATE_BAN_SECS + *slack as f64;
                events.push((th, 0));
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // Slow service + low overload threshold: the queue is deep
            // for most of the run, so the overload floor is live.
            let cfg = ServerModelConfig {
                queue_capacity: 16,
                service_time: SimDuration::from_secs_f64(0.2),
                overload_backlog: 2,
                ..ServerModelConfig::default()
            };
            let mut m = ServerModel::new(cfg);
            for (at, c) in events {
                let d = m.on_arrival(c, secs(at));
                if c == 0 {
                    prop_assert!(
                        !matches!(d, ServiceDecision::Served { kod: true, .. }),
                        "ban-honoring client RATEd at t={at}"
                    );
                }
            }
        }

        /// The ladder extension of the invariant above: with every rung
        /// of the degradation ladder engaged (ramp floor, overload
        /// floor, strike shedding) *and* restarts injected mid-run, a
        /// client spaced at or beyond the 64 s ban is still never RATEd
        /// and never shed — every rung is clamped to the ban, strikes
        /// require a RATE first, and restarts cold-start the rate table
        /// instead of mass-RATE-ing the recovering herd.
        fn ban_honoring_client_survives_ladder_and_restart(
            load_clients in prop::vecs(prop::ints(1..40), 1..300),
            load_gaps_ms in prop::vecs(prop::ints(0..300), 1..300),
            honor_slack_s in prop::vecs(prop::ints(0..30), 5..20),
            restart_at_s in prop::vecs(prop::ints(1..2000), 0..4),
            ramp_backlog in prop::ints(0..8),
            ramp_floor_s in prop::ints(1..200),
            shed_strikes in prop::ints(1..6),
        ) {
            let mut events: Vec<(f64, u32)> = Vec::new();
            let mut t = 0.0f64;
            for (c, g) in load_clients.iter().zip(load_gaps_ms.iter()) {
                t += *g as f64 / 1e3;
                events.push((t, *c as u32));
            }
            let mut th = 0.0f64;
            for slack in &honor_slack_s {
                th += HEALTH_RATE_BAN_SECS + *slack as f64;
                events.push((th, 0));
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // Restarts as sentinel events (client u32::MAX), merged in.
            let mut restarts: Vec<(f64, u32)> =
                restart_at_s.iter().map(|s| (*s as f64, u32::MAX)).collect();
            restarts.sort_by(|a, b| a.0.total_cmp(&b.0));
            let cfg = ServerModelConfig {
                queue_capacity: 16,
                service_time: SimDuration::from_secs_f64(0.2),
                overload_backlog: 2,
                ladder: Some(DegradationConfig {
                    ramp_backlog: ramp_backlog as usize,
                    // Deliberately absurd floors: clamping must save us.
                    ramp_min_poll_secs: ramp_floor_s as f64,
                    shed_strikes: shed_strikes as u8,
                }),
                ..ServerModelConfig::default()
            };
            let mut m = ServerModel::new(cfg);
            let mut restarts = restarts.into_iter().peekable();
            for (at, c) in events {
                while restarts.peek().is_some_and(|(r, _)| *r <= at) {
                    if let Some((r, _)) = restarts.next() {
                        m.restart(secs(r));
                    }
                }
                let d = m.on_arrival(c, secs(at));
                if c == 0 {
                    prop_assert!(
                        !matches!(d, ServiceDecision::Served { kod: true, .. }),
                        "ban-honoring client RATEd at t={at} under the ladder"
                    );
                    prop_assert!(
                        !matches!(d, ServiceDecision::Dropped) || m.backlog() >= 16,
                        "ban-honoring client shed at t={at}"
                    );
                }
            }
        }
    }
}
