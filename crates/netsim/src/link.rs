//! Per-packet delay and loss models for wired segments.
//!
//! These models cover every non-WiFi path in the reproduction: the
//! Ethernet last hop of the paper's wired control experiments, and the
//! Internet backbone between the testbed's uplink and each NTP pool
//! server. The WiFi last hop has its own stateful model in [`crate::wifi`]
//! because its delay and loss are driven by channel state rather than
//! being i.i.d.

use clocksim::rng::SimRng;
use clocksim::time::SimDuration;

/// A per-packet one-way-delay distribution.
#[derive(Clone, Debug)]
pub enum DelayModel {
    /// Constant delay.
    Fixed(SimDuration),
    /// Gaussian jitter around a mean, truncated below at `floor_ms`.
    Normal {
        /// Mean delay, ms.
        mean_ms: f64,
        /// Standard deviation, ms.
        sigma_ms: f64,
        /// Hard lower bound, ms (propagation delay can't be beaten).
        floor_ms: f64,
    },
    /// Lognormal body — the classic shape of Internet OWDs.
    LogNormal {
        /// Median delay, ms (the lognormal's scale parameter `e^mu`).
        median_ms: f64,
        /// Shape `sigma` of the underlying normal.
        sigma: f64,
        /// Hard lower bound, ms.
        floor_ms: f64,
    },
    /// Lognormal body plus a Pareto spike tail occurring with probability
    /// `spike_prob` — models transient cross-traffic queueing on a path.
    SpikyLogNormal {
        /// Median of the body, ms.
        median_ms: f64,
        /// Shape of the body.
        sigma: f64,
        /// Hard lower bound, ms.
        floor_ms: f64,
        /// Per-packet probability of hitting the spike tail.
        spike_prob: f64,
        /// Pareto scale of the tail, ms (minimum spike size).
        spike_scale_ms: f64,
        /// Pareto shape of the tail (smaller = heavier).
        spike_alpha: f64,
    },
}

impl DelayModel {
    /// Ethernet LAN hop: ~0.3 ms, almost no jitter.
    pub fn ethernet() -> Self {
        DelayModel::Normal { mean_ms: 0.3, sigma_ms: 0.05, floor_ms: 0.1 }
    }

    /// A typical wired Internet path to a nearby pool server.
    pub fn backbone(median_ms: f64) -> Self {
        DelayModel::SpikyLogNormal {
            median_ms,
            sigma: 0.08,
            floor_ms: median_ms * 0.8,
            spike_prob: 0.01,
            spike_scale_ms: 4.0,
            spike_alpha: 1.8,
        }
    }

    /// Sample one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let ms = match self {
            DelayModel::Fixed(d) => return *d,
            DelayModel::Normal { mean_ms, sigma_ms, floor_ms } => {
                rng.normal(*mean_ms, *sigma_ms).max(*floor_ms)
            }
            DelayModel::LogNormal { median_ms, sigma, floor_ms } => {
                (rng.lognormal(median_ms.ln(), *sigma)).max(*floor_ms)
            }
            DelayModel::SpikyLogNormal {
                median_ms,
                sigma,
                floor_ms,
                spike_prob,
                spike_scale_ms,
                spike_alpha,
            } => {
                let mut d = rng.lognormal(median_ms.ln(), *sigma).max(*floor_ms);
                if rng.chance(*spike_prob) {
                    d += rng.pareto(*spike_scale_ms, *spike_alpha);
                }
                d
            }
        };
        SimDuration::from_millis_f64(ms)
    }
}

/// A per-packet loss process.
#[derive(Clone, Debug)]
pub enum LossModel {
    /// Never loses.
    None,
    /// Independent loss with fixed probability.
    Bernoulli(f64),
    /// Two-state Gilbert–Elliott burst-loss model. State transitions are
    /// evaluated per packet.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_gb: f64,
        /// P(bad → good) per packet.
        p_bg: f64,
        /// Loss probability in the good state.
        loss_good: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
        /// Current state: true = bad.
        in_bad: bool,
    },
}

impl LossModel {
    /// Evaluate the next packet: returns `true` if it is lost. Stateful
    /// models advance.
    pub fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(*p),
            LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad, in_bad } => {
                if *in_bad {
                    if rng.chance(*p_bg) {
                        *in_bad = false;
                    }
                } else if rng.chance(*p_gb) {
                    *in_bad = true;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.chance(p)
            }
        }
    }
}

/// A unidirectional link: delay plus loss.
#[derive(Clone, Debug)]
pub struct Link {
    /// Delay distribution.
    pub delay: DelayModel,
    /// Loss process.
    pub loss: LossModel,
}

impl Link {
    /// A lossless link with the given delay model.
    pub fn lossless(delay: DelayModel) -> Self {
        Link { delay, loss: LossModel::None }
    }

    /// Transmit one packet: `Some(delay)` if delivered, `None` if lost.
    pub fn transmit(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        if self.loss.is_lost(rng) {
            None
        } else {
            Some(self.delay.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ms(model: &DelayModel, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| model.sample(&mut rng).as_millis_f64()).collect()
    }

    #[test]
    fn fixed_is_fixed() {
        let m = DelayModel::Fixed(SimDuration::from_millis(7));
        assert!(collect_ms(&m, 100, 1).iter().all(|&d| (d - 7.0).abs() < 1e-9));
    }

    #[test]
    fn normal_respects_floor_and_mean() {
        let m = DelayModel::Normal { mean_ms: 10.0, sigma_ms: 2.0, floor_ms: 5.0 };
        let xs = collect_ms(&m, 20_000, 2);
        assert!(xs.iter().all(|&d| d >= 5.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn lognormal_median() {
        let m = DelayModel::LogNormal { median_ms: 20.0, sigma: 0.3, floor_ms: 1.0 };
        let mut xs = collect_ms(&m, 20_000, 3);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 20.0).abs() < 1.0, "median={med}");
    }

    #[test]
    fn spiky_tail_appears_at_roughly_configured_rate() {
        let m = DelayModel::SpikyLogNormal {
            median_ms: 10.0,
            sigma: 0.05,
            floor_ms: 8.0,
            spike_prob: 0.05,
            spike_scale_ms: 50.0,
            spike_alpha: 2.0,
        };
        let xs = collect_ms(&m, 50_000, 4);
        let spikes = xs.iter().filter(|&&d| d > 40.0).count() as f64 / xs.len() as f64;
        assert!((spikes - 0.05).abs() < 0.01, "spike rate {spikes}");
    }

    #[test]
    fn bernoulli_loss_rate() {
        let mut loss = LossModel::Bernoulli(0.2);
        let mut rng = SimRng::new(5);
        let lost = (0..50_000).filter(|_| loss.is_lost(&mut rng)).count() as f64 / 50_000.0;
        assert!((lost - 0.2).abs() < 0.01, "loss={lost}");
    }

    #[test]
    fn gilbert_elliott_bursts() {
        let mut loss = LossModel::GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.2,
            loss_good: 0.001,
            loss_bad: 0.5,
            in_bad: false,
        };
        let mut rng = SimRng::new(6);
        let outcomes: Vec<bool> = (0..100_000).map(|_| loss.is_lost(&mut rng)).collect();
        let rate = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        // Stationary bad fraction = p_gb / (p_gb + p_bg) ≈ 0.0909;
        // expected loss ≈ 0.0909 * 0.5 + 0.909 * 0.001 ≈ 0.0464.
        assert!((rate - 0.0464).abs() < 0.01, "rate={rate}");
        // Burstiness: P(loss | prev loss) should far exceed the base rate.
        let mut pairs = 0;
        let mut both = 0;
        for w in outcomes.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    both += 1;
                }
            }
        }
        let cond = both as f64 / pairs as f64;
        assert!(cond > 2.0 * rate, "cond={cond} rate={rate}");
    }

    #[test]
    fn link_transmit_composes() {
        let mut link =
            Link { delay: DelayModel::Fixed(SimDuration::from_millis(5)), loss: LossModel::Bernoulli(0.5) };
        let mut rng = SimRng::new(7);
        let results: Vec<Option<SimDuration>> = (0..1000).map(|_| link.transmit(&mut rng)).collect();
        let delivered = results.iter().flatten().count();
        assert!((300..700).contains(&delivered));
        assert!(results.iter().flatten().all(|d| *d == SimDuration::from_millis(5)));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::backbone(25.0);
        assert_eq!(collect_ms(&m, 100, 42), collect_ms(&m, 100, 42));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// Every delay model yields non-negative delays at least as large
        /// as its floor, for any parameters in sane ranges.
        fn delays_respect_floors(
            mean in prop::floats(0.5..200.0),
            sigma in prop::floats(0.0..50.0),
            floor in prop::floats(0.0..10.0),
            seed in prop::any_u64(),
        ) {
            let mut rng = SimRng::new(seed);
            let m = DelayModel::Normal { mean_ms: mean, sigma_ms: sigma, floor_ms: floor };
            for _ in 0..100 {
                let d = m.sample(&mut rng).as_millis_f64();
                prop_assert!(d >= floor - 1e-5, "d={d} floor={floor}"); // ns quantization
            }
            let m = DelayModel::LogNormal { median_ms: mean, sigma: 0.5, floor_ms: floor };
            for _ in 0..100 {
                prop_assert!(m.sample(&mut rng).as_millis_f64() >= floor - 1e-5);
            }
        }

        /// Bernoulli loss rate converges to p for any p.
        fn bernoulli_rate_converges(p in prop::floats(0.0..1.0), seed in prop::any_u64()) {
            let mut loss = LossModel::Bernoulli(p);
            let mut rng = SimRng::new(seed);
            let n = 20_000;
            let lost = (0..n).filter(|_| loss.is_lost(&mut rng)).count() as f64 / n as f64;
            prop_assert!((lost - p).abs() < 0.02, "lost={lost} p={p}");
        }

        /// Gilbert–Elliott never panics and produces a rate between its
        /// good-state and bad-state loss probabilities.
        fn gilbert_elliott_rate_bounded(
            p_gb in prop::floats(0.001..0.5),
            p_bg in prop::floats(0.001..0.5),
            lg in prop::floats(0.0..0.1),
            lb in prop::floats(0.2..1.0),
            seed in prop::any_u64(),
        ) {
            let mut loss = LossModel::GilbertElliott { p_gb, p_bg, loss_good: lg, loss_bad: lb, in_bad: false };
            let mut rng = SimRng::new(seed);
            let n = 20_000;
            let rate = (0..n).filter(|_| loss.is_lost(&mut rng)).count() as f64 / n as f64;
            prop_assert!(rate >= lg - 0.02 && rate <= lb + 0.02, "rate={rate}");
        }
    }
}
