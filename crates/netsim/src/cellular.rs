//! The 4G cellular last hop behind the paper's §3.3 experiment (Figure 5).
//!
//! A phone on a commercial LTE network sees three delay mechanisms that a
//! lab WiFi link does not:
//!
//! * **RRC promotion** — after an idle period the radio drops to
//!   `RRC_IDLE`; the first packet pays a promotion delay of several
//!   hundred ms.
//! * **High-variance base OWD** — the paper's log analysis (§3.1) found
//!   mobile-provider clients with median minimum OWDs around 550 ms and
//!   large interquartile ranges; the base delay here is lognormal with a
//!   heavy shoulder.
//! * **Downlink bufferbloat** — deep eNodeB buffers hold seconds of queue
//!   under load, inflating the server→client leg far more than the
//!   client→server leg. This asymmetry is what pushes SNTP offsets to the
//!   ~200 ms regime of Figure 5.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

/// Configuration of the cellular model. Defaults land in the Figure 5
/// regime: SNTP offset mean ≈ 190 ms, σ ≈ 55 ms, max ≈ 840 ms.
#[derive(Clone, Debug)]
pub struct CellularConfig {
    /// Radio returns to idle after this much inactivity, s.
    pub rrc_idle_timeout_secs: f64,
    /// Promotion delay range when leaving idle, ms.
    pub promotion_ms: (f64, f64),
    /// Median uplink OWD, ms.
    pub uplink_median_ms: f64,
    /// Median downlink OWD before load, ms.
    pub downlink_median_ms: f64,
    /// Lognormal shape of the base OWDs.
    pub owd_sigma: f64,
    /// Mean of the load OU process (0..1).
    pub load_mean: f64,
    /// Stationary σ of the load process.
    pub load_sigma: f64,
    /// Time constant of the load process, s.
    pub load_tau_secs: f64,
    /// Mean extra downlink delay at full load, ms.
    pub bloat_gain_ms: f64,
    /// Exponent mapping load to bloat.
    pub bloat_exp: f64,
    /// Random packet loss probability.
    pub loss_prob: f64,
    /// Cap on any sampled delay, ms.
    pub delay_cap_ms: f64,
}

impl Default for CellularConfig {
    fn default() -> Self {
        CellularConfig {
            rrc_idle_timeout_secs: 10.0,
            promotion_ms: (180.0, 550.0),
            uplink_median_ms: 38.0,
            downlink_median_ms: 45.0,
            owd_sigma: 0.30,
            load_mean: 0.55,
            load_sigma: 0.18,
            load_tau_secs: 90.0,
            bloat_gain_ms: 900.0,
            bloat_exp: 1.6,
            loss_prob: 0.015,
            delay_cap_ms: 2000.0,
        }
    }
}

/// Live cellular channel state.
#[derive(Clone, Debug)]
pub struct CellularChannel {
    cfg: CellularConfig,
    load: f64,
    last_activity: SimTime,
    last_update: SimTime,
    rng: SimRng,
}

impl CellularChannel {
    /// New channel; the radio starts idle.
    pub fn new(cfg: CellularConfig, rng: SimRng) -> Self {
        let load = cfg.load_mean;
        CellularChannel {
            cfg,
            load,
            last_activity: SimTime::from_secs(-3600),
            last_update: SimTime::ZERO,
            rng,
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        let dt = (t - self.last_update).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        let a = (-dt / self.cfg.load_tau_secs).exp();
        let noise = self.cfg.load_sigma * (1.0 - a * a).sqrt() * self.rng.gauss();
        self.load = (self.cfg.load_mean + (self.load - self.cfg.load_mean) * a + noise)
            .clamp(0.0, 1.0);
        self.last_update = t;
    }

    /// Current cell load estimate (diagnostics).
    pub fn load(&mut self, t: SimTime) -> f64 {
        self.advance_to(t);
        self.load
    }

    /// True if the radio would be idle at `t` (promotion needed).
    pub fn is_idle(&self, t: SimTime) -> bool {
        (t - self.last_activity).as_secs_f64() > self.cfg.rrc_idle_timeout_secs
    }

    /// Promotion delay if idle, else zero. Marks the radio active.
    fn wake(&mut self, t: SimTime) -> f64 {
        let promo = if self.is_idle(t) {
            self.rng.uniform_range(self.cfg.promotion_ms.0, self.cfg.promotion_ms.1)
        } else {
            0.0
        };
        self.last_activity = t;
        promo
    }

    /// Uplink (phone → Internet) packet at `t`.
    pub fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        if self.rng.chance(self.cfg.loss_prob) {
            return None;
        }
        let promo = self.wake(t);
        let base = self.rng.lognormal(self.cfg.uplink_median_ms.ln(), self.cfg.owd_sigma);
        Some(SimDuration::from_millis_f64((promo + base).min(self.cfg.delay_cap_ms)))
    }

    /// Downlink (Internet → phone) packet at `t`: base OWD plus
    /// load-dependent bufferbloat.
    pub fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        if self.rng.chance(self.cfg.loss_prob) {
            return None;
        }
        self.last_activity = t;
        let base = self.rng.lognormal(self.cfg.downlink_median_ms.ln(), self.cfg.owd_sigma);
        let bloat = self.cfg.bloat_gain_ms * self.load.powf(self.cfg.bloat_exp)
            * self.rng.exponential(1.0).min(3.0);
        Some(SimDuration::from_millis_f64((base + bloat).min(self.cfg.delay_cap_ms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_radio_pays_promotion() {
        let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(1));
        let t = SimTime::from_secs(100);
        assert!(ch.is_idle(t));
        let first = ch.transmit_up(t).unwrap();
        // Next packet 1 s later: radio still connected.
        let second = ch.transmit_up(t + SimDuration::from_secs(1)).unwrap();
        assert!(
            first.as_millis_f64() > second.as_millis_f64() + 100.0,
            "first={first:?} second={second:?}"
        );
    }

    #[test]
    fn radio_reidles_after_timeout() {
        let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(2));
        let t0 = SimTime::from_secs(10);
        ch.transmit_up(t0);
        assert!(!ch.is_idle(t0 + SimDuration::from_secs(5)));
        assert!(ch.is_idle(t0 + SimDuration::from_secs(30)));
    }

    #[test]
    fn downlink_dominates_uplink() {
        let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(3));
        let mut up = Vec::new();
        let mut down = Vec::new();
        for i in 0..5000 {
            let t = SimTime::from_secs(i * 5);
            if let Some(d) = ch.transmit_up(t) {
                up.push(d.as_millis_f64());
            }
            if let Some(d) = ch.transmit_down(t) {
                down.push(d.as_millis_f64());
            }
        }
        // Uplink samples (after the first) should be fast except promotions.
        let mean_up = up.iter().sum::<f64>() / up.len() as f64;
        let mean_down = down.iter().sum::<f64>() / down.len() as f64;
        assert!(mean_down > mean_up + 150.0, "up={mean_up} down={mean_down}");
    }

    #[test]
    fn asymmetry_lands_in_figure5_regime() {
        // SNTP offset error ≈ (fwd − back) / 2; with the client clock held
        // at truth the observed offset is back-vs-fwd asymmetry / 2.
        let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(4));
        let mut offsets = Vec::new();
        for i in 0..2000 {
            let t = SimTime::from_secs(i * 5);
            if let (Some(up), Some(down)) = (ch.transmit_up(t), ch.transmit_down(t)) {
                offsets.push((down.as_millis_f64() - up.as_millis_f64()) / 2.0);
            }
        }
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let max = offsets.iter().cloned().fold(0.0, f64::max);
        assert!((100.0..350.0).contains(&mean), "mean offset magnitude {mean}");
        assert!(max > 500.0, "max {max}");
    }

    #[test]
    fn loss_occurs_at_configured_rate() {
        let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(5));
        let lost = (0..20_000)
            .filter(|i| ch.transmit_up(SimTime::from_secs(i * 2)).is_none())
            .count() as f64
            / 20_000.0;
        assert!((lost - 0.015).abs() < 0.005, "loss={lost}");
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut ch = CellularChannel::new(CellularConfig::default(), SimRng::new(seed));
            (0..50).map(|i| ch.transmit_down(SimTime::from_secs(i)).map(|d| d.as_nanos())).collect::<Vec<_>>()
        };
        assert_eq!(run(6), run(6));
    }
}
