//! The monitor node's interfering cross-traffic.
//!
//! In the paper's testbed (§3.2) the monitor node "occupies the WAP's
//! outgoing Internet connection intermittently by downloading a large
//! file at random intervals"; the *frequency* of those downloads is the
//! controller's second knob (besides transmit power). This module models
//! the download process: an on/off source whose on-periods drive channel
//! utilization high.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

/// Configuration of the download source.
#[derive(Clone, Debug)]
pub struct CrossTrafficConfig {
    /// How often the source decides whether to start a download, s.
    pub decision_interval_secs: f64,
    /// Download duration range, s.
    pub duration_range_secs: (f64, f64),
    /// Utilization while a download is active (sampled per download).
    pub active_util_range: (f64, f64),
    /// Idle (background) utilization range.
    pub idle_util_range: (f64, f64),
}

impl Default for CrossTrafficConfig {
    fn default() -> Self {
        CrossTrafficConfig {
            decision_interval_secs: 2.0,
            duration_range_secs: (6.0, 35.0),
            active_util_range: (0.55, 0.95),
            idle_util_range: (0.02, 0.10),
        }
    }
}

/// Live state of the download source.
#[derive(Clone, Debug)]
pub struct CrossTraffic {
    cfg: CrossTrafficConfig,
    /// Probability of starting a download at each decision instant — the
    /// monitor node's "file download frequency" knob, in `[0, 1]`.
    frequency: f64,
    /// End time of the active download, if one is running.
    active_until: Option<SimTime>,
    /// Utilization contributed right now.
    current_util: f64,
    rng: SimRng,
}

impl CrossTraffic {
    /// New idle source with the given starting frequency.
    pub fn new(cfg: CrossTrafficConfig, frequency: f64, mut rng: SimRng) -> Self {
        let idle = rng.uniform_range(cfg.idle_util_range.0, cfg.idle_util_range.1);
        CrossTraffic {
            cfg,
            frequency: frequency.clamp(0.0, 1.0),
            active_until: None,
            current_util: idle,
            rng,
        }
    }

    /// The decision cadence, for schedulers.
    pub fn decision_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.decision_interval_secs)
    }

    /// The current download frequency knob.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Adjust the frequency knob (monitor-node command), clamped to
    /// `[0.05, 0.95]` so the system never latches fully on or off.
    pub fn adjust_frequency(&mut self, delta: f64) {
        self.frequency = (self.frequency + delta).clamp(0.05, 0.95);
    }

    /// True if a download is in flight at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        self.active_until.is_some_and(|end| t < end)
    }

    /// Run one decision instant at time `t`; returns the utilization the
    /// channel should be set to.
    pub fn decide(&mut self, t: SimTime) -> f64 {
        if let Some(end) = self.active_until {
            if t >= end {
                self.active_until = None;
                self.current_util =
                    self.rng.uniform_range(self.cfg.idle_util_range.0, self.cfg.idle_util_range.1);
            }
        }
        if self.active_until.is_none() && self.rng.chance(self.frequency) {
            let dur = self
                .rng
                .uniform_range(self.cfg.duration_range_secs.0, self.cfg.duration_range_secs.1);
            self.active_until = Some(t + SimDuration::from_secs_f64(dur));
            self.current_util =
                self.rng.uniform_range(self.cfg.active_util_range.0, self.cfg.active_util_range.1);
        }
        self.current_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fraction_active(frequency: f64, seed: u64) -> f64 {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::default(), frequency, SimRng::new(seed));
        let mut active_ticks = 0;
        let ticks = 5000;
        for i in 0..ticks {
            let t = SimTime::from_secs(i * 2);
            ct.decide(t);
            if ct.is_active(t) {
                active_ticks += 1;
            }
        }
        active_ticks as f64 / ticks as f64
    }

    #[test]
    fn higher_frequency_means_more_activity() {
        let low = run_fraction_active(0.05, 1);
        let high = run_fraction_active(0.9, 1);
        assert!(high > low + 0.2, "low={low} high={high}");
        assert!(high > 0.8, "high-frequency source should be near-saturated: {high}");
    }

    #[test]
    fn utilization_levels_match_state() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::default(), 1.0, SimRng::new(2));
        // frequency clamps to 0.95 but first decision may still idle; force a few.
        let mut u = 0.0;
        for i in 0..10 {
            u = ct.decide(SimTime::from_secs(i * 2));
            if ct.is_active(SimTime::from_secs(i * 2)) {
                break;
            }
        }
        assert!(u >= 0.55, "active utilization {u}");

        let mut idle = CrossTraffic::new(CrossTrafficConfig::default(), 0.0, SimRng::new(3));
        let u = idle.decide(SimTime::from_secs(2));
        // frequency clamps to 0.05 — usually idle at the first decision.
        assert!(u <= 0.95);
    }

    #[test]
    fn downloads_end() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::default(), 0.95, SimRng::new(4));
        ct.decide(SimTime::ZERO);
        assert!(ct.is_active(SimTime::from_secs(1)));
        // Max duration is 35 s; after 60 s with no decisions it must have expired.
        assert!(!ct.is_active(SimTime::from_secs(60)));
    }

    #[test]
    fn frequency_clamped() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::default(), 0.5, SimRng::new(5));
        ct.adjust_frequency(10.0);
        assert_eq!(ct.frequency(), 0.95);
        ct.adjust_frequency(-10.0);
        assert_eq!(ct.frequency(), 0.05);
    }
}
