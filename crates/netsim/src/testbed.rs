//! The assembled laboratory testbed of the paper's Figure 3.
//!
//! Three nodes: a **wireless access point** (WAP) whose transmit power is
//! remotely adjustable, a **target node** (TN) that runs the
//! synchronization clients, and a **monitor node** (MN) that (a) injects
//! cross-traffic downloads through the WAP and (b) runs the feedback
//! controller of §3.2:
//!
//! > "if the latencies of ping probes reported by TN increase, as observed
//! > from the number of packet losses in ping probes, the file download
//! > frequency is decreased and the transmission power value is increased
//! > […] Once the channel stabilizes, as denoted by no packet losses in
//! > ping traffic, our tool automatically responds by a decrease in
//! > transmission power and increase in download frequency, making the
//! > channel conditions variable and lossy at random intervals."
//!
//! The controller's closed loop is what gives every experiment its
//! characteristic alternation of calm and hostile channel episodes.
//!
//! The testbed is also configurable with a **wired** or **cellular** last
//! hop so the same harness runs the paper's control experiments (wired
//! SNTP, §3.2) and the 4G experiment (§3.3).

use std::collections::VecDeque;

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

use crate::cellular::{CellularChannel, CellularConfig};
use crate::crosstraffic::{CrossTraffic, CrossTrafficConfig};
use crate::kernel::Sim;
use crate::link::{DelayModel, Link, LossModel};
use crate::wifi::{WifiChannel, WifiConfig, WirelessHints};

/// Which medium connects the target node to the WAP / Internet.
pub enum LastHop {
    /// Ethernet: symmetric, sub-ms, lossless.
    Wired {
        /// Client → Internet direction.
        up: Link,
        /// Internet → client direction.
        down: Link,
    },
    /// The 802.11 channel model.
    Wireless(Box<WifiChannel>),
    /// The 4G model (paper §3.3; no monitor node, no hints).
    Cellular(Box<CellularChannel>),
}

/// Monitor-node controller parameters.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Ping probe cadence, s.
    pub ping_interval_secs: f64,
    /// Control-loop cadence, s.
    pub control_interval_secs: f64,
    /// RTT above which the channel counts as degraded, ms.
    pub latency_threshold_ms: f64,
    /// Transmit-power step per control action, dB.
    pub power_step_db: f64,
    /// Download-frequency step per control action.
    pub freq_step: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            ping_interval_secs: 1.0,
            control_interval_secs: 5.0,
            latency_threshold_ms: 90.0,
            power_step_db: 1.5,
            freq_step: 0.10,
        }
    }
}

/// Full testbed configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// WiFi channel parameters (used when the last hop is wireless).
    pub wifi: WifiConfig,
    /// Cross-traffic parameters.
    pub cross: CrossTrafficConfig,
    /// Monitor-node controller parameters.
    pub monitor: MonitorConfig,
    /// Initial download frequency.
    pub initial_frequency: f64,
    /// Enable the monitor node (the 4G experiment runs without it).
    pub monitor_enabled: bool,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            wifi: WifiConfig::default(),
            cross: CrossTrafficConfig::default(),
            monitor: MonitorConfig::default(),
            initial_frequency: 0.4,
            monitor_enabled: true,
        }
    }
}

/// One recorded ping outcome.
#[derive(Clone, Copy, Debug)]
struct PingResult {
    at: SimTime,
    rtt_ms: Option<f64>,
}

/// Mutable world state driven by the kernel.
pub struct TestbedState {
    /// The last hop between TN and the WAP/Internet.
    pub last_hop: LastHop,
    cross: Option<CrossTraffic>,
    monitor_cfg: MonitorConfig,
    pings: VecDeque<PingResult>,
    rng: SimRng,
    /// Telemetry counters for tests and diagnostics.
    pub control_actions: u64,
    /// Count of degraded-channel verdicts by the controller.
    pub degraded_verdicts: u64,
}

impl TestbedState {
    fn apply_utilization(&mut self, t: SimTime) {
        if let (Some(cross), LastHop::Wireless(wifi)) = (&mut self.cross, &mut self.last_hop) {
            let u = cross.decide(t);
            wifi.set_utilization(u);
        }
    }

    fn ping_once(&mut self, t: SimTime) {
        let rtt_ms = match &mut self.last_hop {
            LastHop::Wireless(wifi) => {
                let up = wifi.transmit_up(t);
                let down = wifi.transmit_down(t);
                match (up, down) {
                    (Some(u), Some(d)) => Some(u.as_millis_f64() + d.as_millis_f64() + 1.0),
                    _ => None,
                }
            }
            LastHop::Wired { up, down } => {
                let u = up.transmit(&mut self.rng);
                let d = down.transmit(&mut self.rng);
                match (u, d) {
                    (Some(u), Some(d)) => Some(u.as_millis_f64() + d.as_millis_f64() + 1.0),
                    _ => None,
                }
            }
            LastHop::Cellular(cell) => {
                let up = cell.transmit_up(t);
                let down = cell.transmit_down(t);
                match (up, down) {
                    (Some(u), Some(d)) => Some(u.as_millis_f64() + d.as_millis_f64() + 1.0),
                    _ => None,
                }
            }
        };
        self.pings.push_back(PingResult { at: t, rtt_ms });
        while self.pings.len() > 64 {
            self.pings.pop_front();
        }
    }

    /// The §3.2 control law, run once per control interval.
    fn control_step(&mut self, t: SimTime) {
        let window_start = t + SimDuration::from_secs_f64(-self.monitor_cfg.control_interval_secs);
        let window: Vec<&PingResult> = self.pings.iter().filter(|p| p.at >= window_start).collect();
        if window.is_empty() {
            return;
        }
        let losses = window.iter().filter(|p| p.rtt_ms.is_none()).count();
        let rtts: Vec<f64> = window.iter().filter_map(|p| p.rtt_ms).collect();
        let mean_rtt = if rtts.is_empty() {
            f64::INFINITY
        } else {
            rtts.iter().sum::<f64>() / rtts.len() as f64
        };
        let degraded = losses > 0 || mean_rtt > self.monitor_cfg.latency_threshold_ms;
        self.control_actions += 1;
        if degraded {
            self.degraded_verdicts += 1;
        }
        if let (Some(cross), LastHop::Wireless(wifi)) = (&mut self.cross, &mut self.last_hop) {
            if degraded {
                // Back off: calmer channel.
                cross.adjust_frequency(-self.monitor_cfg.freq_step);
                wifi.adjust_tx_power_db(self.monitor_cfg.power_step_db);
            } else {
                // Stir things up again.
                cross.adjust_frequency(self.monitor_cfg.freq_step);
                wifi.adjust_tx_power_db(-self.monitor_cfg.power_step_db);
            }
        }
    }
}

/// The testbed: a kernel plus its world, with the §3.2 processes
/// (cross-traffic decisions, pinger, controller) pre-scheduled.
///
/// ```
/// use netsim::{Testbed, TestbedConfig};
/// use clocksim::time::SimTime;
///
/// let mut tb = Testbed::wireless(TestbedConfig::default(), 42);
/// // The wireless adaptor reports hints MNTP can gate on…
/// let hints = tb.hints(SimTime::from_secs(10)).unwrap();
/// assert!(hints.rssi_dbm < 0.0 && hints.noise_dbm < 0.0);
/// // …and the last hop carries (or drops) packets with channel-state
/// // dependent delay.
/// let _delay = tb.last_hop_up(SimTime::from_secs(10));
/// ```
pub struct Testbed {
    sim: Sim<TestbedState>,
    /// The world. Public so experiments can reach the channel directly
    /// (e.g. to read telemetry); protocol code should stick to the
    /// high-level methods.
    pub state: TestbedState,
}

impl Testbed {
    /// A wireless testbed with the monitor node active.
    pub fn wireless(cfg: TestbedConfig, seed: u64) -> Self {
        let mut root = SimRng::new(seed);
        let wifi = WifiChannel::new(cfg.wifi, root.fork(1));
        let cross = CrossTraffic::new(cfg.cross, cfg.initial_frequency, root.fork(2));
        let state = TestbedState {
            last_hop: LastHop::Wireless(Box::new(wifi)),
            cross: Some(cross),
            monitor_cfg: cfg.monitor.clone(),
            pings: VecDeque::new(),
            rng: root.fork(3),
            control_actions: 0,
            degraded_verdicts: 0,
        };
        let mut tb = Testbed { sim: Sim::new(), state };
        tb.schedule_processes(cfg.monitor_enabled);
        tb
    }

    /// A wired-Ethernet testbed (the paper's control experiments). No
    /// monitor node, no cross traffic.
    pub fn wired(seed: u64) -> Self {
        let state = TestbedState {
            last_hop: LastHop::Wired {
                up: Link::lossless(DelayModel::ethernet()),
                down: Link::lossless(DelayModel::ethernet()),
            },
            cross: None,
            monitor_cfg: MonitorConfig::default(),
            pings: VecDeque::new(),
            rng: SimRng::new(seed),
            control_actions: 0,
            degraded_verdicts: 0,
        };
        Testbed { sim: Sim::new(), state }
    }

    /// A cellular testbed (paper §3.3: phone on 4G, no monitor node).
    pub fn cellular(cfg: CellularConfig, seed: u64) -> Self {
        let mut root = SimRng::new(seed);
        let cell = CellularChannel::new(cfg, root.fork(1));
        let state = TestbedState {
            last_hop: LastHop::Cellular(Box::new(cell)),
            cross: None,
            monitor_cfg: MonitorConfig::default(),
            pings: VecDeque::new(),
            rng: root.fork(2),
            control_actions: 0,
            degraded_verdicts: 0,
        };
        Testbed { sim: Sim::new(), state }
    }

    fn schedule_processes(&mut self, monitor_enabled: bool) {
        // Cross-traffic decision loop.
        fn cross_tick(w: &mut TestbedState, sim: &mut Sim<TestbedState>) {
            w.apply_utilization(sim.now());
            let interval = w
                .cross
                .as_ref()
                .map(|c| c.decision_interval())
                .unwrap_or(SimDuration::from_secs(2));
            sim.schedule_fn_in(interval, cross_tick);
        }
        self.sim.schedule_fn_at(SimTime::ZERO, cross_tick);

        if monitor_enabled {
            fn ping_tick(w: &mut TestbedState, sim: &mut Sim<TestbedState>) {
                w.ping_once(sim.now());
                let d = SimDuration::from_secs_f64(w.monitor_cfg.ping_interval_secs);
                sim.schedule_fn_in(d, ping_tick);
            }
            fn control_tick(w: &mut TestbedState, sim: &mut Sim<TestbedState>) {
                w.control_step(sim.now());
                let d = SimDuration::from_secs_f64(w.monitor_cfg.control_interval_secs);
                sim.schedule_fn_in(d, control_tick);
            }
            self.sim.schedule_fn_at(SimTime::ZERO, ping_tick);
            self.sim
                .schedule_fn_at(SimTime::from_secs(5), control_tick);
        }
    }

    /// Advance the testbed's background processes to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.sim.run_until(&mut self.state, t);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Wireless hints at `t` (advances background processes first).
    /// `None` when the last hop has no wireless adaptor to query.
    pub fn hints(&mut self, t: SimTime) -> Option<WirelessHints> {
        self.advance_to(t);
        match &mut self.state.last_hop {
            LastHop::Wireless(wifi) => Some(wifi.hints(t)),
            _ => None,
        }
    }

    /// Send one client→Internet packet across the last hop at `t`.
    pub fn last_hop_up(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        match &mut self.state.last_hop {
            LastHop::Wireless(wifi) => wifi.transmit_up(t),
            LastHop::Wired { up, .. } => up.transmit(&mut self.state.rng),
            LastHop::Cellular(cell) => cell.transmit_up(t),
        }
    }

    /// Deliver one Internet→client packet across the last hop at `t`.
    pub fn last_hop_down(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        match &mut self.state.last_hop {
            LastHop::Wireless(wifi) => wifi.transmit_down(t),
            LastHop::Wired { down, .. } => down.transmit(&mut self.state.rng),
            LastHop::Cellular(cell) => cell.transmit_down(t),
        }
    }

    /// Construct a wired link with occasional loss, for fault-injection
    /// tests.
    pub fn lossy_wired(seed: u64, loss_prob: f64) -> Self {
        let mut tb = Testbed::wired(seed);
        tb.state.last_hop = LastHop::Wired {
            up: Link { delay: DelayModel::ethernet(), loss: LossModel::Bernoulli(loss_prob) },
            down: Link { delay: DelayModel::ethernet(), loss: LossModel::Bernoulli(loss_prob) },
        };
        tb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wired_testbed_is_fast_and_lossless() {
        let mut tb = Testbed::wired(1);
        let mut delays = Vec::new();
        for i in 0..1000 {
            let t = SimTime::from_secs(i);
            let up = tb.last_hop_up(t).expect("wired never loses");
            let down = tb.last_hop_down(t).expect("wired never loses");
            delays.push(up.as_millis_f64() + down.as_millis_f64());
        }
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!(mean < 2.0, "mean wired rtt {mean}");
        assert!(tb.hints(SimTime::from_secs(1000)).is_none());
    }

    #[test]
    fn controller_oscillates_channel_conditions() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 2);
        // Run an hour of background processes.
        tb.advance_to(SimTime::from_secs(3600));
        assert!(tb.state.control_actions > 600, "controller ran: {}", tb.state.control_actions);
        // The §3.2 loop must visit BOTH regimes: degraded and stable.
        let degraded = tb.state.degraded_verdicts;
        let total = tb.state.control_actions;
        assert!(degraded > total / 20, "too few degraded episodes: {degraded}/{total}");
        assert!(degraded < total * 19 / 20, "channel never stabilized: {degraded}/{total}");
    }

    #[test]
    fn wireless_hints_vary_over_time() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 3);
        let mut margins = Vec::new();
        for i in 0..720 {
            let t = SimTime::from_secs(i * 5);
            margins.push(tb.hints(t).unwrap().snr_margin_db());
        }
        let min = margins.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = margins.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Paper gate is at 20 dB; the testbed must cross it in both
        // directions or the MNTP gate would be trivial.
        assert!(min < 20.0, "min margin {min}");
        assert!(max > 20.0, "max margin {max}");
    }

    #[test]
    fn wireless_delays_include_spikes() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
        let mut down = Vec::new();
        let mut losses = 0;
        for i in 0..720 {
            let t = SimTime::from_secs(i * 5);
            match tb.last_hop_down(t) {
                Some(d) => down.push(d.as_millis_f64()),
                None => losses += 1,
            }
        }
        let max = down.iter().cloned().fold(0.0, f64::max);
        assert!(max > 200.0, "max downlink {max} ms");
        assert!(losses > 0, "some loss expected");
        assert!(losses < 200, "not a black hole: {losses}");
    }

    #[test]
    fn cellular_testbed_has_no_hints() {
        let mut tb = Testbed::cellular(CellularConfig::default(), 5);
        assert!(tb.hints(SimTime::from_secs(1)).is_none());
        // But it passes traffic.
        let mut delivered = 0;
        for i in 0..100 {
            if tb.last_hop_up(SimTime::from_secs(i * 5)).is_some() {
                delivered += 1;
            }
        }
        assert!(delivered > 90);
    }

    #[test]
    fn lossy_wired_loses() {
        let mut tb = Testbed::lossy_wired(6, 0.3);
        let losses = (0..1000).filter(|i| tb.last_hop_up(SimTime::from_secs(*i)).is_none()).count();
        assert!((200..400).contains(&losses), "losses={losses}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
            (0..200)
                .map(|i| tb.last_hop_down(SimTime::from_secs(i * 5)).map(|d| d.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn advance_is_monotone() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 9);
        tb.advance_to(SimTime::from_secs(100));
        assert_eq!(tb.now(), SimTime::from_secs(100));
        // Advancing to the past is a no-op, not a panic.
        tb.advance_to(SimTime::from_secs(50));
        assert_eq!(tb.now(), SimTime::from_secs(100));
    }
}
