//! The discrete-event executor.
//!
//! [`Sim<W>`] owns a priority queue of `(time, callback)` entries over a
//! caller-supplied world type `W`. Events fire in time order; events
//! scheduled for the same instant fire in scheduling order (a monotone
//! sequence number breaks ties), which makes runs bit-reproducible.
//!
//! The executor is deliberately synchronous and single-threaded: runs
//! parallelize at the *trial* level (`devtools::par`), never inside one
//! simulation, which is what keeps every run bit-reproducible.
//!
//! ## Hot-path layout
//!
//! The priority queue is split into two structures so the comparisons the
//! scheduler performs stay cheap and the event payloads never move:
//!
//! * a queue of 24-byte [`Entry`] records — a packed `u128` key
//!   `(biased time, 64-bit sequence)` plus the slab slot — ordered by the
//!   key alone, so a comparison is a single wide-integer compare;
//! * a slab of event callbacks indexed by slot, with a free list so the
//!   dominant periodic-poll pattern (pop one event, schedule the next
//!   tick) recycles the same slot instead of growing the arena.
//!
//! Two interchangeable queue backends implement that contract
//! ([`SchedulerKind`]):
//!
//! * [`SchedulerKind::Wheel`] (the default) — a hierarchical timing
//!   wheel ([`crate::wheel::Wheel`]) with O(1) schedule and amortized
//!   O(1) pop for the bounded-horizon poll-timer workload that dominates
//!   fleet simulation, falling back to a far-future overflow heap beyond
//!   its ~4.9 h horizon;
//! * [`SchedulerKind::Heap`] — the classic [`BinaryHeap`], kept as the
//!   reference implementation the wheel is property-tested against.
//!
//! Both backends fire any schedule in the identical sequence, so the
//! choice is a performance knob, never an observable one.
//!
//! Callbacks come in two flavors: [`Sim::schedule_fn_at`] takes a plain
//! `fn` pointer (the periodic ticks that dominate every workload —
//! zero allocation, direct call), while [`Sim::schedule_at`] accepts any
//! capturing closure and boxes it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use clocksim::time::SimTime;

use crate::wheel::Wheel;

/// An event callback: receives the world and the simulator (so it can
/// schedule follow-up events). `Plain` is the allocation-free fast path
/// for capture-less periodic ticks; `Boxed` carries arbitrary closures.
enum EventFn<W> {
    Plain(fn(&mut W, &mut Sim<W>)),
    // `Send` so a whole kernel (with its pending events) can move to a
    // worker thread — the fleet runner ticks shard kernels in parallel.
    Boxed(Box<dyn FnOnce(&mut W, &mut Sim<W>) + Send>),
}

impl<W> EventFn<W> {
    #[inline]
    fn call(self, world: &mut W, sim: &mut Sim<W>) {
        match self {
            EventFn::Plain(f) => f(world, sim),
            EventFn::Boxed(f) => f(world, sim),
        }
    }
}

/// One queued event: an orderable key plus the slab slot holding its
/// callback. Ordering is by `key` alone (the derive compares `key`
/// first and `key` is unique among pending events — the sequence half
/// never collides), the slot just rides along to locate the callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Entry {
    pub(crate) key: u128,
    pub(crate) slot: u32,
}

/// Pack `(at, seq)` into one orderable integer. The time is sign-flipped
/// into the top 64 bits (so `i64` order survives the unsigned compare);
/// the full 64-bit sequence occupies the low half, so same-instant FIFO
/// order survives any schedule count a simulation can reach.
#[inline]
pub(crate) fn pack_key(at: SimTime, seq: u64) -> u128 {
    let biased = (at.as_nanos() as u64) ^ (1u64 << 63);
    ((biased as u128) << 64) | seq as u128
}

#[inline]
pub(crate) fn key_time(key: u128) -> SimTime {
    SimTime((((key >> 64) as u64) ^ (1u64 << 63)) as i64)
}

/// Which priority-queue backend a [`Sim`] runs on. See the module docs;
/// the two fire identical schedules in the identical order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel with heap overflow (the default).
    #[default]
    Wheel,
    /// Plain binary heap (the reference backend).
    Heap,
}

enum Queue {
    Heap(BinaryHeap<Reverse<Entry>>),
    Wheel(Box<Wheel>),
}

impl Queue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => Queue::Heap(BinaryHeap::new()),
            SchedulerKind::Wheel => Queue::Wheel(Box::new(Wheel::new())),
        }
    }

    #[inline]
    fn push(&mut self, e: Entry) {
        match self {
            Queue::Heap(h) => h.push(Reverse(e)),
            Queue::Wheel(w) => w.push(e),
        }
    }

    /// Remove and return the minimum entry if its time is `<= t`.
    #[inline]
    fn pop_before(&mut self, t: SimTime) -> Option<Entry> {
        match self {
            Queue::Heap(h) => {
                let &Reverse(e) = h.peek()?;
                if key_time(e.key) > t {
                    return None;
                }
                h.pop().map(|Reverse(e)| e)
            }
            Queue::Wheel(w) => w.pop_before(t),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Wheel(w) => w.len(),
        }
    }
}

/// Discrete-event simulator over world type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    queue: Queue,
    /// Slab of pending callbacks, addressed by the slot carried in each
    /// queue entry. `None` marks a free slot (tracked in `free`).
    slots: Vec<Option<EventFn<W>>>,
    free: Vec<u32>,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A simulator positioned at the epoch with an empty queue, on the
    /// default backend ([`SchedulerKind::Wheel`]).
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// A simulator on an explicitly chosen queue backend.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: Queue::new(kind),
            slots: Vec::new(),
            free: Vec::new(),
            fired: 0,
        }
    }

    /// Current simulation time (the time of the last fired event, or the
    /// target of the last `run_until`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics, benches).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed the tie-breaker sequence counter (tests only): lets a
    /// regression test start just below a wrap boundary without
    /// scheduling billions of events first.
    #[cfg(test)]
    pub(crate) fn set_seq_for_test(&mut self, seq: u64) {
        self.seq = seq;
    }

    fn push(&mut self, at: SimTime, f: EventFn<W>) {
        // Clamp to now: scheduling in the past fires at the current time
        // instead (never travels backwards).
        let at = at.max(self.now);
        // Sequence numbers order same-instant events. 64 bits cannot
        // wrap in any physically runnable simulation (5 billion events
        // per second for a century falls short), so FIFO order among
        // ties holds unconditionally.
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                // lint:allow(no-slice-index) — `s` came off the free list, which only ever holds indices of existing slots
                self.slots[s as usize] = Some(f);
                s
            }
            None => {
                self.slots.push(Some(f));
                let idx = self.slots.len() - 1;
                let Ok(slot) = u32::try_from(idx) else {
                    // Cold path: >4 billion *live* events means the
                    // workload leaked its schedule; refuse loudly
                    // rather than alias slot indices.
                    // lint:allow(no-panic) — explicit capacity check on a cold path; aliasing slot 0 silently would corrupt the schedule
                    panic!("event slab overflowed the u32 slot index ({idx} live events)");
                };
                slot
            }
        };
        self.queue.push(Entry { key: pack_key(at, seq), slot });
    }

    #[inline]
    fn take_slot(&mut self, e: Entry) -> (SimTime, EventFn<W>) {
        // lint:allow(no-slice-index) — the slot index was packed into the entry by `push`, which stored into that slot
        // lint:allow(no-unwrap) — push/pop pairing: every queued entry's slot holds its callback until this take()
        let f = self.slots[e.slot as usize].take().expect("queued slot holds a callback");
        self.free.push(e.slot);
        (key_time(e.key), f)
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past fires the
    /// event at the current time instead (never travels backwards).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static) {
        self.push(at, EventFn::Boxed(Box::new(f)));
    }

    /// Schedule `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: clocksim::time::SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + Send + 'static,
    ) {
        self.schedule_at(self.now + delay.max_zero(), f);
    }

    /// Schedule a plain function pointer at absolute time `at` — the
    /// allocation-free fast path for capture-less events (periodic polls,
    /// cross-traffic ticks).
    pub fn schedule_fn_at(&mut self, at: SimTime, f: fn(&mut W, &mut Sim<W>)) {
        self.push(at, EventFn::Plain(f));
    }

    /// Schedule a plain function pointer after a relative delay.
    pub fn schedule_fn_in(&mut self, delay: clocksim::time::SimDuration, f: fn(&mut W, &mut Sim<W>)) {
        self.schedule_fn_at(self.now + delay.max_zero(), f);
    }

    /// Fire every event with `at <= t`, then advance the clock to exactly
    /// `t`. Events may schedule new events, including at the current time.
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(e) = self.queue.pop_before(t) {
            let (at, f) = self.take_slot(e);
            self.now = at;
            self.fired += 1;
            f.call(world, self);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Fire events until the queue drains (for self-terminating workloads).
    pub fn run_to_completion(&mut self, world: &mut W) {
        while let Some(e) = self.queue.pop_before(SimTime(i64::MAX)) {
            let (at, f) = self.take_slot(e);
            self.now = at;
            self.fired += 1;
            f.call(world, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::time::SimDuration;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut sim: Sim<Vec<u32>> = Sim::with_scheduler(kind);
            let mut world = Vec::new();
            let t = SimTime::from_secs(1);
            for i in 0..10 {
                sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
            }
            sim.run_until(&mut world, t);
            assert_eq!(world, (0..10).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    /// Regression test for the tie-breaker wrap bug: the old kernel kept
    /// `seq` in 32 bits and wrapped it, so the 2^32-th schedule in a run
    /// sorted *before* same-instant events scheduled earlier — FIFO order
    /// among ties silently inverted (a 1M-client × 30-min fleet run blows
    /// past 2^32 events). With the sequence seeded just below the old
    /// wrap point, the old kernel fires 2, 3, 0, 1; the 64-bit sequence
    /// keeps 0, 1, 2, 3.
    #[test]
    fn same_instant_fifo_survives_u32_seq_boundary() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut sim: Sim<Vec<u32>> = Sim::with_scheduler(kind);
            sim.set_seq_for_test(u64::from(u32::MAX) - 1);
            let mut world = Vec::new();
            let t = SimTime::from_secs(7);
            for i in 0..4 {
                sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
            }
            sim.run_until(&mut world, t);
            assert_eq!(
                world,
                vec![0, 1, 2, 3],
                "same-instant FIFO order must survive the u32 sequence boundary ({kind:?})"
            );
        }
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world, vec![1, 5]);
    }

    #[test]
    fn events_can_reschedule_themselves() {
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        let mut sim = Sim::new();
        let mut world = W { count: 0 };
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run_until(&mut world, SimTime::from_secs(100));
        assert_eq!(world.count, 5);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim: Sim<Vec<SimTime>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(5), |_, sim: &mut Sim<Vec<SimTime>>| {
            // Attempt to schedule in the past.
            sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<SimTime>, sim| {
                w.push(sim.now());
            });
        });
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![SimTime::from_secs(5)]);
    }

    #[test]
    fn boundary_event_fires_inclusively() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
    }

    #[test]
    fn run_to_completion_drains() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut sim: Sim<u32> = Sim::with_scheduler(kind);
            let mut world = 0u32;
            for i in 0..100 {
                sim.schedule_at(SimTime::from_secs(i), |w: &mut u32, _| *w += 1);
            }
            sim.run_to_completion(&mut world);
            assert_eq!(world, 100);
            assert_eq!(sim.pending(), 0);
        }
    }

    #[test]
    fn slab_slots_are_recycled_by_periodic_pattern() {
        // The dominant workload: one event fires, schedules its successor.
        // The slab must stay at one live slot instead of growing.
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 10_000 {
                sim.schedule_fn_in(SimDuration::from_millis(1), tick);
            }
        }
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut sim = Sim::with_scheduler(kind);
            let mut world = W { count: 0 };
            sim.schedule_fn_at(SimTime::ZERO, tick);
            sim.run_to_completion(&mut world);
            assert_eq!(world.count, 10_000);
            assert_eq!(sim.slots.len(), 1, "periodic reschedule must reuse one slot ({kind:?})");
        }
    }

    #[test]
    fn fn_and_boxed_events_interleave_in_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        fn plain(w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>) {
            w.push(1);
        }
        sim.schedule_fn_at(SimTime::from_secs(1), plain);
        let x = 2u32;
        sim.schedule_at(SimTime::from_secs(1), move |w: &mut Vec<u32>, _| w.push(x));
        sim.schedule_fn_at(SimTime::from_secs(1), plain);
        sim.run_until(&mut world, SimTime::from_secs(1));
        assert_eq!(world, vec![1, 2, 1]);
    }

    #[test]
    fn key_packing_orders_by_time_then_seq() {
        let t0 = SimTime::from_secs(0);
        let t1 = SimTime::from_secs(1);
        assert!(pack_key(t0, 5) < pack_key(t1, 0));
        assert!(pack_key(t1, 0) < pack_key(t1, 1));
        // The 64-bit sequence never folds into the time half.
        assert!(pack_key(t1, u64::MAX) < pack_key(SimTime(t1.0 + 1), 0));
        assert_eq!(key_time(pack_key(t1, 3)), t1);
    }

    #[test]
    fn nested_same_time_event_fires_in_same_run() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<&'static str>, sim| {
            w.push("outer");
            sim.schedule_in(SimDuration::ZERO, |w: &mut Vec<&'static str>, _| w.push("inner"));
        });
        sim.run_until(&mut world, SimTime::from_secs(1));
        assert_eq!(world, vec!["outer", "inner"]);
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // Events beyond the wheel's ~4.9 h horizon live in the overflow
        // heap and must still fire in order after migration.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        for (i, secs) in [36_000i64, 1, 72_000, 2, 18_000].iter().enumerate() {
            sim.schedule_at(SimTime::from_secs(*secs), move |w: &mut Vec<u32>, _| {
                w.push(i as u32);
            });
        }
        sim.run_to_completion(&mut world);
        assert_eq!(world, vec![1, 3, 4, 0, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(72_000));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, prop_assert_eq, props};

    props! {
        /// For any schedule of events, firing order is sorted by
        /// (time, insertion order) — on both queue backends.
        fn firing_order_is_stable_sort(times in prop::vecs(prop::ints(0..1000), 1..60)) {
            for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
                let mut sim: Sim<Vec<(i64, usize)>> = Sim::with_scheduler(kind);
                let mut world: Vec<(i64, usize)> = Vec::new();
                for (idx, &t) in times.iter().enumerate() {
                    sim.schedule_at(SimTime::from_secs(t), move |w: &mut Vec<(i64, usize)>, _| {
                        w.push((t, idx));
                    });
                }
                sim.run_to_completion(&mut world);
                prop_assert_eq!(world.len(), times.len());
                for pair in world.windows(2) {
                    let (ta, ia) = pair[0];
                    let (tb, ib) = pair[1];
                    prop_assert!(ta < tb || (ta == tb && ia < ib), "{pair:?}");
                }
            }
        }
    }
}
