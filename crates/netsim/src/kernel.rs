//! The discrete-event executor.
//!
//! [`Sim<W>`] owns a priority queue of `(time, closure)` entries over a
//! caller-supplied world type `W`. Events fire in time order; events
//! scheduled for the same instant fire in scheduling order (a monotone
//! sequence number breaks ties), which makes runs bit-reproducible.
//!
//! The executor is deliberately synchronous and single-threaded: the
//! workloads in this reproduction are hours of simulated time with a few
//! events per second, where determinism and debuggability beat
//! parallelism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use clocksim::time::SimTime;

/// Boxed event callback: receives the world and the simulator (so it can
/// schedule follow-up events).
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        // Ties broken by sequence number: earlier-scheduled fires first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Discrete-event simulator over world type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<W>>,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A simulator positioned at the epoch with an empty queue.
    pub fn new() -> Self {
        Sim { now: SimTime::ZERO, seq: 0, heap: BinaryHeap::new(), fired: 0 }
    }

    /// Current simulation time (the time of the last fired event, or the
    /// target of the last `run_until`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics, benches).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently queued.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past fires the
    /// event at the current time instead (never travels backwards).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, f: Box::new(f) });
    }

    /// Schedule `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: clocksim::time::SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay.max_zero(), f);
    }

    /// Fire every event with `at <= t`, then advance the clock to exactly
    /// `t`. Events may schedule new events, including at the current time.
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(head) = self.heap.peek() {
            if head.at > t {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.now = entry.at;
            self.fired += 1;
            (entry.f)(world, self);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Fire events until the queue drains (for self-terminating workloads).
    pub fn run_to_completion(&mut self, world: &mut W) {
        while let Some(entry) = self.heap.pop() {
            self.now = entry.at;
            self.fired += 1;
            (entry.f)(world, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::time::SimDuration;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until(&mut world, t);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world, vec![1, 5]);
    }

    #[test]
    fn events_can_reschedule_themselves() {
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        let mut sim = Sim::new();
        let mut world = W { count: 0 };
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run_until(&mut world, SimTime::from_secs(100));
        assert_eq!(world.count, 5);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim: Sim<Vec<SimTime>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(5), |_, sim: &mut Sim<Vec<SimTime>>| {
            // Attempt to schedule in the past.
            sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<SimTime>, sim| {
                w.push(sim.now());
            });
        });
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![SimTime::from_secs(5)]);
    }

    #[test]
    fn boundary_event_fires_inclusively() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut sim: Sim<u32> = Sim::new();
        let mut world = 0u32;
        for i in 0..100 {
            sim.schedule_at(SimTime::from_secs(i), |w: &mut u32, _| *w += 1);
        }
        sim.run_to_completion(&mut world);
        assert_eq!(world, 100);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn nested_same_time_event_fires_in_same_run() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<&'static str>, sim| {
            w.push("outer");
            sim.schedule_in(SimDuration::ZERO, |w: &mut Vec<&'static str>, _| w.push("inner"));
        });
        sim.run_until(&mut world, SimTime::from_secs(1));
        assert_eq!(world, vec!["outer", "inner"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, prop_assert_eq, props};

    props! {
        /// For any schedule of events, firing order is sorted by
        /// (time, insertion order).
        fn firing_order_is_stable_sort(times in prop::vecs(prop::ints(0..1000), 1..60)) {
            let mut sim: Sim<Vec<(i64, usize)>> = Sim::new();
            let mut world: Vec<(i64, usize)> = Vec::new();
            for (idx, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_secs(t), move |w: &mut Vec<(i64, usize)>, _| {
                    w.push((t, idx));
                });
            }
            sim.run_to_completion(&mut world);
            prop_assert_eq!(world.len(), times.len());
            for pair in world.windows(2) {
                let (ta, ia) = pair[0];
                let (tb, ib) = pair[1];
                prop_assert!(ta < tb || (ta == tb && ia < ib), "{pair:?}");
            }
        }
    }
}
