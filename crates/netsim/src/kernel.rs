//! The discrete-event executor.
//!
//! [`Sim<W>`] owns a priority queue of `(time, callback)` entries over a
//! caller-supplied world type `W`. Events fire in time order; events
//! scheduled for the same instant fire in scheduling order (a monotone
//! sequence number breaks ties), which makes runs bit-reproducible.
//!
//! The executor is deliberately synchronous and single-threaded: runs
//! parallelize at the *trial* level (`devtools::par`), never inside one
//! simulation, which is what keeps every run bit-reproducible.
//!
//! ## Hot-path layout
//!
//! The priority queue is split into two structures so the comparisons a
//! heap sift performs stay cheap and the event payloads never move:
//!
//! * a [`BinaryHeap`] of packed `u128` keys — `(biased time, sequence,
//!   slot)` in one integer, so an entire heap entry is 16 bytes and a
//!   comparison is a single wide-integer compare;
//! * a slab of event callbacks indexed by slot, with a free list so the
//!   dominant periodic-poll pattern (pop one event, schedule the next
//!   tick) recycles the same slot instead of growing the arena.
//!
//! Callbacks come in two flavors: [`Sim::schedule_fn_at`] takes a plain
//! `fn` pointer (the periodic ticks that dominate every workload —
//! zero allocation, direct call), while [`Sim::schedule_at`] accepts any
//! capturing closure and boxes it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use clocksim::time::SimTime;

/// An event callback: receives the world and the simulator (so it can
/// schedule follow-up events). `Plain` is the allocation-free fast path
/// for capture-less periodic ticks; `Boxed` carries arbitrary closures.
enum EventFn<W> {
    Plain(fn(&mut W, &mut Sim<W>)),
    Boxed(Box<dyn FnOnce(&mut W, &mut Sim<W>)>),
}

impl<W> EventFn<W> {
    #[inline]
    fn call(self, world: &mut W, sim: &mut Sim<W>) {
        match self {
            EventFn::Plain(f) => f(world, sim),
            EventFn::Boxed(f) => f(world, sim),
        }
    }
}

/// Pack `(at, seq, slot)` into one orderable integer. The time is
/// sign-flipped into the top 64 bits (so `i64` order survives the
/// unsigned compare), the 32-bit sequence sits above the 32-bit slot;
/// `seq` alone already makes keys unique among pending events, the slot
/// just rides along to locate the callback.
#[inline]
fn pack_key(at: SimTime, seq: u32, slot: u32) -> u128 {
    let biased = (at.as_nanos() as u64) ^ (1u64 << 63);
    ((biased as u128) << 64) | ((seq as u128) << 32) | slot as u128
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime((((key >> 64) as u64) ^ (1u64 << 63)) as i64)
}

#[inline]
fn key_slot(key: u128) -> u32 {
    key as u32
}

/// Discrete-event simulator over world type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u32,
    heap: BinaryHeap<Reverse<u128>>,
    /// Slab of pending callbacks, addressed by the slot packed into the
    /// heap key. `None` marks a free slot (tracked in `free`).
    slots: Vec<Option<EventFn<W>>>,
    free: Vec<u32>,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A simulator positioned at the epoch with an empty queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            fired: 0,
        }
    }

    /// Current simulation time (the time of the last fired event, or the
    /// target of the last `run_until`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics, benches).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently queued.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    fn push(&mut self, at: SimTime, f: EventFn<W>) {
        // Clamp to now: scheduling in the past fires at the current time
        // instead (never travels backwards).
        let at = at.max(self.now);
        let seq = self.seq;
        // Sequence numbers order same-instant events. 32 bits only wrap
        // after 4 billion schedules in one run — far past any workload
        // here — and even a wrap would stay deterministic.
        self.seq = self.seq.wrapping_add(1);
        let slot = match self.free.pop() {
            Some(s) => {
                // lint:allow(no-slice-index) — `s` came off the free list, which only ever holds indices of existing slots
                self.slots[s as usize] = Some(f);
                s
            }
            None => {
                self.slots.push(Some(f));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Reverse(pack_key(at, seq, slot)));
    }

    fn pop(&mut self) -> Option<(SimTime, EventFn<W>)> {
        let Reverse(key) = self.heap.pop()?;
        let slot = key_slot(key);
        // lint:allow(no-slice-index) — the slot index was packed into the key by `push`, which stored into that slot
        // lint:allow(no-unwrap) — push/pop pairing: every queued key's slot holds its callback until this take()
        let f = self.slots[slot as usize].take().expect("queued slot holds a callback");
        self.free.push(slot);
        Some((key_time(key), f))
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past fires the
    /// event at the current time instead (never travels backwards).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.push(at, EventFn::Boxed(Box::new(f)));
    }

    /// Schedule `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: clocksim::time::SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay.max_zero(), f);
    }

    /// Schedule a plain function pointer at absolute time `at` — the
    /// allocation-free fast path for capture-less events (periodic polls,
    /// cross-traffic ticks).
    pub fn schedule_fn_at(&mut self, at: SimTime, f: fn(&mut W, &mut Sim<W>)) {
        self.push(at, EventFn::Plain(f));
    }

    /// Schedule a plain function pointer after a relative delay.
    pub fn schedule_fn_in(&mut self, delay: clocksim::time::SimDuration, f: fn(&mut W, &mut Sim<W>)) {
        self.schedule_fn_at(self.now + delay.max_zero(), f);
    }

    /// Fire every event with `at <= t`, then advance the clock to exactly
    /// `t`. Events may schedule new events, including at the current time.
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(&Reverse(key)) = self.heap.peek() {
            if key_time(key) > t {
                break;
            }
            let Some((at, f)) = self.pop() else { break };
            self.now = at;
            self.fired += 1;
            f.call(world, self);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Fire events until the queue drains (for self-terminating workloads).
    pub fn run_to_completion(&mut self, world: &mut W) {
        while let Some((at, f)) = self.pop() {
            self.now = at;
            self.fired += 1;
            f.call(world, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::time::SimDuration;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until(&mut world, t);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world, vec![1, 5]);
    }

    #[test]
    fn events_can_reschedule_themselves() {
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        let mut sim = Sim::new();
        let mut world = W { count: 0 };
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run_until(&mut world, SimTime::from_secs(100));
        assert_eq!(world.count, 5);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim: Sim<Vec<SimTime>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(5), |_, sim: &mut Sim<Vec<SimTime>>| {
            // Attempt to schedule in the past.
            sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<SimTime>, sim| {
                w.push(sim.now());
            });
        });
        sim.run_until(&mut world, SimTime::from_secs(10));
        assert_eq!(world, vec![SimTime::from_secs(5)]);
    }

    #[test]
    fn boundary_event_fires_inclusively() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(world, vec![1]);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut sim: Sim<u32> = Sim::new();
        let mut world = 0u32;
        for i in 0..100 {
            sim.schedule_at(SimTime::from_secs(i), |w: &mut u32, _| *w += 1);
        }
        sim.run_to_completion(&mut world);
        assert_eq!(world, 100);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn slab_slots_are_recycled_by_periodic_pattern() {
        // The dominant workload: one event fires, schedules its successor.
        // The slab must stay at one live slot instead of growing.
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 10_000 {
                sim.schedule_fn_in(SimDuration::from_millis(1), tick);
            }
        }
        let mut sim = Sim::new();
        let mut world = W { count: 0 };
        sim.schedule_fn_at(SimTime::ZERO, tick);
        sim.run_to_completion(&mut world);
        assert_eq!(world.count, 10_000);
        assert_eq!(sim.slots.len(), 1, "periodic reschedule must reuse one slot");
    }

    #[test]
    fn fn_and_boxed_events_interleave_in_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        fn plain(w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>) {
            w.push(1);
        }
        sim.schedule_fn_at(SimTime::from_secs(1), plain);
        let x = 2u32;
        sim.schedule_at(SimTime::from_secs(1), move |w: &mut Vec<u32>, _| w.push(x));
        sim.schedule_fn_at(SimTime::from_secs(1), plain);
        sim.run_until(&mut world, SimTime::from_secs(1));
        assert_eq!(world, vec![1, 2, 1]);
    }

    #[test]
    fn key_packing_orders_by_time_then_seq() {
        let t0 = SimTime::from_secs(0);
        let t1 = SimTime::from_secs(1);
        assert!(pack_key(t0, 5, 99) < pack_key(t1, 0, 0));
        assert!(pack_key(t1, 0, 7) < pack_key(t1, 1, 0));
        assert_eq!(key_time(pack_key(t1, 3, 4)), t1);
        assert_eq!(key_slot(pack_key(t1, 3, 4)), 4);
    }

    #[test]
    fn nested_same_time_event_fires_in_same_run() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<&'static str>, sim| {
            w.push("outer");
            sim.schedule_in(SimDuration::ZERO, |w: &mut Vec<&'static str>, _| w.push("inner"));
        });
        sim.run_until(&mut world, SimTime::from_secs(1));
        assert_eq!(world, vec!["outer", "inner"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, prop_assert_eq, props};

    props! {
        /// For any schedule of events, firing order is sorted by
        /// (time, insertion order).
        fn firing_order_is_stable_sort(times in prop::vecs(prop::ints(0..1000), 1..60)) {
            let mut sim: Sim<Vec<(i64, usize)>> = Sim::new();
            let mut world: Vec<(i64, usize)> = Vec::new();
            for (idx, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_secs(t), move |w: &mut Vec<(i64, usize)>, _| {
                    w.push((t, idx));
                });
            }
            sim.run_to_completion(&mut world);
            prop_assert_eq!(world.len(), times.len());
            for pair in world.windows(2) {
                let (ta, ia) = pair[0];
                let (tb, ib) = pair[1];
                prop_assert!(ta < tb || (ta == tb && ia < ib), "{pair:?}");
            }
        }
    }
}
