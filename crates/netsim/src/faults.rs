//! Deterministic, seed-driven fault injection.
//!
//! The paper's clients live on hostile networks: delay spikes (Fig. 4),
//! loss bursts, asymmetric queueing, servers that rate-limit or fall
//! over. The channel models in [`crate::wifi`]/[`crate::cellular`]
//! reproduce the *steady-state* hostility; this module adds the
//! *episodic* kind — typed fault events placed on the true-time axis:
//!
//! * **loss storms** — a window during which every packet additionally
//!   faces a Bernoulli drop on the last hop (both directions);
//! * **server outages** — a blackhole window for one server or the whole
//!   pool (requests and replies silently vanish);
//! * **kiss-o'-death windows** — servers turn on RFC 5905 rate limiting
//!   and answer `RATE` to fast pollers;
//! * **falseticker onset** — a server's reference clock steps by a fixed
//!   amount at an instant (a good server going bad mid-run);
//! * **delay-asymmetry spikes** — extra one-way delay added to one or
//!   both directions (bufferbloat episodes, route flaps);
//! * **duplicate / corrupted replies** — the fault layer clones a reply
//!   or flips bytes in flight;
//! * **client clock steps** — the device suspends/resumes and wakes with
//!   its clock wrong by a configured amount.
//!
//! Faults are described *declaratively* by a [`FaultSchedule`] and
//! executed by a [`FaultInjector`], which owns a private [`SimRng`]
//! stream. Determinism contract: for a given (schedule, seed), the
//! injector answers every query identically, regardless of wall-clock,
//! thread count, or what any *other* component's RNG is doing — so fault
//! runs replay bit-identically under `devtools::par` at any worker
//! count, exactly like the fault-free pipelines.
//!
//! The injector deliberately knows nothing about servers or protocol
//! bytes (this crate sits *below* `sntp`). Instead the exchange layer
//! consults it at each hop: "does this packet survive the uplink at time
//! `t`?", "how much extra downlink delay right now?", "is server 3 in a
//! KoD window?". Composition with the existing channel models is
//! therefore multiplicative: a packet must survive the WiFi model *and*
//! the fault layer.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

/// Which servers a pool-directed fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerSet {
    /// Every server in the pool.
    All,
    /// A single server by pool index.
    One(usize),
}

impl ServerSet {
    /// True when `id` is in the set.
    pub fn contains(&self, id: usize) -> bool {
        match self {
            ServerSet::All => true,
            ServerSet::One(s) => *s == id,
        }
    }
}

/// The typed fault taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Extra Bernoulli loss on the last hop, both directions.
    LossStorm {
        /// Per-packet drop probability while the storm is active.
        loss_prob: f64,
    },
    /// Blackhole: packets to/from the given servers silently vanish.
    ServerOutage {
        /// Affected servers.
        servers: ServerSet,
    },
    /// The given servers enforce a minimum poll interval and answer
    /// kiss-o'-death (`RATE`) to clients polling faster.
    KissODeath {
        /// Affected servers.
        servers: ServerSet,
        /// Minimum request spacing the servers will tolerate, seconds.
        min_poll_secs: f64,
    },
    /// Instant: the given server's reference clock steps by `error_ms`
    /// (a good server becoming a false ticker mid-run).
    FalsetickerOnset {
        /// The server that goes bad.
        server: usize,
        /// Size of the step, milliseconds (signed).
        error_ms: f64,
    },
    /// Extra one-way delay while active (asymmetric when the two sides
    /// differ — the paper's core error mechanism, injected on demand).
    DelaySpike {
        /// Extra client→server delay, ms.
        extra_up_ms: f64,
        /// Extra server→client delay, ms.
        extra_down_ms: f64,
    },
    /// Replies are duplicated with the given probability (the copy
    /// arrives right after the original — a stale/duplicate stressor for
    /// the client's origin matching).
    DuplicateReply {
        /// Per-reply duplication probability.
        prob: f64,
    },
    /// Reply bytes are corrupted in flight with the given probability.
    CorruptReply {
        /// Per-reply corruption probability.
        prob: f64,
    },
    /// Instant: the client's clock steps by `offset_ms` (suspend/resume
    /// — the device wakes up with its clock wrong).
    ClockStep {
        /// Size of the step applied to the client clock, ms (signed).
        offset_ms: f64,
    },
}

/// One scheduled fault: a kind active over `[start_secs, end_secs)`.
/// Instant kinds ([`FaultKind::FalsetickerOnset`],
/// [`FaultKind::ClockStep`]) fire once at `start_secs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive), seconds of true time.
    pub start_secs: f64,
    /// Window end (exclusive), seconds of true time.
    pub end_secs: f64,
    /// What happens during the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// True when the window covers true time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        let s = t.as_secs_f64();
        self.start_secs <= s && s < self.end_secs
    }
}

/// A declarative fault plan: an ordered list of [`FaultWindow`]s.
/// Ordering matters only for RNG-stream stability (probabilistic windows
/// consume randomness in schedule order), not for semantics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled windows.
    pub windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// The empty schedule (no faults — the identity injector).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Add a windowed fault over `[start_secs, end_secs)` (builder).
    ///
    /// Inverted or negative ranges are a caller bug: they debug-assert,
    /// and in release builds saturate onto the time axis (start clamped
    /// to ≥ 0, end clamped to ≥ start) instead of silently producing a
    /// window no instant can ever satisfy.
    pub fn window(mut self, start_secs: f64, end_secs: f64, kind: FaultKind) -> Self {
        let (start_secs, end_secs) = clamp_window(start_secs, end_secs);
        self.windows.push(FaultWindow { start_secs, end_secs, kind });
        self
    }

    /// Add an instant fault at `at_secs` (builder; for
    /// [`FaultKind::FalsetickerOnset`] / [`FaultKind::ClockStep`]).
    pub fn at(self, at_secs: f64, kind: FaultKind) -> Self {
        self.window(at_secs, at_secs, kind)
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Validate-and-saturate a `[start, end)` window onto the time axis:
/// debug-asserts on inverted or negative input, then clamps `start` to
/// ≥ 0 and `end` to ≥ `start` so release builds get a well-formed
/// (possibly empty) window rather than one no instant satisfies.
/// Shared with the fleet-scale chaos planner in [`crate::chaos`].
pub(crate) fn clamp_window(start_secs: f64, end_secs: f64) -> (f64, f64) {
    debug_assert!(start_secs <= end_secs, "fault window ends before it starts");
    let start = start_secs.max(0.0);
    (start, end_secs.max(start))
}

/// What the fault layer decided for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Untouched.
    Deliver,
    /// Silently dropped (storm or outage).
    Drop,
    /// Delivered, plus an identical copy right behind it.
    Duplicate,
    /// Delivered with flipped bytes.
    Corrupt,
}

/// Injection counters (diagnostics; not consulted by protocol code).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests dropped by storms/outages.
    pub dropped_up: u64,
    /// Replies dropped by storms/outages.
    pub dropped_down: u64,
    /// Replies duplicated.
    pub duplicated: u64,
    /// Replies corrupted.
    pub corrupted: u64,
    /// Falseticker onsets fired.
    pub falseticker_onsets: u64,
    /// Client clock steps fired.
    pub clock_steps: u64,
}

/// Executes a [`FaultSchedule`] deterministically.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    rng: SimRng,
    /// Per-window latch for instant kinds (fired at most once).
    fired: Vec<bool>,
    /// Diagnostics.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector over `schedule` with a private RNG stream.
    pub fn new(schedule: FaultSchedule, seed: u64) -> Self {
        let fired = vec![false; schedule.windows.len()];
        FaultInjector { schedule, rng: SimRng::new(seed), fired, stats: FaultStats::default() }
    }

    /// The schedule being executed.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Fate of a client→server packet departing at `t` toward `server`.
    /// Consumes randomness only while a probabilistic window is active.
    pub fn uplink_fate(&mut self, t: SimTime, server: usize) -> PacketFate {
        for w in &self.schedule.windows {
            if !w.active_at(t) {
                continue;
            }
            match w.kind {
                FaultKind::ServerOutage { servers } if servers.contains(server) => {
                    self.stats.dropped_up += 1;
                    return PacketFate::Drop;
                }
                FaultKind::LossStorm { loss_prob } => {
                    if self.rng.chance(loss_prob) {
                        self.stats.dropped_up += 1;
                        return PacketFate::Drop;
                    }
                }
                _ => {}
            }
        }
        PacketFate::Deliver
    }

    /// Fate of a server→client reply departing at `t` from `server`.
    /// Drop takes precedence over corruption, corruption over
    /// duplication.
    pub fn downlink_fate(&mut self, t: SimTime, server: usize) -> PacketFate {
        let mut duplicate = false;
        let mut corrupt = false;
        for w in &self.schedule.windows {
            if !w.active_at(t) {
                continue;
            }
            match w.kind {
                FaultKind::ServerOutage { servers } if servers.contains(server) => {
                    self.stats.dropped_down += 1;
                    return PacketFate::Drop;
                }
                FaultKind::LossStorm { loss_prob } => {
                    if self.rng.chance(loss_prob) {
                        self.stats.dropped_down += 1;
                        return PacketFate::Drop;
                    }
                }
                FaultKind::CorruptReply { prob } => corrupt |= self.rng.chance(prob),
                FaultKind::DuplicateReply { prob } => duplicate |= self.rng.chance(prob),
                _ => {}
            }
        }
        if corrupt {
            self.stats.corrupted += 1;
            PacketFate::Corrupt
        } else if duplicate {
            self.stats.duplicated += 1;
            PacketFate::Duplicate
        } else {
            PacketFate::Deliver
        }
    }

    /// Extra client→server delay at `t` (sum of active spikes).
    pub fn extra_delay_up(&self, t: SimTime) -> SimDuration {
        self.sum_spikes(t, /* up = */ true)
    }

    /// Extra server→client delay at `t` (sum of active spikes).
    pub fn extra_delay_down(&self, t: SimTime) -> SimDuration {
        self.sum_spikes(t, /* up = */ false)
    }

    fn sum_spikes(&self, t: SimTime, up: bool) -> SimDuration {
        let mut ms = 0.0;
        for w in &self.schedule.windows {
            if let FaultKind::DelaySpike { extra_up_ms, extra_down_ms } = w.kind {
                if w.active_at(t) {
                    ms += if up { extra_up_ms } else { extra_down_ms };
                }
            }
        }
        SimDuration::from_millis_f64(ms)
    }

    /// Minimum poll interval `server` enforces at `t`, if it is inside a
    /// kiss-o'-death window (largest wins when windows overlap).
    pub fn kod_min_poll(&self, t: SimTime, server: usize) -> Option<SimDuration> {
        let mut best: Option<f64> = None;
        for w in &self.schedule.windows {
            if let FaultKind::KissODeath { servers, min_poll_secs } = w.kind {
                if w.active_at(t) && servers.contains(server) {
                    best = Some(best.map_or(min_poll_secs, |b: f64| b.max(min_poll_secs)));
                }
            }
        }
        best.map(SimDuration::from_secs_f64)
    }

    /// True when any scheduled kiss-o'-death window (active or not)
    /// mentions `server` — the exchange layer uses this to know it owns
    /// that server's rate-limit knob for the whole run.
    pub fn kod_manages(&self, server: usize) -> bool {
        self.schedule.windows.iter().any(|w| {
            matches!(w.kind, FaultKind::KissODeath { servers, .. } if servers.contains(server))
        })
    }

    /// Falseticker onset due for `server` by time `t`, at most once per
    /// scheduled event. Returns the step in milliseconds.
    pub fn take_falseticker_onset(&mut self, t: SimTime, server: usize) -> Option<f64> {
        let s = t.as_secs_f64();
        for (fired, w) in self.fired.iter_mut().zip(&self.schedule.windows) {
            if *fired {
                continue;
            }
            if let FaultKind::FalsetickerOnset { server: sv, error_ms } = w.kind {
                if sv == server && w.start_secs <= s {
                    *fired = true;
                    self.stats.falseticker_onsets += 1;
                    return Some(error_ms);
                }
            }
        }
        None
    }

    /// Client clock steps due by time `t`, each at most once. Returns
    /// the step sizes in milliseconds, in schedule order.
    pub fn take_clock_steps(&mut self, t: SimTime) -> Vec<f64> {
        let s = t.as_secs_f64();
        let mut due = Vec::new();
        for (fired, w) in self.fired.iter_mut().zip(&self.schedule.windows) {
            if *fired {
                continue;
            }
            if let FaultKind::ClockStep { offset_ms } = w.kind {
                if w.start_secs <= s {
                    *fired = true;
                    self.stats.clock_steps += 1;
                    due.push(offset_ms);
                }
            }
        }
        due
    }

    /// True when any *windowed* fault is active at `t` (instant kinds
    /// excluded) — lets evaluation code split statistics into
    /// during-fault and fault-free epochs.
    pub fn fault_active(&self, t: SimTime) -> bool {
        self.schedule.windows.iter().any(|w| {
            !matches!(w.kind, FaultKind::FalsetickerOnset { .. } | FaultKind::ClockStep { .. })
                && w.active_at(t)
        })
    }

    /// True when `server` is blackholed at `t`.
    pub fn outage_active(&self, t: SimTime, server: usize) -> bool {
        self.schedule.windows.iter().any(|w| {
            matches!(w.kind, FaultKind::ServerOutage { servers } if servers.contains(server))
                && w.active_at(t)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_is_identity() {
        let mut inj = FaultInjector::new(FaultSchedule::none(), 1);
        for i in 0..100 {
            assert_eq!(inj.uplink_fate(t(i), 0), PacketFate::Deliver);
            assert_eq!(inj.downlink_fate(t(i), 0), PacketFate::Deliver);
        }
        assert_eq!(inj.extra_delay_up(t(5)), SimDuration::ZERO);
        assert_eq!(inj.kod_min_poll(t(5), 0), None);
        assert!(!inj.fault_active(t(5)));
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn outage_blackholes_only_inside_window() {
        let sched = FaultSchedule::none().window(
            100.0,
            200.0,
            FaultKind::ServerOutage { servers: ServerSet::All },
        );
        let mut inj = FaultInjector::new(sched, 2);
        assert_eq!(inj.uplink_fate(t(99), 3), PacketFate::Deliver);
        assert_eq!(inj.uplink_fate(t(100), 3), PacketFate::Drop);
        assert_eq!(inj.downlink_fate(t(199), 3), PacketFate::Drop);
        // End is exclusive.
        assert_eq!(inj.uplink_fate(t(200), 3), PacketFate::Deliver);
        assert_eq!(inj.stats.dropped_up, 1);
        assert_eq!(inj.stats.dropped_down, 1);
    }

    #[test]
    fn single_server_outage_spares_the_rest() {
        let sched = FaultSchedule::none().window(
            0.0,
            100.0,
            FaultKind::ServerOutage { servers: ServerSet::One(2) },
        );
        let mut inj = FaultInjector::new(sched, 3);
        assert_eq!(inj.uplink_fate(t(5), 2), PacketFate::Drop);
        assert_eq!(inj.uplink_fate(t(5), 1), PacketFate::Deliver);
        assert!(inj.outage_active(t(5), 2));
        assert!(!inj.outage_active(t(5), 1));
    }

    #[test]
    fn loss_storm_drops_about_the_configured_fraction() {
        let sched = FaultSchedule::none()
            .window(0.0, 1e9, FaultKind::LossStorm { loss_prob: 0.4 });
        let mut inj = FaultInjector::new(sched, 4);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|i| inj.uplink_fate(t(*i), 0) == PacketFate::Drop)
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn duplicate_and_corrupt_apply_to_downlink_only() {
        let sched = FaultSchedule::none()
            .window(0.0, 1e9, FaultKind::DuplicateReply { prob: 1.0 })
            .window(0.0, 1e9, FaultKind::CorruptReply { prob: 1.0 });
        let mut inj = FaultInjector::new(sched, 5);
        assert_eq!(inj.uplink_fate(t(1), 0), PacketFate::Deliver);
        // Corrupt window is listed second but corruption outranks
        // duplication; with both at p=1 the reply is corrupted.
        assert_eq!(inj.downlink_fate(t(1), 0), PacketFate::Corrupt);

        let dup_only = FaultSchedule::none()
            .window(0.0, 1e9, FaultKind::DuplicateReply { prob: 1.0 });
        let mut inj = FaultInjector::new(dup_only, 6);
        assert_eq!(inj.downlink_fate(t(1), 0), PacketFate::Duplicate);
        assert_eq!(inj.stats.duplicated, 1);
    }

    #[test]
    fn delay_spikes_sum_and_respect_direction() {
        let sched = FaultSchedule::none()
            .window(10.0, 20.0, FaultKind::DelaySpike { extra_up_ms: 5.0, extra_down_ms: 80.0 })
            .window(15.0, 25.0, FaultKind::DelaySpike { extra_up_ms: 1.0, extra_down_ms: 2.0 });
        let inj = FaultInjector::new(sched, 7);
        assert_eq!(inj.extra_delay_up(t(12)), SimDuration::from_millis(5));
        assert_eq!(inj.extra_delay_down(t(12)), SimDuration::from_millis(80));
        assert_eq!(inj.extra_delay_up(t(16)), SimDuration::from_millis(6));
        assert_eq!(inj.extra_delay_down(t(22)), SimDuration::from_millis(2));
        assert_eq!(inj.extra_delay_up(t(30)), SimDuration::ZERO);
    }

    #[test]
    fn kod_window_reports_min_poll_for_covered_servers() {
        let sched = FaultSchedule::none().window(
            50.0,
            150.0,
            FaultKind::KissODeath { servers: ServerSet::One(1), min_poll_secs: 64.0 },
        );
        let inj = FaultInjector::new(sched, 8);
        assert_eq!(inj.kod_min_poll(t(60), 1), Some(SimDuration::from_secs(64)));
        assert_eq!(inj.kod_min_poll(t(60), 0), None);
        assert_eq!(inj.kod_min_poll(t(10), 1), None);
        assert!(inj.kod_manages(1));
        assert!(!inj.kod_manages(0));
    }

    #[test]
    fn instant_events_fire_exactly_once() {
        let sched = FaultSchedule::none()
            .at(100.0, FaultKind::FalsetickerOnset { server: 4, error_ms: 120.0 })
            .at(200.0, FaultKind::ClockStep { offset_ms: -500.0 })
            .at(300.0, FaultKind::ClockStep { offset_ms: 250.0 });
        let mut inj = FaultInjector::new(sched, 9);
        assert_eq!(inj.take_falseticker_onset(t(99), 4), None);
        assert_eq!(inj.take_falseticker_onset(t(100), 4), Some(120.0));
        assert_eq!(inj.take_falseticker_onset(t(101), 4), None);
        assert_eq!(inj.take_falseticker_onset(t(101), 5), None);
        assert_eq!(inj.take_clock_steps(t(150)), Vec::<f64>::new());
        // Both steps due when the query jumps past them; each once.
        assert_eq!(inj.take_clock_steps(t(350)), vec![-500.0, 250.0]);
        assert_eq!(inj.take_clock_steps(t(400)), Vec::<f64>::new());
        assert_eq!(inj.stats.clock_steps, 2);
        assert_eq!(inj.stats.falseticker_onsets, 1);
    }

    #[test]
    fn fault_active_ignores_instant_kinds() {
        let sched = FaultSchedule::none()
            .at(10.0, FaultKind::ClockStep { offset_ms: 1.0 })
            .window(20.0, 30.0, FaultKind::LossStorm { loss_prob: 0.5 });
        let inj = FaultInjector::new(sched, 10);
        assert!(!inj.fault_active(t(10)));
        assert!(inj.fault_active(t(25)));
        assert!(!inj.fault_active(t(30)));
    }

    /// Regression: a window reaching before t=0 is clamped onto the
    /// time axis instead of being accepted verbatim.
    #[test]
    fn negative_window_start_is_clamped_to_time_axis() {
        let sched = FaultSchedule::none().window(
            -50.0,
            10.0,
            FaultKind::ServerOutage { servers: ServerSet::All },
        );
        assert_eq!(sched.windows[0].start_secs, 0.0);
        assert_eq!(sched.windows[0].end_secs, 10.0);
        let mut inj = FaultInjector::new(sched, 11);
        assert_eq!(inj.uplink_fate(t(0), 0), PacketFate::Drop);
        assert_eq!(inj.uplink_fate(t(10), 0), PacketFate::Deliver);
    }

    /// Regression: an inverted window is a caller bug — it trips the
    /// debug assertion rather than silently never matching.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_window_panics_in_debug() {
        let _ = FaultSchedule::none().window(
            200.0,
            100.0,
            FaultKind::ServerOutage { servers: ServerSet::All },
        );
    }

    /// Regression: release builds saturate an inverted window to an
    /// empty one at `start` instead of keeping end < start.
    #[cfg(not(debug_assertions))]
    #[test]
    fn inverted_window_saturates_in_release() {
        let sched = FaultSchedule::none().window(
            200.0,
            100.0,
            FaultKind::ServerOutage { servers: ServerSet::All },
        );
        assert_eq!(sched.windows[0].start_secs, 200.0);
        assert_eq!(sched.windows[0].end_secs, 200.0);
    }

    /// The determinism contract: identical (schedule, seed) ⇒ identical
    /// fate streams, independent of everything else in the process.
    #[test]
    fn fate_stream_is_deterministic() {
        let sched = || {
            FaultSchedule::none()
                .window(0.0, 500.0, FaultKind::LossStorm { loss_prob: 0.3 })
                .window(100.0, 300.0, FaultKind::DuplicateReply { prob: 0.2 })
                .window(200.0, 400.0, FaultKind::CorruptReply { prob: 0.1 })
        };
        let run = || {
            let mut inj = FaultInjector::new(sched(), 42);
            let fates: Vec<PacketFate> = (0..1000)
                .flat_map(|i| [inj.uplink_fate(t(i), 0), inj.downlink_fate(t(i), 0)])
                .collect();
            (fates, inj.stats)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // A different seed must give a different stream.
        let mut other = FaultInjector::new(sched(), 43);
        let other_fates: Vec<PacketFate> = (0..1000)
            .flat_map(|i| [other.uplink_fate(t(i), 0), other.downlink_fate(t(i), 0)])
            .collect();
        assert_ne!(a.0, other_fates);
    }
}
