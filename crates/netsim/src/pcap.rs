//! A libpcap capture writer.
//!
//! Simulated exchanges can be dumped as a standard `.pcap` file —
//! Ethernet II / IPv4 / UDP frames around the real 48-byte NTP payloads —
//! and opened in Wireshark or fed to the same tcpdump-based tooling the
//! paper's §3.1 pipeline was built on. The format is the classic libpcap
//! one (magic `0xa1b2c3d4`, version 2.4); it is simple enough that
//! writing it by hand beats pulling a dependency.

use std::io::{self, Write};

use clocksim::time::SimTime;

/// Ethernet/IPv4/UDP endpoint of a simulated packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// MAC address.
    pub mac: [u8; 6],
    /// IPv4 address.
    pub ip: [u8; 4],
    /// UDP port (NTP uses 123).
    pub port: u16,
}

impl Endpoint {
    /// A client endpoint with a locally-administered MAC derived from the
    /// IP.
    pub fn of(ip: [u8; 4], port: u16) -> Self {
        Endpoint { mac: [0x02, 0x00, ip[0], ip[1], ip[2], ip[3]], ip, port }
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&1u32.to_le_bytes())?; // linktype: Ethernet
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Append one UDP datagram at simulation time `at`.
    pub fn record_udp(
        &mut self,
        at: SimTime,
        src: Endpoint,
        dst: Endpoint,
        payload: &[u8],
    ) -> io::Result<()> {
        let frame = build_frame(src, dst, payload);
        let nanos = at.as_nanos().max(0);
        let secs = (nanos / 1_000_000_000) as u32;
        let usecs = ((nanos % 1_000_000_000) / 1_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&frame)?;
        self.packets += 1;
        Ok(())
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Build an Ethernet II + IPv4 + UDP frame around `payload`.
fn build_frame(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Vec<u8> {
    let udp_len = 8 + payload.len();
    let ip_len = 20 + udp_len;
    let mut f = Vec::with_capacity(14 + ip_len);
    // Ethernet II.
    f.extend_from_slice(&dst.mac);
    f.extend_from_slice(&src.mac);
    f.extend_from_slice(&0x0800u16.to_be_bytes()); // IPv4
    // IPv4 header (no options).
    let ip_start = f.len();
    f.push(0x45); // version 4, IHL 5
    f.push(0x00); // DSCP/ECN
    f.extend_from_slice(&(ip_len as u16).to_be_bytes());
    f.extend_from_slice(&0u16.to_be_bytes()); // identification
    f.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    f.push(64); // TTL
    f.push(17); // UDP
    f.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    f.extend_from_slice(&src.ip);
    f.extend_from_slice(&dst.ip);
    let csum = ipv4_checksum(&f[ip_start..ip_start + 20]);
    f[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    // UDP header (checksum 0 = unset, legal over IPv4).
    f.extend_from_slice(&src.port.to_be_bytes());
    f.extend_from_slice(&dst.port.to_be_bytes());
    f.extend_from_slice(&(udp_len as u16).to_be_bytes());
    f.extend_from_slice(&0u16.to_be_bytes());
    f.extend_from_slice(payload);
    f
}

/// RFC 791 header checksum: one's-complement sum of 16-bit words.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Endpoint {
        Endpoint::of([192, 168, 1, 10], 50_000)
    }

    fn server() -> Endpoint {
        Endpoint::of([203, 0, 113, 7], 123)
    }

    #[test]
    fn global_header_is_valid_pcap() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 2);
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), 4);
        assert_eq!(u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]), 1);
    }

    #[test]
    fn frame_layout_and_lengths() {
        let payload = [0xAAu8; 48];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record_udp(SimTime::from_millis(1_500), client(), server(), &payload).unwrap();
        assert_eq!(w.packets(), 1);
        let buf = w.finish().unwrap();
        // 24 global + 16 record header + 14 eth + 20 ip + 8 udp + 48.
        assert_eq!(buf.len(), 24 + 16 + 14 + 20 + 8 + 48);
        // Record timestamps.
        let rec = &buf[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 500_000);
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 90);
        // Ethertype IPv4.
        let eth = &rec[16..];
        assert_eq!(&eth[12..14], &[0x08, 0x00]);
        // UDP dst port 123.
        let udp = &eth[14 + 20..];
        assert_eq!(u16::from_be_bytes(udp[2..4].try_into().unwrap()), 123);
        assert_eq!(u16::from_be_bytes(udp[4..6].try_into().unwrap()), 56);
    }

    #[test]
    fn ipv4_checksum_validates() {
        let payload = [0u8; 48];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record_udp(SimTime::from_secs(3), client(), server(), &payload).unwrap();
        let buf = w.finish().unwrap();
        let ip = &buf[24 + 16 + 14..24 + 16 + 14 + 20];
        // Recomputing the checksum over a valid header yields 0.
        let mut sum = 0u32;
        for chunk in ip.chunks(2) {
            sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(!(sum as u16), 0, "checksum must validate");
    }

    #[test]
    fn rfc1071_example_checksum() {
        // Canonical example header from common references.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_checksum(&header), 0xb861);
    }

    #[test]
    fn multiple_packets_append() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..10 {
            w.record_udp(SimTime::from_secs(i), client(), server(), &[0u8; 48]).unwrap();
        }
        assert_eq!(w.packets(), 10);
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24 + 10 * (16 + 90));
    }
}
