//! The 802.11 last-hop channel model.
//!
//! This is the component that turns "wireless effects such as channel
//! fading, interference due to adjacent channels, signal attenuation"
//! (paper §3.2) into concrete per-packet delay, loss, and the
//! (RSSI, noise) *wireless hints* MNTP's gate reads.
//!
//! ## Signal model
//!
//! * `RSSI = tx_power − path_loss`, where path loss is a static
//!   log-distance term plus Ornstein–Uhlenbeck shadow fading. The WAP's
//!   transmit power is adjustable at runtime — the monitor node's control
//!   knob (§3.2).
//! * `noise = floor + interference(utilization) + OU jitter`. Cross-traffic
//!   (the monitor node's file downloads) raises medium utilization, which
//!   lifts the measured noise level — reproducing what `airport`-style
//!   utilities report on a congested channel.
//! * `SNR margin = RSSI − noise` — the quantity MNTP thresholds at 20 dB.
//!
//! ## Delay/loss model
//!
//! Each frame pays a DCF access delay that grows with utilization
//! (M/M/1-style queue factor plus a heavy Pareto tail under saturation);
//! per-attempt frame error probability is a logistic function of SNR and
//! collision probability grows with utilization; failed attempts retry
//! with binary-exponential backoff up to `max_retries`, after which the
//! packet is lost. Downlink frames additionally sit in the AP's queue
//! behind the cross-traffic download (bufferbloat), which is what makes
//! the path *asymmetric* — the mechanism that corrupts SNTP's offset
//! samples by half the asymmetry (see `ntp_wire::math`).

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};

/// How the station moves relative to the WAP, expressed as a
/// deterministic path-loss modulation (paper §7 asks for evaluation "in
/// a wider variety of cellular and WiFi settings"; movement is the main
/// WiFi variable the lab testbed could not exercise).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilityProfile {
    /// Stationary device (the paper's lab setting).
    Static,
    /// Pacing back and forth: path loss swings sinusoidally by
    /// `amplitude_db` with the given period.
    Pace {
        /// Peak path-loss deviation, dB.
        amplitude_db: f64,
        /// Full cycle period, s.
        period_secs: f64,
    },
    /// Walking away at a constant rate: path loss grows by
    /// `db_per_minute` until `max_extra_db` above baseline.
    WalkAway {
        /// Path-loss growth rate, dB per minute.
        db_per_minute: f64,
        /// Cap on the extra loss, dB.
        max_extra_db: f64,
    },
}

/// Instantaneous link-layer measurements, as a wireless adaptor would
/// report them (`airport` on macOS, `iwconfig` on Linux — paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirelessHints {
    /// Received signal strength indication, dBm.
    pub rssi_dbm: f64,
    /// Noise level, dBm.
    pub noise_dbm: f64,
}

impl WirelessHints {
    /// The SNR margin (paper: `RSSI − noise`), dB.
    pub fn snr_margin_db(&self) -> f64 {
        self.rssi_dbm - self.noise_dbm
    }
}

/// Static configuration of the channel model. Defaults reproduce the
/// indoor lab regime of the paper's testbed.
#[derive(Clone, Debug)]
pub struct WifiConfig {
    /// Initial WAP transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Transmit-power control range, dBm (legal limits, §3.2).
    pub tx_power_range_dbm: (f64, f64),
    /// Static path loss between WAP and target node, dB.
    pub path_loss_db: f64,
    /// Stationary σ of the shadow-fading OU process, dB.
    pub shadow_sigma_db: f64,
    /// Time constant of shadow fading, s.
    pub shadow_tau_secs: f64,
    /// Thermal/ambient noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Interference lift at full utilization, dB.
    pub interference_gain_db: f64,
    /// Exponent shaping how utilization maps to interference.
    pub interference_exp: f64,
    /// Stationary σ of the noise jitter OU process, dB.
    pub noise_jitter_sigma_db: f64,
    /// Time constant of noise jitter, s.
    pub noise_jitter_tau_secs: f64,
    /// SNR at which a single frame attempt fails 50% of the time, dB.
    pub snr50_db: f64,
    /// Logistic slope of frame error vs SNR, dB.
    pub snr_slope_db: f64,
    /// Collision probability at full utilization.
    pub collision_at_full: f64,
    /// Maximum link-layer transmission attempts per frame.
    pub max_attempts: u32,
    /// Base medium-access delay, ms.
    pub base_access_ms: f64,
    /// Queue gain: access delay multiplier per unit of `u/(1−u)`.
    pub queue_gain_ms: f64,
    /// Probability gain of a heavy-tail queueing spike per unit of
    /// utilization *above* `tail_util_threshold`.
    pub tail_prob_gain: f64,
    /// Utilization below which heavy contention spikes cannot occur (a
    /// near-idle medium has nobody to contend with).
    pub tail_util_threshold: f64,
    /// Pareto scale of queueing spikes, ms.
    pub tail_scale_ms: f64,
    /// Pareto shape of queueing spikes.
    pub tail_alpha: f64,
    /// Mean extra downlink (AP-queue) delay at full utilization, ms.
    pub downlink_bloat_ms: f64,
    /// Utilization above which the AP queue starts building. Below the
    /// knee the AP drains faster than cross-traffic arrives and the
    /// queue stays empty.
    pub bloat_util_knee: f64,
    /// Time constant of utilization ramps, s. Cross-traffic is TCP: it
    /// ramps up through slow start and the AP queue drains gradually, so
    /// utilization approaches its target exponentially instead of
    /// jumping. (This is also what keeps the hint gate honest: the
    /// channel cannot turn hostile faster than the hints can show it.)
    pub util_ramp_tau_secs: f64,
    /// Hard cap on any single sampled delay, ms (TCP cross-traffic cannot
    /// hold a UDP probe forever).
    pub delay_cap_ms: f64,
    /// Station mobility.
    pub mobility: MobilityProfile,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            tx_power_dbm: 15.0,
            tx_power_range_dbm: (4.0, 20.0),
            path_loss_db: 82.0,
            shadow_sigma_db: 3.0,
            shadow_tau_secs: 25.0,
            noise_floor_dbm: -92.0,
            interference_gain_db: 45.0,
            interference_exp: 1.2,
            noise_jitter_sigma_db: 2.0,
            noise_jitter_tau_secs: 8.0,
            snr50_db: 0.0,
            snr_slope_db: 3.0,
            collision_at_full: 0.30,
            max_attempts: 7,
            base_access_ms: 1.2,
            queue_gain_ms: 6.0,
            tail_prob_gain: 0.35,
            tail_util_threshold: 0.30,
            tail_scale_ms: 40.0,
            tail_alpha: 1.5,
            downlink_bloat_ms: 330.0,
            bloat_util_knee: 0.45,
            util_ramp_tau_secs: 4.0,
            delay_cap_ms: 2500.0,
            mobility: MobilityProfile::Static,
        }
    }
}

/// Cached per-step OU/ramp coefficients. `advance_to` is called once per
/// transmitted frame and per hint read; the overwhelmingly common case is
/// a fixed sampling cadence (5 s polls, 100 ms ticks), where `dt` repeats
/// and the three `exp` plus two `sqrt` evaluations per step can be reused
/// verbatim. Keyed on `dt`: any change recomputes, so results are
/// bit-identical to the uncached math for *every* call pattern.
#[derive(Clone, Debug)]
pub(crate) struct StepCoeffs {
    /// The `dt` these coefficients were computed for (`NaN` = never).
    pub(crate) dt: f64,
    /// `exp(-dt/shadow_tau)`.
    pub(crate) shadow_a: f64,
    /// `shadow_sigma * sqrt(1 - shadow_a²)`.
    pub(crate) shadow_c: f64,
    /// `exp(-dt/noise_jitter_tau)`.
    pub(crate) noise_a: f64,
    /// `noise_jitter_sigma * sqrt(1 - noise_a²)`.
    pub(crate) noise_c: f64,
    /// `exp(-dt/util_ramp_tau)`.
    pub(crate) util_a: f64,
}

impl StepCoeffs {
    pub(crate) fn empty() -> Self {
        StepCoeffs {
            dt: f64::NAN,
            shadow_a: 0.0,
            shadow_c: 0.0,
            noise_a: 0.0,
            noise_c: 0.0,
            util_a: 0.0,
        }
    }

    #[inline]
    pub(crate) fn for_dt(cfg: &WifiConfig, dt: f64) -> Self {
        let shadow_a = (-dt / cfg.shadow_tau_secs).exp();
        let noise_a = (-dt / cfg.noise_jitter_tau_secs).exp();
        StepCoeffs {
            dt,
            shadow_a,
            shadow_c: cfg.shadow_sigma_db * (1.0 - shadow_a * shadow_a).sqrt(),
            noise_a,
            noise_c: cfg.noise_jitter_sigma_db * (1.0 - noise_a * noise_a).sqrt(),
            util_a: (-dt / cfg.util_ramp_tau_secs).exp(),
        }
    }
}

// ---------------------------------------------------------------------------
// Channel math, factored as free functions over scalar state.
//
// `WifiChannel` (one struct per lane) and `lanes::ChannelBank` (one Vec per
// field, for fleet-scale populations) both delegate here, so the two layouts
// are bit-identical by construction: same expressions, same RNG call order.
// ---------------------------------------------------------------------------

/// One OU/ramp step. RNG order: shadow gauss, then noise gauss.
#[inline]
pub(crate) fn ou_step(
    c: &StepCoeffs,
    shadow_db: &mut f64,
    noise_jitter_db: &mut f64,
    utilization: &mut f64,
    target_utilization: f64,
    rng: &mut SimRng,
) {
    *shadow_db = *shadow_db * c.shadow_a + c.shadow_c * rng.gauss();
    *noise_jitter_db = *noise_jitter_db * c.noise_a + c.noise_c * rng.gauss();
    // Utilization ramps toward its target.
    *utilization = target_utilization + (*utilization - target_utilization) * c.util_a;
}

/// Deterministic mobility path-loss modulation at absolute time `t_secs`.
#[inline]
pub(crate) fn mobility_extra_db(cfg: &WifiConfig, t_secs: f64) -> f64 {
    match cfg.mobility {
        MobilityProfile::Static => 0.0,
        MobilityProfile::Pace { amplitude_db, period_secs } => {
            amplitude_db * (2.0 * std::f64::consts::PI * t_secs / period_secs).sin()
        }
        MobilityProfile::WalkAway { db_per_minute, max_extra_db } => {
            (db_per_minute * t_secs / 60.0).min(max_extra_db)
        }
    }
}

#[inline]
pub(crate) fn rssi_dbm(cfg: &WifiConfig, tx_power_dbm: f64, shadow_db: f64, t_secs: f64) -> f64 {
    tx_power_dbm - cfg.path_loss_db - shadow_db - mobility_extra_db(cfg, t_secs)
}

#[inline]
pub(crate) fn noise_dbm(cfg: &WifiConfig, utilization: f64, noise_jitter_db: f64) -> f64 {
    cfg.noise_floor_dbm
        + cfg.interference_gain_db * utilization.powf(cfg.interference_exp)
        + noise_jitter_db
}

/// Per-attempt frame error probability at the given SNR plus
/// utilization-driven collision probability.
#[inline]
pub(crate) fn attempt_failure_prob(cfg: &WifiConfig, rssi: f64, noise: f64, utilization: f64) -> f64 {
    let snr = rssi - noise;
    let p_err = 1.0 / (1.0 + ((snr - cfg.snr50_db) / cfg.snr_slope_db).exp());
    let p_coll = cfg.collision_at_full * utilization;
    (p_err + (1.0 - p_err) * p_coll).clamp(0.0, 1.0)
}

/// The DCF attempt loop: returns `Some(link delay)` on success within
/// `max_attempts`, `None` when the frame is dropped. RNG order: exponential
/// access delay; [tail chance, then pareto if it hits]; per-retry chance plus
/// uniform backoff.
pub(crate) fn transmit_frame_delay(
    cfg: &WifiConfig,
    p_fail: f64,
    utilization: f64,
    rng: &mut SimRng,
) -> Option<SimDuration> {
    let u = utilization;
    // Medium-access (queueing + contention) delay.
    let queue_factor = (u / (1.0 - u.min(0.95))).min(12.0);
    let mean_access = cfg.base_access_ms + cfg.queue_gain_ms * queue_factor;
    let mut delay_ms = rng.exponential(mean_access);
    let excess = (u - cfg.tail_util_threshold).max(0.0);
    if excess > 0.0 && rng.chance(cfg.tail_prob_gain * excess) {
        delay_ms += rng.pareto(cfg.tail_scale_ms, cfg.tail_alpha);
    }
    // Retry loop with binary exponential backoff.
    let mut attempt = 0;
    loop {
        if !rng.chance(p_fail) {
            break; // delivered
        }
        attempt += 1;
        if attempt >= cfg.max_attempts {
            return None;
        }
        // Backoff window doubles per attempt; slot ≈ 0.3 ms equivalent
        // (includes retransmission airtime at low rate).
        let window_ms = 0.3 * (1 << attempt.min(6)) as f64;
        delay_ms += rng.uniform_range(0.0, window_ms) + 1.0;
    }
    Some(SimDuration::from_millis_f64(delay_ms.min(cfg.delay_cap_ms)))
}

/// AP-queue bufferbloat behind cross-traffic, ms. Consumes one exponential
/// draw only above the knee.
#[inline]
pub(crate) fn downlink_bloat_ms(cfg: &WifiConfig, utilization: f64, rng: &mut SimRng) -> f64 {
    if utilization > cfg.bloat_util_knee {
        // Mean queue depth grows superlinearly with utilization; the
        // exponential tail is capped — the AP queue is finite.
        cfg.downlink_bloat_ms * utilization.powf(1.7) * rng.exponential(1.0).min(2.5)
    } else {
        0.0
    }
}

/// The last-hop transmit surface shared by [`WifiChannel`] (one struct per
/// lane) and [`crate::lanes::Lane`] (a view into the struct-of-arrays
/// [`crate::lanes::ChannelBank`]). Exchange drivers that only need to move
/// packets and read hints are generic over this, so the same code serves the
/// single-device testbed and the million-client fleet.
pub trait ChannelIo {
    /// Evolve the channel state up to `t`.
    fn advance_to(&mut self, t: SimTime);
    /// Current wireless hints (advances the channel to `t` first).
    fn hints(&mut self, t: SimTime) -> WirelessHints;
    /// Transmit an uplink (station → WAP) packet at time `t`.
    fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration>;
    /// Transmit a downlink (WAP → station) packet at time `t`.
    fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration>;
}

/// Live channel state.
#[derive(Clone, Debug)]
pub struct WifiChannel {
    cfg: WifiConfig,
    tx_power_dbm: f64,
    shadow_db: f64,
    noise_jitter_db: f64,
    utilization: f64,
    target_utilization: f64,
    last_update: SimTime,
    coeffs: StepCoeffs,
    rng: SimRng,
}

impl WifiChannel {
    /// Create a channel at `t = 0` with the given config and RNG stream.
    pub fn new(cfg: WifiConfig, rng: SimRng) -> Self {
        let tx = cfg.tx_power_dbm;
        WifiChannel {
            cfg,
            tx_power_dbm: tx,
            shadow_db: 0.0,
            noise_jitter_db: 0.0,
            utilization: 0.05,
            target_utilization: 0.05,
            last_update: SimTime::ZERO,
            coeffs: StepCoeffs::empty(),
            rng,
        }
    }

    /// Evolve the OU processes up to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        let dt = (t - self.last_update).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        // `NaN != NaN`, so the first step always computes.
        if self.coeffs.dt != dt {
            self.coeffs = StepCoeffs::for_dt(&self.cfg, dt);
        }
        ou_step(
            &self.coeffs,
            &mut self.shadow_db,
            &mut self.noise_jitter_db,
            &mut self.utilization,
            self.target_utilization,
            &mut self.rng,
        );
        self.last_update = t;
    }

    /// Current wireless hints (advances the channel to `t` first).
    pub fn hints(&mut self, t: SimTime) -> WirelessHints {
        self.advance_to(t);
        WirelessHints { rssi_dbm: self.rssi_dbm(), noise_dbm: self.noise_dbm() }
    }

    fn rssi_dbm(&self) -> f64 {
        rssi_dbm(&self.cfg, self.tx_power_dbm, self.shadow_db, self.last_update.as_secs_f64())
    }

    fn noise_dbm(&self) -> f64 {
        noise_dbm(&self.cfg, self.utilization, self.noise_jitter_db)
    }

    /// Current SNR, dB (RSSI − noise).
    pub fn snr_db(&mut self, t: SimTime) -> f64 {
        let h = self.hints(t);
        h.snr_margin_db()
    }

    /// Set the medium-utilization *target* in `[0, 1]` (driven by the
    /// cross-traffic generator); the current utilization ramps toward it
    /// with `util_ramp_tau_secs`.
    pub fn set_utilization(&mut self, u: f64) {
        self.target_utilization = u.clamp(0.0, 1.0);
    }

    /// Set utilization immediately, bypassing the ramp (tests, scenario
    /// setup).
    pub fn set_utilization_now(&mut self, u: f64) {
        self.target_utilization = u.clamp(0.0, 1.0);
        self.utilization = self.target_utilization;
    }

    /// Current medium utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Set the WAP transmit power, clamped to the legal range.
    pub fn set_tx_power_dbm(&mut self, dbm: f64) {
        let (lo, hi) = self.cfg.tx_power_range_dbm;
        self.tx_power_dbm = dbm.clamp(lo, hi);
    }

    /// Adjust the WAP transmit power by `delta` dB, clamped.
    pub fn adjust_tx_power_db(&mut self, delta: f64) {
        self.set_tx_power_dbm(self.tx_power_dbm + delta);
    }

    /// Current transmit power, dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Simulate the DCF attempt loop: returns `Some(link delay)` on
    /// success within `max_attempts`, `None` when the frame is dropped.
    fn transmit_frame(&mut self) -> Option<SimDuration> {
        let p_fail =
            attempt_failure_prob(&self.cfg, self.rssi_dbm(), self.noise_dbm(), self.utilization);
        transmit_frame_delay(&self.cfg, p_fail, self.utilization, &mut self.rng)
    }

    /// Transmit an uplink (station → WAP) packet at time `t`.
    pub fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        self.transmit_frame()
    }

    /// Transmit a downlink (WAP → station) packet at time `t`. Pays the
    /// additional AP-queue bufferbloat behind cross-traffic.
    pub fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration> {
        self.advance_to(t);
        let frame = self.transmit_frame()?;
        let bloat_ms = downlink_bloat_ms(&self.cfg, self.utilization, &mut self.rng);
        let total = frame.as_millis_f64() + bloat_ms;
        Some(SimDuration::from_millis_f64(total.min(self.cfg.delay_cap_ms)))
    }
}

impl ChannelIo for WifiChannel {
    fn advance_to(&mut self, t: SimTime) {
        WifiChannel::advance_to(self, t);
    }
    fn hints(&mut self, t: SimTime) -> WirelessHints {
        WifiChannel::hints(self, t)
    }
    fn transmit_up(&mut self, t: SimTime) -> Option<SimDuration> {
        WifiChannel::transmit_up(self, t)
    }
    fn transmit_down(&mut self, t: SimTime) -> Option<SimDuration> {
        WifiChannel::transmit_down(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_channel(seed: u64) -> WifiChannel {
        let mut ch = WifiChannel::new(WifiConfig::default(), SimRng::new(seed));
        ch.set_utilization_now(0.05);
        ch
    }

    fn congested_channel(seed: u64) -> WifiChannel {
        let cfg = WifiConfig { tx_power_dbm: 7.0, ..Default::default() };
        let mut ch = WifiChannel::new(cfg, SimRng::new(seed));
        ch.set_utilization_now(0.82);
        ch
    }

    #[test]
    fn hints_reflect_power_and_utilization() {
        let mut ch = quiet_channel(1);
        let good = ch.hints(SimTime::from_secs(1));
        assert!(good.rssi_dbm > -75.0, "rssi={}", good.rssi_dbm);
        assert!(good.noise_dbm < -80.0, "noise={}", good.noise_dbm);
        assert!(good.snr_margin_db() > 20.0);

        let mut ch = congested_channel(2);
        let bad = ch.hints(SimTime::from_secs(1));
        assert!(bad.rssi_dbm < -70.0, "rssi={}", bad.rssi_dbm);
        assert!(bad.noise_dbm > -70.0, "noise={}", bad.noise_dbm);
        assert!(bad.snr_margin_db() < 20.0);
    }

    #[test]
    fn quiet_channel_delivers_fast() {
        let mut ch = quiet_channel(3);
        let mut delivered = 0;
        let mut total_ms = 0.0;
        for i in 0..2000 {
            let t = SimTime::from_millis(i * 100);
            if let Some(d) = ch.transmit_up(t) {
                delivered += 1;
                total_ms += d.as_millis_f64();
            }
        }
        assert!(delivered > 1950, "delivered={delivered}");
        let mean = total_ms / delivered as f64;
        assert!(mean < 10.0, "mean uplink delay {mean} ms");
    }

    #[test]
    fn congested_channel_loses_and_delays() {
        let mut ch = congested_channel(4);
        let mut delivered = 0;
        let mut delays = Vec::new();
        for i in 0..2000 {
            let t = SimTime::from_millis(i * 100);
            if let Some(d) = ch.transmit_down(t) {
                delivered += 1;
                delays.push(d.as_millis_f64());
            }
        }
        let loss = 1.0 - delivered as f64 / 2000.0;
        assert!(loss > 0.02, "loss={loss}");
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!(mean > 100.0, "mean downlink delay {mean} ms under congestion");
        let max = delays.iter().cloned().fold(0.0, f64::max);
        assert!(max > 400.0, "max={max}");
        assert!(max <= WifiConfig::default().delay_cap_ms, "capped");
    }

    #[test]
    fn downlink_slower_than_uplink_under_load() {
        let mut ch = congested_channel(5);
        let mut up = Vec::new();
        let mut down = Vec::new();
        for i in 0..4000 {
            let t = SimTime::from_millis(i * 50);
            if let Some(d) = ch.transmit_up(t) {
                up.push(d.as_millis_f64());
            }
            if let Some(d) = ch.transmit_down(t) {
                down.push(d.as_millis_f64());
            }
        }
        let mu = up.iter().sum::<f64>() / up.len() as f64;
        let md = down.iter().sum::<f64>() / down.len() as f64;
        assert!(md > 2.0 * mu, "down {md} should dwarf up {mu}");
    }

    #[test]
    fn tx_power_clamped_to_range() {
        let mut ch = quiet_channel(6);
        ch.set_tx_power_dbm(100.0);
        assert_eq!(ch.tx_power_dbm(), 20.0);
        ch.adjust_tx_power_db(-100.0);
        assert_eq!(ch.tx_power_dbm(), 4.0);
    }

    #[test]
    fn utilization_clamped() {
        let mut ch = quiet_channel(7);
        ch.set_utilization_now(2.0);
        assert_eq!(ch.utilization(), 1.0);
        ch.set_utilization_now(-1.0);
        assert_eq!(ch.utilization(), 0.0);
    }

    #[test]
    fn utilization_ramps_not_jumps() {
        let mut ch = quiet_channel(12);
        ch.advance_to(SimTime::from_secs(1));
        ch.set_utilization(0.9);
        // Immediately after the command the medium is still quiet…
        assert!(ch.utilization() < 0.2);
        // …one ramp-tau later it is partway…
        ch.advance_to(SimTime::from_secs(5));
        assert!((0.3..0.8).contains(&ch.utilization()), "u={}", ch.utilization());
        // …and after several taus it has arrived.
        ch.advance_to(SimTime::from_secs(30));
        assert!(ch.utilization() > 0.85);
    }

    #[test]
    fn shadow_fading_moves_rssi() {
        let mut ch = quiet_channel(8);
        let mut values = Vec::new();
        for i in 0..200 {
            values.push(ch.hints(SimTime::from_secs(i * 10)).rssi_dbm);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 4.0, "shadowing should move RSSI, range={}", max - min);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ch = congested_channel(seed);
            (0..100)
                .map(|i| ch.transmit_down(SimTime::from_millis(i * 100)).map(|d| d.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn coeff_cache_invalidates_on_dt_change() {
        // Small steps prime the cache with dt=1 coefficients; the
        // following dt=100 step must recompute (a stale exp(-1/4) would
        // leave utilization visibly short of its target).
        let mut ch = quiet_channel(13);
        ch.set_utilization(0.9);
        for i in 1..=5 {
            ch.advance_to(SimTime::from_secs(i));
        }
        ch.advance_to(SimTime::from_secs(105));
        assert!(ch.utilization() > 0.899, "u={}", ch.utilization());
        // And back to a small step: shadow fading must keep moving on
        // freshly small coefficients, not the dt=100 ones (a≈0 would make
        // successive samples nearly independent at full σ; with dt=1 the
        // step-to-step change is bounded by c ≈ σ·sqrt(1-a²) ≈ 0.84 dB·g).
        let r1 = ch.hints(SimTime::from_secs(106)).rssi_dbm;
        let r2 = ch.hints(SimTime::from_secs(107)).rssi_dbm;
        assert!((r1 - r2).abs() < 3.0 * 0.84 * 3.0, "dt=1 steps should be correlated");
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut ch = quiet_channel(11);
        let t = SimTime::from_secs(5);
        let a = ch.hints(t);
        let b = ch.hints(t);
        assert_eq!(a, b);
    }
}
