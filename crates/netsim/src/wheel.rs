//! Hierarchical timing wheel — the O(1) queue backend behind
//! [`crate::kernel::Sim`].
//!
//! The fleet workload is almost entirely *bounded-horizon* timers: poll
//! ticks seconds-to-minutes out, cross-traffic decisions every couple of
//! seconds. A binary heap pays O(log n) per operation on that pattern; a
//! timing wheel pays O(1) to schedule and amortized O(1) to pop.
//!
//! ## Geometry
//!
//! Time is quantized into ticks of 2^20 ns (~1.05 ms). Four levels of 64
//! slots each cover 2^24 ticks (~4.9 simulated hours) ahead of the
//! cursor; level `l` spans tick digits `[6l, 6(l+1))`. Three auxiliary
//! structures complete the picture:
//!
//! * `ready` — a small heap of entries whose tick has been reached
//!   (`tick <= cursor`). Same-tick events are sub-ordered here by their
//!   full `(time, seq)` key, which is what preserves exact FIFO
//!   semantics despite the coarse 1 ms tick.
//! * the wheel itself — entries with `cursor < tick < horizon`.
//! * `overflow` — a heap of entries at or beyond the horizon. When the
//!   wheel drains, the earliest overflow super-window (tick bits ≥ 24)
//!   is migrated in wholesale.
//!
//! ## Invariants
//!
//! An entry sits at the *highest* level where its tick digit differs
//! from the cursor's (`level = ⌊bitlen(tick ^ cursor) − 1) / 6⌋`), so
//! every stored digit is strictly greater than the cursor's digit at
//! that level and all higher digits agree. Consequences:
//!
//! * every `ready` entry precedes every wheel entry, which precedes
//!   every `overflow` entry (tick order is strict across the three);
//! * the lowest occupied slot of the lowest occupied level is always
//!   the globally next tick — expiring level 0 yields exact fire times,
//!   and cascading level `l ≥ 1` re-files its batch strictly below `l`,
//!   so advancing terminates.
//!
//! The cursor only moves forward, and `Sim::push` clamps times to `now`,
//! so no entry is ever scheduled behind the cursor.
//!
//! The heap backend ([`crate::kernel::SchedulerKind::Heap`]) is the
//! reference implementation; the property tests at the bottom pin the
//! wheel to it on randomized schedules spanning same-instant batches,
//! cascade boundaries and the overflow horizon.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use clocksim::time::SimTime;

use crate::kernel::{key_time, Entry};

/// log2 of the tick width in nanoseconds (2^20 ns ≈ 1.05 ms).
const TICK_SHIFT: u32 = 20;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; beyond them entries go to the overflow heap.
const LEVELS: usize = 4;
/// Tick bits covered by the wheel (the horizon).
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// Tick index of a packed key: the biased-time half, quantized.
/// Biasing preserves order, so ticks are monotone in simulation time.
#[inline]
fn tick_of(key: u128) -> u64 {
    ((key >> 64) as u64) >> TICK_SHIFT
}

/// The wheel. See the module docs for geometry and invariants.
pub(crate) struct Wheel {
    /// Current tick; entries with `tick <= cursor` live in `ready`.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets, row-major by level.
    buckets: Vec<Vec<Entry>>,
    /// Per-level occupancy bitmap (bit `s` = bucket `s` non-empty).
    occupied: [u64; LEVELS],
    /// Entries whose tick has been reached, ordered by full key.
    ready: BinaryHeap<Reverse<Entry>>,
    /// Entries at or beyond the horizon, ordered by full key.
    overflow: BinaryHeap<Reverse<Entry>>,
    len: usize,
}

impl Wheel {
    pub(crate) fn new() -> Self {
        Wheel {
            cursor: 0,
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, e: Entry) {
        self.len += 1;
        self.place(e);
    }

    /// File an entry into ready / a wheel bucket / overflow according to
    /// its tick's relation to the cursor.
    fn place(&mut self, e: Entry) {
        let tick = tick_of(e.key);
        if tick <= self.cursor {
            self.ready.push(Reverse(e));
            return;
        }
        let diff = tick ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(e));
            return;
        }
        let slot = ((tick >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        // lint:allow(no-slice-index) — level < LEVELS and slot < SLOTS by construction; buckets has LEVELS×SLOTS rows
        self.buckets[level * SLOTS + slot].push(e);
        // lint:allow(no-slice-index) — level < LEVELS checked two lines up
        self.occupied[level] |= 1u64 << slot;
    }

    /// Remove and return the minimum entry if its time is `<= t`.
    pub(crate) fn pop_before(&mut self, t: SimTime) -> Option<Entry> {
        loop {
            if let Some(&Reverse(e)) = self.ready.peek() {
                // `ready` always holds the global minimum (strict tick
                // ordering across ready / wheel / overflow), so one
                // comparison decides.
                if key_time(e.key) > t {
                    return None;
                }
                self.ready.pop();
                self.len -= 1;
                return Some(e);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Make progress toward filling `ready`: expire the next level-0
    /// slot, cascade one higher-level slot down, or migrate the earliest
    /// overflow super-window in. Returns `false` only when nothing is
    /// pending anywhere.
    fn advance(&mut self) -> bool {
        for level in 0..LEVELS {
            // lint:allow(no-slice-index) — level ranges over 0..LEVELS
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            // Stored digits at this level strictly exceed the cursor's
            // digit, so the lowest set bit is the next window in time.
            let slot = occ.trailing_zeros() as usize;
            // lint:allow(no-slice-index) — level < LEVELS, slot < 64; buckets has LEVELS×SLOTS rows
            let batch = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            // lint:allow(no-slice-index) — level < LEVELS
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // Level 0 resolves exact ticks: every entry in this
                // bucket fires at tick `t`.
                let t = (self.cursor >> SLOT_BITS << SLOT_BITS) | slot as u64;
                debug_assert!(t > self.cursor);
                self.cursor = t;
                for e in batch {
                    self.ready.push(Reverse(e));
                }
            } else {
                // Jump the cursor to the start of the expiring window,
                // then cascade: each entry now differs from the cursor
                // only below this level, so it re-files strictly lower
                // (or straight into `ready` at the window start).
                let shift = (level as u32 + 1) * SLOT_BITS;
                let window =
                    (self.cursor >> shift << shift) | ((slot as u64) << (level as u32 * SLOT_BITS));
                debug_assert!(window > self.cursor);
                self.cursor = window;
                for e in batch {
                    self.place(e);
                }
            }
            return true;
        }
        // Wheel empty: bring in the earliest overflow super-window.
        let Some(&Reverse(min)) = self.overflow.peek() else {
            return false;
        };
        let min_super = tick_of(min.key) >> HORIZON_BITS;
        // Overflow entries always sit in a later super-window than the
        // cursor (that is what put them past the horizon), so this jump
        // never moves backwards.
        debug_assert!(min_super > self.cursor >> HORIZON_BITS);
        self.cursor = min_super << HORIZON_BITS;
        while let Some(&Reverse(e)) = self.overflow.peek() {
            if tick_of(e.key) >> HORIZON_BITS != min_super {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else { break };
            self.place(e);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::pack_key;

    fn entry(at_nanos: i64, seq: u64) -> Entry {
        Entry { key: pack_key(SimTime(at_nanos), seq), slot: seq as u32 }
    }

    /// Reference scheduler: plain min-heap over the same entries.
    struct RefHeap(BinaryHeap<Reverse<Entry>>);

    impl RefHeap {
        fn new() -> Self {
            RefHeap(BinaryHeap::new())
        }
        fn push(&mut self, e: Entry) {
            self.0.push(Reverse(e));
        }
        fn pop_before(&mut self, t: SimTime) -> Option<Entry> {
            let &Reverse(e) = self.0.peek()?;
            if key_time(e.key) > t {
                return None;
            }
            self.0.pop().map(|Reverse(e)| e)
        }
    }

    const TICK: i64 = 1 << TICK_SHIFT;
    /// First nanosecond beyond the wheel horizon.
    const HORIZON_NS: i64 = 1i64 << (TICK_SHIFT + HORIZON_BITS);

    #[test]
    fn same_tick_entries_pop_in_key_order() {
        let mut w = Wheel::new();
        // Same 1 ms tick, distinct nanosecond times and sequences.
        w.push(entry(TICK * 5 + 300, 2));
        w.push(entry(TICK * 5 + 100, 0));
        w.push(entry(TICK * 5 + 100, 1));
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_before(SimTime(i64::MAX)))
            .map(|e| e.key as u64)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn pop_before_respects_the_boundary() {
        let mut w = Wheel::new();
        w.push(entry(TICK * 3, 0));
        w.push(entry(TICK * 900, 1));
        assert_eq!(w.pop_before(SimTime(TICK * 3)).map(|e| e.key as u64), Some(0));
        assert_eq!(w.pop_before(SimTime(TICK * 3)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_before(SimTime(TICK * 900)).map(|e| e.key as u64), Some(1));
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn cascade_boundaries_preserve_order() {
        // One entry per level (tick 1, 64, 64², 64³) plus one in overflow,
        // pushed in reverse: each pop crosses a cascade or migration.
        let mut w = Wheel::new();
        let ticks = [1i64, 64, 64 * 64, 64 * 64 * 64, 1 << HORIZON_BITS];
        for (seq, t) in ticks.iter().enumerate().rev() {
            w.push(entry(t * TICK, seq as u64));
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_before(SimTime(i64::MAX)))
            .map(|e| e.key as u64)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_migrates_in_super_window_batches() {
        let mut w = Wheel::new();
        // Two distinct super-windows beyond the horizon, plus one near event.
        w.push(entry(HORIZON_NS * 3 + 17 * TICK, 2));
        w.push(entry(HORIZON_NS + 5 * TICK, 1));
        w.push(entry(2 * TICK, 0));
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_before(SimTime(i64::MAX)))
            .map(|e| e.key as u64)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        // Deterministic interleave: pops happen while later pushes are
        // still pending, forcing placements relative to a moving cursor.
        let mut w = Wheel::new();
        let mut r = RefHeap::new();
        let times: Vec<i64> = (0..200)
            .map(|i| ((i * 2_654_435_761u64) % (1 << 30)) as i64 * 37)
            .collect();
        for (phase, chunk) in times.chunks(40).enumerate() {
            for (j, &t) in chunk.iter().enumerate() {
                let e = entry(t, (phase * 100 + j) as u64);
                w.push(e);
                r.push(e);
            }
            let limit = SimTime((phase as i64 + 1) * (1 << 28));
            loop {
                let (a, b) = (w.pop_before(limit), r.pop_before(limit));
                assert_eq!(a, b, "phase {phase}");
                if a.is_none() {
                    break;
                }
            }
        }
        loop {
            let (a, b) = (w.pop_before(SimTime(i64::MAX)), r.pop_before(SimTime(i64::MAX)));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(w.len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kernel::pack_key;
    use devtools::prop;
    use devtools::{prop_assert_eq, props};

    fn drain_both(
        wheel: &mut Wheel,
        reference: &mut BinaryHeap<Reverse<Entry>>,
        limit: SimTime,
    ) -> devtools::prop::PropResult {
        loop {
            let from_ref = match reference.peek() {
                Some(&Reverse(e)) if key_time(e.key) <= limit => {
                    reference.pop().map(|Reverse(e)| e)
                }
                _ => None,
            };
            let from_wheel = wheel.pop_before(limit);
            prop_assert_eq!(from_wheel, from_ref);
            if from_wheel.is_none() {
                return Ok(());
            }
        }
    }

    props! {
        /// Any randomized (time, order) schedule — spanning sub-tick ties,
        /// multi-level cascades and the overflow horizon — fires from the
        /// wheel in exactly the reference heap's sequence, across
        /// interleaved bounded pops.
        fn wheel_matches_heap_on_random_schedules(
            coarse in prop::vecs(prop::ints(0..20_000_000), 1..50),
            ties in prop::vecs(prop::ints(0..40), 0..30),
        ) {
            let mut wheel = Wheel::new();
            let mut reference = BinaryHeap::new();
            let mut seq = 0u64;
            let mut push = |wheel: &mut Wheel, reference: &mut BinaryHeap<_>, nanos: i64| {
                let e = Entry { key: pack_key(SimTime(nanos), seq), slot: seq as u32 };
                seq += 1;
                wheel.push(e);
                reference.push(Reverse(e));
            };
            // Coarse times stretched across every wheel level and past the
            // ~4.9 h horizon (20e6 × 1.1e6 ns ≈ 6.1 h).
            let mid = coarse.len() / 2;
            for &t in &coarse[..mid] {
                push(&mut wheel, &mut reference, t * 1_100_000);
            }
            // Bounded pop mid-stream: later pushes then land behind, at and
            // ahead of the advanced cursor.
            drain_both(&mut wheel, &mut reference, SimTime(3_000_000_000))?;
            for &t in &coarse[mid..] {
                push(&mut wheel, &mut reference, t * 1_100_000);
            }
            // Same-instant batches: many events in a handful of ticks.
            for &t in &ties {
                push(&mut wheel, &mut reference, 4_000_000_000 + t * 300_000);
            }
            drain_both(&mut wheel, &mut reference, SimTime(i64::MAX))?;
            prop_assert_eq!(wheel.len(), 0);
        }
    }
}
