//! Fleet-scale chaos orchestration: population-wide fault plans.
//!
//! [`crate::faults`] injects episodic faults into *one* client's
//! exchanges. This module generalizes the same declarative idea to the
//! 100k–1M-client fleet worlds of [`crate::fleet`]: a
//! [`FleetFaultPlan`] places correlated events on the true-time axis
//! over fault **domains** — contiguous client-id ranges (regions, which
//! shard-aligned ranges are a special case of) and server subsets:
//!
//! * **regional loss storms** — every packet to/from clients in a range
//!   faces an extra Bernoulli drop;
//! * **regional delay spikes** — extra one-way delay (asymmetric when
//!   the two directions differ) for a range;
//! * **server outages with scheduled restarts** — a server subset
//!   blackholes all traffic for the window, then *restarts* at window
//!   end (the fleet runner re-warms its rate table);
//! * **falseticker onset** — a pool member's reference clock steps at
//!   an instant (a good server going bad mid-run);
//! * **clock-step waves** — every client in a range steps its clock
//!   once at a per-client instant spread across the window (leap-smear
//!   gone wrong, a fleet-wide suspend/resume storm).
//!
//! # Determinism
//!
//! The fleet runner executes clients shard-parallel, so the injector
//! cannot own a sequential RNG stream the way [`crate::faults`] does —
//! draw order would depend on the shard and worker schedule. Instead
//! every probabilistic answer is a *pure function*: each window gets a
//! private lane seed forked from the plan seed at build time, and a
//! per-packet decision hashes (lane, client, instant, direction)
//! through the SplitMix64 finalizer. Any (shards, jobs) combination
//! therefore replays byte-identically — the same contract
//! `tests/parallel_equivalence.rs` pins for the fault-free fleet.
//!
//! One-shot events need latches, and those are split by ownership so no
//! cross-shard state exists: per-client wave latches live in a
//! [`ClientChaosLatch`] chunked per shard (like every other per-client
//! column), and per-server onset/restart latches live in a
//! [`ServerChaosLatch`] touched only from the runner's serial phase.

use clocksim::time::{SimDuration, SimTime};

use crate::faults::{clamp_window, ServerSet};

/// A contiguous client-id range `[lo, hi)` — the client-side fault
/// domain. Shard-aligned regions are ranges that happen to match shard
/// boundaries; nothing in the plan depends on the shard layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientRange {
    /// First client id in the domain (inclusive).
    pub lo: u32,
    /// One past the last client id (exclusive).
    pub hi: u32,
}

impl ClientRange {
    /// The range `[lo, hi)`; inverted input saturates to empty at `lo`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "client range ends before it starts");
        ClientRange { lo, hi: hi.max(lo) }
    }

    /// Every client in a fleet of `n`.
    pub fn all(n: u32) -> Self {
        ClientRange { lo: 0, hi: n }
    }

    /// True when `client` is in the domain.
    pub fn contains(&self, client: u32) -> bool {
        self.lo <= client && client < self.hi
    }

    /// Number of clients covered.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when the domain covers nobody.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }
}

/// The population-level fault taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosEvent {
    /// Extra Bernoulli loss, both directions, for clients in `region`.
    RegionalLossStorm {
        /// Affected clients.
        region: ClientRange,
        /// Per-packet drop probability while the storm is active.
        loss_prob: f64,
    },
    /// Extra one-way delay for clients in `region` while active.
    RegionalDelaySpike {
        /// Affected clients.
        region: ClientRange,
        /// Extra client→server delay, ms.
        extra_up_ms: f64,
        /// Extra server→client delay, ms.
        extra_down_ms: f64,
    },
    /// Blackhole: the servers drop all traffic for the window, then
    /// restart at window end (the runner re-warms their rate state via
    /// [`FleetFaultPlan::take_restarts`]).
    ServerOutage {
        /// Affected servers.
        servers: ServerSet,
    },
    /// Instant (fires at window start): `server`'s reference clock
    /// steps by `error_ms` — a pool member becomes a falseticker.
    FalsetickerOnset {
        /// The server that goes bad.
        server: usize,
        /// Size of the step, milliseconds (signed).
        error_ms: f64,
    },
    /// Every client in `region` steps its clock by `offset_ms` exactly
    /// once, at a per-client instant uniformly spread across the
    /// window (an instant window steps everyone at `start`).
    ClockStepWave {
        /// Affected clients.
        region: ClientRange,
        /// Size of the step applied to each client clock, ms (signed).
        offset_ms: f64,
    },
}

/// One scheduled population event over `[start_secs, end_secs)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosWindow {
    /// Window start (inclusive), seconds of true time.
    pub start_secs: f64,
    /// Window end (exclusive), seconds of true time.
    pub end_secs: f64,
    /// What happens during the window.
    pub event: ChaosEvent,
    /// Private lane seed for this window's probabilistic draws, forked
    /// from the plan seed at build time.
    lane: u64,
}

/// SplitMix64 finalizer — the same avalanche `clocksim::rng` builds
/// streams from, used here as a stateless hash so per-packet decisions
/// are pure functions of (lane, client, instant, direction).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash (lane, a, b) to a uniform draw in `[0, 1)`.
fn draw(lane: u64, a: u64, b: u64) -> f64 {
    let h = mix(lane ^ mix(a.wrapping_mul(0xA24B_AED4_963E_E407)) ^ mix(b.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Direction salt for per-packet keys.
const UP: u64 = 1;
/// Direction salt for per-packet keys.
const DOWN: u64 = 2;

/// A seed-deterministic population fault plan.
///
/// Build declaratively with [`FleetFaultPlan::window`] /
/// [`FleetFaultPlan::at`]; query statelessly from any shard. One-shot
/// events go through the latch types so they fire exactly once.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetFaultPlan {
    seed: u64,
    windows: Vec<ChaosWindow>,
}

impl FleetFaultPlan {
    /// An empty plan drawing its lanes from `seed`.
    pub fn new(seed: u64) -> Self {
        FleetFaultPlan { seed, windows: Vec::new() }
    }

    /// The empty, never-faulting plan (the identity injector).
    pub fn none() -> Self {
        FleetFaultPlan::new(0)
    }

    /// Add an event over `[start_secs, end_secs)` (builder). Inverted
    /// or negative ranges saturate onto the time axis exactly like
    /// [`crate::faults::FaultSchedule::window`].
    pub fn window(mut self, start_secs: f64, end_secs: f64, event: ChaosEvent) -> Self {
        let (start_secs, end_secs) = clamp_window(start_secs, end_secs);
        // Lane i depends only on (seed, i): plans replay identically
        // however the builder calls interleave with anything else.
        let i = self.windows.len() as u64;
        let lane = mix(self.seed ^ mix((i + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9)));
        self.windows.push(ChaosWindow { start_secs, end_secs, event, lane });
        self
    }

    /// Add an instant event at `at_secs` (builder).
    pub fn at(self, at_secs: f64, event: ChaosEvent) -> Self {
        self.window(at_secs, at_secs, event)
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows, in builder order.
    pub fn windows(&self) -> &[ChaosWindow] {
        &self.windows
    }

    fn active(w: &ChaosWindow, t: SimTime) -> bool {
        let s = t.as_secs_f64();
        w.start_secs <= s && s < w.end_secs
    }

    /// True when a client→server packet from `client` departing at `t`
    /// toward `server` is destroyed by an active storm or outage.
    /// Stateless: the answer depends only on the arguments and the
    /// plan, never on query order.
    pub fn drop_uplink(&self, client: u32, server: usize, t: SimTime) -> bool {
        self.drop_packet(client, server, t, UP)
    }

    /// True when a server→client reply toward `client` departing at
    /// `t` from `server` is destroyed.
    pub fn drop_downlink(&self, client: u32, server: usize, t: SimTime) -> bool {
        self.drop_packet(client, server, t, DOWN)
    }

    fn drop_packet(&self, client: u32, server: usize, t: SimTime, dir: u64) -> bool {
        for w in &self.windows {
            if !Self::active(w, t) {
                continue;
            }
            match w.event {
                ChaosEvent::ServerOutage { servers } if servers.contains(server) => {
                    return true;
                }
                ChaosEvent::RegionalLossStorm { region, loss_prob }
                    if region.contains(client) =>
                {
                    // One packet per (client, direction, instant): the
                    // key is unique per draw, so this is a faithful
                    // Bernoulli stream at any execution schedule.
                    let key = (t.as_nanos() as u64).wrapping_mul(4).wrapping_add(dir);
                    if draw(w.lane, u64::from(client), key) < loss_prob {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Extra client→server delay for `client` at `t` (sum of active
    /// regional spikes covering it).
    pub fn extra_delay_up(&self, client: u32, t: SimTime) -> SimDuration {
        self.sum_spikes(client, t, true)
    }

    /// Extra server→client delay for `client` at `t`.
    pub fn extra_delay_down(&self, client: u32, t: SimTime) -> SimDuration {
        self.sum_spikes(client, t, false)
    }

    fn sum_spikes(&self, client: u32, t: SimTime, up: bool) -> SimDuration {
        let mut ms = 0.0;
        for w in &self.windows {
            if let ChaosEvent::RegionalDelaySpike { region, extra_up_ms, extra_down_ms } = w.event
            {
                if Self::active(w, t) && region.contains(client) {
                    ms += if up { extra_up_ms } else { extra_down_ms };
                }
            }
        }
        SimDuration::from_millis_f64(ms)
    }

    /// True when `server` is blackholed at `t`.
    pub fn server_down(&self, server: usize, t: SimTime) -> bool {
        self.windows.iter().any(|w| {
            matches!(w.event, ChaosEvent::ServerOutage { servers } if servers.contains(server))
                && Self::active(w, t)
        })
    }

    /// True when any windowed fault is active at `t` (instant kinds and
    /// per-client wave events excluded) — lets evaluation code split
    /// statistics into during-fault and fault-free epochs.
    pub fn fault_active(&self, t: SimTime) -> bool {
        self.windows.iter().any(|w| {
            !matches!(
                w.event,
                ChaosEvent::FalsetickerOnset { .. } | ChaosEvent::ClockStepWave { .. }
            ) && Self::active(w, t)
        })
    }

    /// The instant at which window `w` steps `client`'s clock, if that
    /// window is a wave covering the client: `start` plus a per-client
    /// uniform fraction of the window. A pure function of (plan,
    /// client), so every shard layout computes the same wave.
    fn wave_instant(w: &ChaosWindow, client: u32) -> Option<f64> {
        match w.event {
            ChaosEvent::ClockStepWave { region, .. } if region.contains(client) => {
                let span = w.end_secs - w.start_secs;
                Some(w.start_secs + draw(w.lane, u64::from(client), 0) * span)
            }
            _ => None,
        }
    }

    /// Clock steps due for `client` by time `t`, each at most once per
    /// (window, client) — the latch rides in `latch` under the
    /// caller's local index (see [`ClientChaosLatch`]). Returns the
    /// summed step in milliseconds, `None` when nothing fired.
    pub fn take_client_steps(
        &self,
        latch: &mut ClientChaosLatch,
        local: usize,
        client: u32,
        t: SimTime,
    ) -> Option<f64> {
        if self.windows.is_empty() {
            return None;
        }
        let s = t.as_secs_f64();
        let mut total = 0.0;
        let mut any = false;
        for (i, w) in self.windows.iter().enumerate() {
            if let ChaosEvent::ClockStepWave { offset_ms, .. } = w.event {
                if Self::wave_instant(w, client).is_some_and(|at| at <= s)
                    && latch.test_and_set(local, i)
                {
                    total += offset_ms;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// Falseticker onsets due for `server` by time `t`, each at most
    /// once. Returns the summed clock step in milliseconds. Serial
    /// phase only — the latch is per-server global state.
    pub fn take_falseticker_onsets(
        &self,
        latch: &mut ServerChaosLatch,
        server: usize,
        t: SimTime,
    ) -> Option<f64> {
        let s = t.as_secs_f64();
        let mut total = 0.0;
        let mut any = false;
        for (i, w) in self.windows.iter().enumerate() {
            if let ChaosEvent::FalsetickerOnset { server: sv, error_ms } = w.event {
                if sv == server && w.start_secs <= s && latch.test_and_set(i) {
                    total += error_ms;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// True when an outage covering `server` has *ended* by `t` and its
    /// scheduled restart has not fired yet (each restart fires once).
    /// The runner reacts by restarting the server model — re-warming
    /// rate state so recovering clients are not mass-RATEd.
    pub fn take_restarts(&self, latch: &mut ServerChaosLatch, server: usize, t: SimTime) -> bool {
        let s = t.as_secs_f64();
        let mut restarted = false;
        for (i, w) in self.windows.iter().enumerate() {
            if let ChaosEvent::ServerOutage { servers } = w.event {
                if servers.contains(server) && w.end_secs <= s && latch.test_and_set(i) {
                    restarted = true;
                }
            }
        }
        restarted
    }
}

/// Per-client one-shot latches for wave events, one bit per (client,
/// window). Chunked per shard exactly like every other per-client
/// column: each shard owns the latch rows for its contiguous id range,
/// so no shared mutable state exists and the wave replays identically
/// at any (shards, jobs).
#[derive(Clone, Debug, Default)]
pub struct ClientChaosLatch {
    words_per_client: usize,
    bits: Vec<u64>,
}

impl ClientChaosLatch {
    /// Latch storage for `clients` local rows under `plan`.
    pub fn new(plan: &FleetFaultPlan, clients: usize) -> Self {
        let words_per_client = plan.windows.len().div_ceil(64);
        ClientChaosLatch { words_per_client, bits: vec![0; words_per_client * clients] }
    }

    /// Set bit `window` for local row `local`; true when newly set.
    fn test_and_set(&mut self, local: usize, window: usize) -> bool {
        let slot = local * self.words_per_client + window / 64;
        let mask = 1u64 << (window % 64);
        match self.bits.get_mut(slot) {
            Some(word) if *word & mask == 0 => {
                *word |= mask;
                true
            }
            _ => false,
        }
    }
}

/// One-shot latches for per-server events (falseticker onsets, outage
/// restarts), one bit per window. Owned by the runner and touched only
/// from its serial server phase.
#[derive(Clone, Debug, Default)]
pub struct ServerChaosLatch {
    fired: Vec<bool>,
}

impl ServerChaosLatch {
    /// Latch storage for `plan`'s windows.
    pub fn new(plan: &FleetFaultPlan) -> Self {
        ServerChaosLatch { fired: vec![false; plan.windows.len()] }
    }

    fn test_and_set(&mut self, window: usize) -> bool {
        match self.fired.get_mut(window) {
            Some(f) if !*f => {
                *f = true;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FleetFaultPlan::none();
        let mut latch = ClientChaosLatch::new(&plan, 4);
        let mut slatch = ServerChaosLatch::new(&plan);
        for i in 0..50 {
            assert!(!plan.drop_uplink(i, 0, t(i as f64)));
            assert!(!plan.drop_downlink(i, 0, t(i as f64)));
        }
        assert_eq!(plan.extra_delay_up(0, t(5.0)), SimDuration::ZERO);
        assert!(!plan.server_down(0, t(5.0)));
        assert!(!plan.fault_active(t(5.0)));
        assert_eq!(plan.take_client_steps(&mut latch, 0, 0, t(1e6)), None);
        assert_eq!(plan.take_falseticker_onsets(&mut slatch, 0, t(1e6)), None);
        assert!(!plan.take_restarts(&mut slatch, 0, t(1e6)));
    }

    #[test]
    fn outage_blackholes_domain_servers_inside_window() {
        let plan = FleetFaultPlan::new(1).window(
            100.0,
            200.0,
            ChaosEvent::ServerOutage { servers: ServerSet::One(2) },
        );
        assert!(!plan.drop_uplink(0, 2, t(99.0)));
        assert!(plan.drop_uplink(0, 2, t(100.0)));
        assert!(plan.drop_downlink(7, 2, t(199.0)));
        assert!(!plan.drop_uplink(0, 2, t(200.0)));
        assert!(!plan.drop_uplink(0, 1, t(150.0)));
        assert!(plan.server_down(2, t(150.0)));
        assert!(!plan.server_down(1, t(150.0)));
    }

    #[test]
    fn regional_storm_spares_other_regions_and_matches_rate() {
        let region = ClientRange::new(100, 200);
        let plan = FleetFaultPlan::new(2).window(
            0.0,
            1e9,
            ChaosEvent::RegionalLossStorm { region, loss_prob: 0.35 },
        );
        // Outside the domain: untouched.
        for i in 0..100 {
            assert!(!plan.drop_uplink(99, 0, t(i as f64)));
            assert!(!plan.drop_uplink(200, 0, t(i as f64)));
        }
        // Inside: drops at roughly the configured rate.
        let n = 20_000;
        let dropped = (0..n)
            .filter(|i| plan.drop_uplink(150, 0, t(*i as f64)))
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn queries_are_stateless_and_order_independent() {
        let mk = || {
            FleetFaultPlan::new(42)
                .window(
                    0.0,
                    500.0,
                    ChaosEvent::RegionalLossStorm {
                        region: ClientRange::all(1000),
                        loss_prob: 0.3,
                    },
                )
                .window(
                    100.0,
                    300.0,
                    ChaosEvent::RegionalDelaySpike {
                        region: ClientRange::new(0, 500),
                        extra_up_ms: 5.0,
                        extra_down_ms: 40.0,
                    },
                )
        };
        let a = mk();
        let b = mk();
        // Forward on one plan, backward on the clone: identical fates —
        // the whole point of stateless draws.
        let fwd: Vec<bool> =
            (0..2000).map(|i| a.drop_uplink(i % 1000, 0, t((i / 2) as f64))).collect();
        let mut bwd: Vec<bool> =
            (0..2000).rev().map(|i| b.drop_uplink(i % 1000, 0, t((i / 2) as f64))).collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
        // A different seed gives a different stream.
        let c = FleetFaultPlan::new(43).window(
            0.0,
            500.0,
            ChaosEvent::RegionalLossStorm { region: ClientRange::all(1000), loss_prob: 0.3 },
        );
        let other: Vec<bool> =
            (0..2000).map(|i| c.drop_uplink(i % 1000, 0, t((i / 2) as f64))).collect();
        assert_ne!(fwd, other);
    }

    #[test]
    fn regional_spike_sums_and_respects_direction() {
        let plan = FleetFaultPlan::new(3)
            .window(
                10.0,
                20.0,
                ChaosEvent::RegionalDelaySpike {
                    region: ClientRange::new(0, 10),
                    extra_up_ms: 5.0,
                    extra_down_ms: 80.0,
                },
            )
            .window(
                15.0,
                25.0,
                ChaosEvent::RegionalDelaySpike {
                    region: ClientRange::new(5, 15),
                    extra_up_ms: 1.0,
                    extra_down_ms: 2.0,
                },
            );
        assert_eq!(plan.extra_delay_up(3, t(12.0)), SimDuration::from_millis(5));
        assert_eq!(plan.extra_delay_down(3, t(12.0)), SimDuration::from_millis(80));
        // Client 7 is in both domains at t=16.
        assert_eq!(plan.extra_delay_up(7, t(16.0)), SimDuration::from_millis(6));
        // Client 12 only in the second.
        assert_eq!(plan.extra_delay_up(12, t(16.0)), SimDuration::from_millis(1));
        assert_eq!(plan.extra_delay_up(3, t(30.0)), SimDuration::ZERO);
    }

    #[test]
    fn falseticker_onset_fires_once_per_server() {
        let plan = FleetFaultPlan::new(4)
            .at(100.0, ChaosEvent::FalsetickerOnset { server: 2, error_ms: 120.0 })
            .at(150.0, ChaosEvent::FalsetickerOnset { server: 2, error_ms: -20.0 });
        let mut latch = ServerChaosLatch::new(&plan);
        assert_eq!(plan.take_falseticker_onsets(&mut latch, 2, t(99.0)), None);
        assert_eq!(plan.take_falseticker_onsets(&mut latch, 2, t(100.0)), Some(120.0));
        assert_eq!(plan.take_falseticker_onsets(&mut latch, 2, t(120.0)), None);
        // Both due when the query jumps past them; summed, once.
        assert_eq!(plan.take_falseticker_onsets(&mut latch, 2, t(200.0)), Some(-20.0));
        assert_eq!(plan.take_falseticker_onsets(&mut latch, 3, t(200.0)), None);
    }

    #[test]
    fn restart_fires_once_after_outage_ends() {
        let plan = FleetFaultPlan::new(5).window(
            100.0,
            200.0,
            ChaosEvent::ServerOutage { servers: ServerSet::One(1) },
        );
        let mut latch = ServerChaosLatch::new(&plan);
        assert!(!plan.take_restarts(&mut latch, 1, t(150.0)));
        assert!(!plan.take_restarts(&mut latch, 0, t(250.0)));
        assert!(plan.take_restarts(&mut latch, 1, t(200.0)));
        assert!(!plan.take_restarts(&mut latch, 1, t(300.0)));
    }

    #[test]
    fn wave_steps_each_client_once_inside_window() {
        let region = ClientRange::new(0, 64);
        let plan = FleetFaultPlan::new(6).window(
            100.0,
            160.0,
            ChaosEvent::ClockStepWave { region, offset_ms: -250.0 },
        );
        let mut latch = ClientChaosLatch::new(&plan, 64);
        // Nobody fires before the window.
        for c in 0..64 {
            assert_eq!(plan.take_client_steps(&mut latch, c as usize, c, t(99.9)), None);
        }
        // By window end everyone fired exactly once; instants spread.
        let mut fired_at = Vec::new();
        for step in 0..=600 {
            let now = t(100.0 + step as f64 * 0.1);
            for c in 0..64u32 {
                if plan.take_client_steps(&mut latch, c as usize, c, now) == Some(-250.0) {
                    fired_at.push((c, step));
                }
            }
        }
        assert_eq!(fired_at.len(), 64, "every domain client steps exactly once");
        let first = fired_at.iter().map(|(_, s)| *s).min().unwrap_or(0);
        let last = fired_at.iter().map(|(_, s)| *s).max().unwrap_or(0);
        assert!(last > first + 100, "wave is spread across the window, not a spike");
        // Nothing refires afterwards.
        for c in 0..64 {
            assert_eq!(plan.take_client_steps(&mut latch, c as usize, c, t(1e6)), None);
        }
        // Clients outside the domain never fire.
        let mut latch2 = ClientChaosLatch::new(&plan, 1);
        assert_eq!(plan.take_client_steps(&mut latch2, 0, 64, t(1e6)), None);
    }

    #[test]
    fn wave_instants_independent_of_latch_layout() {
        // The same wave, latched in two chunks vs one: the per-client
        // step instants are a pure function of (plan, client id), so a
        // sharded runner computes the identical wave.
        let region = ClientRange::new(0, 32);
        let plan = FleetFaultPlan::new(7).window(
            10.0,
            50.0,
            ChaosEvent::ClockStepWave { region, offset_ms: 100.0 },
        );
        let fire_step = |latch: &mut ClientChaosLatch, local: usize, client: u32| {
            (0..4000)
                .find(|s| {
                    plan.take_client_steps(latch, local, client, t(*s as f64 * 0.01)).is_some()
                })
                .unwrap_or(usize::MAX)
        };
        let mut whole = ClientChaosLatch::new(&plan, 32);
        let whole_steps: Vec<usize> =
            (0..32u32).map(|c| fire_step(&mut whole, c as usize, c)).collect();
        let mut lo = ClientChaosLatch::new(&plan, 16);
        let mut hi = ClientChaosLatch::new(&plan, 16);
        let split_steps: Vec<usize> = (0..32u32)
            .map(|c| {
                if c < 16 {
                    fire_step(&mut lo, c as usize, c)
                } else {
                    fire_step(&mut hi, (c - 16) as usize, c)
                }
            })
            .collect();
        assert_eq!(whole_steps, split_steps);
    }

    #[test]
    fn inverted_and_negative_windows_saturate() {
        let plan = FleetFaultPlan::new(8).window(
            -30.0,
            10.0,
            ChaosEvent::ServerOutage { servers: ServerSet::All },
        );
        assert_eq!(plan.windows()[0].start_secs, 0.0);
        assert!(plan.server_down(0, t(0.0)));
        assert!(!plan.server_down(0, t(10.0)));
    }

    #[test]
    fn instant_wave_steps_everyone_at_start() {
        let plan = FleetFaultPlan::new(9)
            .at(42.0, ChaosEvent::ClockStepWave { region: ClientRange::all(8), offset_ms: 7.0 });
        let mut latch = ClientChaosLatch::new(&plan, 8);
        for c in 0..8u32 {
            assert_eq!(plan.take_client_steps(&mut latch, c as usize, c, t(41.99)), None);
        }
        for c in 0..8u32 {
            assert_eq!(plan.take_client_steps(&mut latch, c as usize, c, t(42.0)), Some(7.0));
        }
    }
}
