//! Figure 4: SNTP clock offsets in wired vs wireless environments, with
//! (left) and without (right) NTP clock correction.
//!
//! Paper shape targets: wireless+corrected μ≈31 ms σ≈47 ms with spikes
//! to ≈600 ms; wireless+uncorrected μ≈118 ms σ≈133 ms with spikes past
//! a second; wired+corrected μ≈4 ms σ≈7 ms; wired+uncorrected a steady
//! temperature-dependent drift.

use clocksim::stats::Summary;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::harness::{default_pool, sntp_run, ClockMode, SntpRun};
use crate::render;

/// One of the four experimental arms.
#[derive(Clone, Debug)]
pub struct Fig4Arm {
    /// Arm label.
    pub label: &'static str,
    /// The run.
    pub run: SntpRun,
    /// Summary of |offset| in ms.
    pub abs_summary: Summary,
    /// Summary of signed offsets in ms.
    pub signed_summary: Summary,
}

/// All four arms.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// wired+corrected, wired+free, wireless+corrected, wireless+free.
    pub arms: Vec<Fig4Arm>,
}

fn arm(label: &'static str, wireless: bool, mode: ClockMode, seed: u64, duration: u64) -> Fig4Arm {
    let mut tb = if wireless {
        Testbed::wireless(TestbedConfig::default(), seed)
    } else {
        Testbed::wired(seed)
    };
    let mut pool = default_pool(seed + 1000);
    let mut clock = mode.build(seed + 2000);
    let run = sntp_run(&mut tb, &mut pool, &mut clock, duration, 5.0);
    let abs = run.abs_offsets();
    let signed: Vec<f64> = run.offsets.iter().map(|(_, o)| *o).collect();
    Fig4Arm { label, abs_summary: Summary::of(&abs), signed_summary: Summary::of(&signed), run }
}

/// Run all four arms for `duration` seconds (paper: one hour).
pub fn run(seed: u64, duration: u64) -> Fig4Result {
    Fig4Result {
        arms: vec![
            arm("wired + NTP-corrected", false, ClockMode::NtpCorrected, seed, duration),
            arm("wired + free-running", false, ClockMode::free_running_default(), seed + 1, duration),
            arm("wireless + NTP-corrected", true, ClockMode::NtpCorrected, seed + 2, duration),
            arm(
                "wireless + free-running",
                true,
                ClockMode::free_running_default(),
                seed + 3,
                duration,
            ),
        ],
    }
}

/// Render the four arms' statistics and the wireless scatter.
pub fn render(r: &Fig4Result) -> String {
    let mut out = String::from(
        "Figure 4 — SNTP offsets, wired vs wireless, ± NTP clock correction\n\
         (paper: wireless+corr μ=31 σ=47; wireless+free μ=118 σ=133; wired+corr μ=4 σ=7)\n\n",
    );
    let rows: Vec<Vec<String>> = r
        .arms
        .iter()
        .map(|a| {
            vec![
                a.label.to_string(),
                a.run.offsets.len().to_string(),
                a.run.losses.to_string(),
                render::f1(a.abs_summary.mean),
                render::f1(a.signed_summary.std),
                render::f1(a.abs_summary.max),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["arm", "samples", "losses", "mean|offset|", "std", "max|offset|"],
        &rows,
    ));
    let wireless = &r.arms[2].run;
    out.push('\n');
    out.push_str(&render::scatter(
        "wireless + NTP-corrected offsets over time (ms)",
        &[("sntp offset", 'o', &wireless.offsets)],
        72,
        16,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let r = run(11, 3600);
        let wired_corr = &r.arms[0];
        let wired_free = &r.arms[1];
        let wl_corr = &r.arms[2];
        let wl_free = &r.arms[3];

        // Wired corrected: single-digit mean, tight.
        assert!(wired_corr.abs_summary.mean < 12.0, "{}", wired_corr.abs_summary.mean);
        // Wireless corrected: an order of magnitude worse.
        assert!(
            wl_corr.abs_summary.mean > 3.0 * wired_corr.abs_summary.mean,
            "wl {} vs wired {}",
            wl_corr.abs_summary.mean,
            wired_corr.abs_summary.mean
        );
        assert!(wl_corr.abs_summary.max > 200.0, "spikes: {}", wl_corr.abs_summary.max);
        // Uncorrected wireless is worse still (drift adds in).
        assert!(wl_free.abs_summary.mean > wl_corr.abs_summary.mean);
        // Wired free-running shows steady drift: late |offsets| exceed
        // early ones.
        let early: Vec<f64> = wired_free
            .run
            .offsets
            .iter()
            .filter(|(t, _)| *t < 600.0)
            .map(|(_, o)| o.abs())
            .collect();
        let late: Vec<f64> = wired_free
            .run
            .offsets
            .iter()
            .filter(|(t, _)| *t > 3000.0)
            .map(|(_, o)| o.abs())
            .collect();
        assert!(
            clocksim::stats::median(&late) > clocksim::stats::median(&early) + 40.0,
            "early {} late {}",
            clocksim::stats::median(&early),
            clocksim::stats::median(&late)
        );
    }

    #[test]
    fn wireless_loses_packets_wired_mostly_does_not() {
        let r = run(12, 1200);
        // Wired still crosses the backbone (~0.2% loss per leg).
        assert!(r.arms[0].run.losses < 10, "wired losses {}", r.arms[0].run.losses);
        assert!(r.arms[2].run.losses > r.arms[0].run.losses * 2);
    }

    #[test]
    fn render_has_all_arms() {
        let r = run(13, 600);
        let s = render(&r);
        for label in ["wired + NTP-corrected", "wireless + free-running"] {
            assert!(s.contains(label));
        }
    }
}
