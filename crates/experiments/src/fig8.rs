//! Figure 8: SNTP vs MNTP on wireless **without** NTP clock correction
//! — the clock free-runs, so both clients see the drift trend plus path
//! noise.
//!
//! Paper: SNTP offsets reach 450 ms; MNTP's offsets hug the fitted
//! drift trend with a maximum of 24 ms and an average within 4.5 ms of
//! the reference — "17 times more accurate than standard SNTP".

use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::fig6::{render_with, summarize, HeadToHead};
use crate::harness::{default_pool, paired_run, ClockMode};

/// Run the Figure 8 configuration.
pub fn run(seed: u64, duration: u64) -> HeadToHead {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let cfg = MntpConfig::baseline(5.0);
    let run = paired_run(&mut tb, None, &mut pool, &mut clock, duration, 5.0, &cfg);
    summarize(run)
}

/// Run one trial per seed over the pool; bit-identical to serial
/// [`run`] calls in seed order (each trial owns its RNG streams).
pub fn run_seeds(pool: &devtools::par::Pool, seeds: &[u64], duration: u64) -> Vec<HeadToHead> {
    pool.map(seeds.to_vec(), |seed| run(seed, duration))
}

/// Render.
pub fn render(r: &HeadToHead) -> String {
    let mut s = render_with(
        r,
        "Figure 8 — SNTP vs MNTP on wireless, free-running clock",
        "(paper: SNTP max 450 ms; MNTP max 24 ms, mean within 4.5 ms of trend; ≈17x)",
    );
    // The trend-residual view: corrected offsets should sit within a few
    // ms even though raw offsets drift.
    let corrected = r.run.mntp_corrected();
    if !corrected.is_empty() {
        let abs: Vec<f64> = corrected.iter().map(|c| c.abs()).collect();
        s.push_str(&format!(
            "trend residuals: mean|r|={:.2} ms, max|r|={:.2} ms over {} samples\n",
            clocksim::stats::mean(&abs),
            abs.iter().cloned().fold(0.0, f64::max),
            abs.len()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mntp_tracks_the_drift_trend() {
        let r = run(51, 3600);
        // Raw MNTP offsets drift with the clock, so compare *residuals*
        // to the trend — the paper's "always close to the fitted trend
        // line".
        let corrected = r.run.mntp_corrected();
        assert!(corrected.len() > 20);
        let abs: Vec<f64> = corrected.iter().map(|c| c.abs()).collect();
        let mean = clocksim::stats::mean(&abs);
        assert!(mean < 8.0, "mean residual {mean}");
    }

    #[test]
    fn sntp_spikes_dwarf_mntp_residuals() {
        let pool = devtools::par::Pool::from_env();
        let mut ratios = Vec::new();
        for r in run_seeds(&pool, &[52, 53], 3600) {
            let corrected = r.run.mntp_corrected();
            let max_resid = corrected.iter().map(|c| c.abs()).fold(0.0, f64::max);
            let sntp_max = r.sntp_abs.max;
            ratios.push(sntp_max / max_resid.max(1.0));
        }
        let mean_ratio = clocksim::stats::mean(&ratios);
        assert!(mean_ratio > 5.0, "ratio {mean_ratio} ({ratios:?})");
    }

    #[test]
    fn raw_offsets_show_the_drift() {
        let r = run(54, 3600);
        // Free-running at ~30 ppm: accepted offsets near the end differ
        // from those at the start by ≈ the accumulated drift.
        let accepted: Vec<(f64, f64)> = r
            .run
            .mntp_events
            .iter()
            .filter_map(|(t, _, e)| match e {
                crate::harness::MntpEvent::Accepted { offset_ms, .. } => Some((*t, *offset_ms)),
                _ => None,
            })
            .collect();
        let early: Vec<f64> =
            accepted.iter().filter(|(t, _)| *t < 900.0).map(|(_, o)| *o).collect();
        let late: Vec<f64> =
            accepted.iter().filter(|(t, _)| *t > 2700.0).map(|(_, o)| *o).collect();
        assert!(!early.is_empty() && !late.is_empty());
        let drift = clocksim::stats::mean(&late) - clocksim::stats::mean(&early);
        assert!(drift.abs() > 40.0, "visible drift expected, got {drift}");
    }
}
