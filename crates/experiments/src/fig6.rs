//! Figure 6: reported SNTP vs MNTP offsets on a wireless network with
//! NTP clock correction — the headline head-to-head.
//!
//! Paper: SNTP offsets reach 292 ms; MNTP's maximum is 23 ms — "a
//! 12-fold improvement over standard SNTP on a wireless network with
//! lossy conditions", with every outlier discarded by MNTP's filter.

use clocksim::stats::Summary;
use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::harness::{default_pool, paired_run, ClockMode, PairedRun};
use crate::render;

/// The reproduced Figure 6 (also reused by Figures 7/8/12 variants).
#[derive(Clone, Debug)]
pub struct HeadToHead {
    /// The paired run.
    pub run: PairedRun,
    /// Summary of |SNTP offset|.
    pub sntp_abs: Summary,
    /// Summary of |accepted MNTP offset|.
    pub mntp_abs: Summary,
}

impl HeadToHead {
    /// The paper's headline ratio: max |SNTP| / max |MNTP accepted|.
    pub fn improvement_factor(&self) -> f64 {
        if self.mntp_abs.max_abs() == 0.0 {
            return f64::INFINITY;
        }
        self.sntp_abs.max_abs() / self.mntp_abs.max_abs()
    }
}

/// Run the Figure 6 configuration: wireless, NTP-corrected clock, both
/// clients polling every 5 s for `duration` (paper: one hour).
pub fn run(seed: u64, duration: u64) -> HeadToHead {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::NtpCorrected.build(seed + 2);
    let cfg = MntpConfig::baseline(5.0);
    let run = paired_run(&mut tb, None, &mut pool, &mut clock, duration, 5.0, &cfg);
    summarize(run)
}

/// Run one trial per seed, fanned out over the work-stealing pool. Each
/// trial owns its `SimRng` streams, so the returned vector is
/// bit-identical to running [`run`] serially per seed, in seed order.
pub fn run_seeds(pool: &devtools::par::Pool, seeds: &[u64], duration: u64) -> Vec<HeadToHead> {
    pool.map(seeds.to_vec(), |seed| run(seed, duration))
}

/// Build the summaries.
pub fn summarize(run: PairedRun) -> HeadToHead {
    let sntp_abs = Summary::of(&run.sntp_abs());
    let mntp: Vec<f64> = run.mntp_accepted().iter().map(|o| o.abs()).collect();
    HeadToHead { sntp_abs, mntp_abs: Summary::of(&mntp), run }
}

/// Render.
pub fn render_with(r: &HeadToHead, title: &str, paper_note: &str) -> String {
    let mut out = format!("{title}\n{paper_note}\n\n");
    out.push_str(&format!(
        "SNTP:  n={} max|o|={:.0} ms mean|o|={:.1} ms ({} losses)\n",
        r.sntp_abs.n,
        r.sntp_abs.max,
        r.sntp_abs.mean,
        r.run.sntp_losses
    ));
    out.push_str(&format!(
        "MNTP:  accepted={} rejected={} deferred={} max|o|={:.0} ms mean|o|={:.1} ms\n",
        r.mntp_abs.n,
        r.run.mntp_rejected().len(),
        r.run.mntp_deferrals(),
        r.mntp_abs.max,
        r.mntp_abs.mean
    ));
    out.push_str(&format!("improvement (max|SNTP| / max|MNTP|): {:.1}x\n\n", r.improvement_factor()));
    let accepted: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, _, e)| match e {
            crate::harness::MntpEvent::Accepted { offset_ms, .. } => Some((*t, *offset_ms)),
            _ => None,
        })
        .collect();
    let rejected: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, _, e)| match e {
            crate::harness::MntpEvent::Rejected { offset_ms } => Some((*t, *offset_ms)),
            _ => None,
        })
        .collect();
    out.push_str(&render::scatter(
        "offsets over time (ms)",
        &[
            ("sntp", '.', &r.run.sntp_offsets),
            ("mntp accepted", 'A', &accepted),
            ("mntp rejected", 'x', &rejected),
        ],
        72,
        16,
    ));
    out
}

/// Default rendering for Figure 6.
pub fn render(r: &HeadToHead) -> String {
    render_with(
        r,
        "Figure 6 — SNTP vs MNTP on wireless, NTP-corrected clock",
        "(paper: SNTP max 292 ms; MNTP max 23 ms; ≈12x)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mntp_beats_sntp_by_paper_margin() {
        // Average over seeds: the paper reports one run; we check the
        // shape holds across several. The multi-seed fan-out runs the
        // trials through the pool.
        let pool = devtools::par::Pool::from_env();
        let mut factors = Vec::new();
        for r in run_seeds(&pool, &[31, 32, 33], 3600) {
            assert!(r.mntp_abs.n >= 20, "accepted {}", r.mntp_abs.n);
            assert!(r.mntp_abs.max < 80.0, "MNTP max {}", r.mntp_abs.max);
            assert!(r.sntp_abs.max > 150.0, "SNTP max {}", r.sntp_abs.max);
            factors.push(r.improvement_factor());
        }
        let mean_factor = clocksim::stats::mean(&factors);
        assert!(mean_factor > 5.0, "mean improvement {mean_factor} ({factors:?})");
    }

    #[test]
    fn outliers_are_rejected_not_accepted() {
        let r = run(34, 3600);
        let rejected = r.run.mntp_rejected();
        assert!(!rejected.is_empty(), "channel spikes must trip the filter");
        // Rejections should on average sit much farther from zero than
        // acceptances (on a corrected clock the trend is near zero).
        let mean_rej =
            clocksim::stats::mean(&rejected.iter().map(|o| o.abs()).collect::<Vec<_>>());
        assert!(
            mean_rej > r.mntp_abs.mean * 2.0,
            "rej mean {mean_rej} vs accepted mean {}",
            r.mntp_abs.mean
        );
    }

    #[test]
    fn gate_defers_during_bad_channel() {
        let r = run(35, 1800);
        assert!(r.run.mntp_deferrals() > 50, "deferrals {}", r.run.mntp_deferrals());
    }
}
