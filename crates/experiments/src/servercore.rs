//! Server-core ingest: fleet-shaped traffic through the batched engine.
//!
//! The fleet sweep measures what a population of clients *experiences*;
//! this harness measures what the server-side ingest path *survives*. A
//! deterministic traffic generator replays the arrival process the
//! paper's production logs exhibit — a Poisson base load from compliant
//! pollers, herding bursts when poll schedules align at period
//! boundaries, a small abusive subpopulation polling far too fast, and a
//! trickle of malformed datagrams — straight into
//! [`sntp::server_core::ServerCore`] as raw bytes, batch by batch.
//!
//! Every batch is pushed through **two** engines in lockstep: a serial
//! single-shard reference and the sharded engine running on the given
//! pool. The artifact records whether their reply streams stayed
//! byte-identical for the whole run (the deterministic scale-out
//! contract, here checked over ~10^6 realistic packets rather than the
//! property tests' small streams) plus the traffic shape and fate
//! counts. Nothing in the output depends on wall clock or worker count.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};
use devtools::par::Pool;
use ntp_wire::{refid::RefId, sntp_profile, NtpDuration, NtpPacket};
use sntp::server_core::{CoreConfig, CoreStats, ReplyRing, RequestRing, ServerCore};

/// Traffic shape for one run. All rates are per the whole fleet.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Fleet size (distinct client keys).
    pub clients: usize,
    /// Abusive clients per mille of the fleet (they poll at
    /// [`TrafficConfig::abusive_poll_secs`] and eat RATE kisses).
    pub abusive_per_mille: u32,
    /// Simulated seconds of traffic.
    pub duration_secs: u64,
    /// Mean poll interval of compliant clients, seconds.
    pub mean_poll_secs: f64,
    /// Mean poll interval of the abusive subpopulation, seconds.
    pub abusive_poll_secs: f64,
    /// Herding bursts fire every this many seconds…
    pub herd_period_secs: u64,
    /// …re-polling this fraction of the fleet within ~200 ms.
    pub herd_fraction: f64,
    /// Malformed datagrams per mille of arrivals.
    pub malformed_per_mille: u32,
    /// ntpd-shaped (non-SNTP) requests per mille of well-formed arrivals.
    pub ntpd_per_mille: u32,
    /// Request-ring capacity: the engine's batch size.
    pub batch: usize,
}

impl TrafficConfig {
    /// The sweep shape used by the committed artifact.
    pub fn for_scale(quick: bool) -> Self {
        TrafficConfig {
            clients: if quick { 20_000 } else { 200_000 },
            abusive_per_mille: 10,
            duration_secs: if quick { 60 } else { 240 },
            mean_poll_secs: 64.0,
            abusive_poll_secs: 2.0,
            herd_period_secs: 32,
            herd_fraction: 0.10,
            malformed_per_mille: 5,
            ntpd_per_mille: 200,
            batch: 4096,
        }
    }
}

/// Everything the servercore artifact reports.
#[derive(Clone, Debug)]
pub struct ServercoreResult {
    /// The traffic shape that was replayed.
    pub cfg: TrafficConfig,
    /// Total datagrams generated.
    pub arrivals: u64,
    /// Batches pushed through the engines.
    pub batches: u64,
    /// Busiest one-second bucket, arrivals.
    pub peak_per_sec: u64,
    /// Mean arrivals per one-second bucket.
    pub mean_per_sec: f64,
    /// Request bytes ingested (== reply bytes emitted per engine).
    pub bytes_in: u64,
    /// Fate counters from the sharded engine.
    pub stats: CoreStats,
    /// Distinct clients in the sharded engine's rate tables at the end.
    pub clients_tracked: usize,
    /// Whether the sharded reply stream matched the serial reference on
    /// every batch (bytes and fates).
    pub sharded_matches_serial: bool,
}

/// Shard count of the scaled engine. Fixed so the artifact never depends
/// on the machine (the reply stream is invariant anyway; the stats line
/// naming it should be too).
const SHARDS: usize = 8;

/// Poisson sample. Knuth's product method for small means, a rounded
/// normal approximation above it — both consume a deterministic number
/// of RNG draws per call path, and the switchover is a fixed constant,
/// so the stream is reproducible.
fn poisson(rng: &mut SimRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product = rng.uniform();
        let mut count = 0u64;
        while product > limit {
            product *= rng.uniform();
            count += 1;
        }
        count
    } else {
        (mean + mean.sqrt() * rng.gauss()).round().max(0.0) as u64
    }
}

/// One generated datagram before serialization: offset within its
/// one-second bucket, a stable sequence tiebreak, the client key, and a
/// wire-shape selector.
struct Draft {
    offset_ns: i64,
    seq: u32,
    client: u64,
    shape: u32,
}

/// Materialize a draft's wire bytes at its absolute arrival time.
/// Shapes: 0 = truncated garbage, 1 = all-zero (version 0), 2 =
/// ntpd-style poller, otherwise an RFC 4330 SNTP request.
fn wire_bytes(shape: u32, at: SimTime) -> Vec<u8> {
    let tx = at.to_ntp();
    match shape {
        0 => vec![0xA5; 17],
        1 => vec![0u8; 48],
        2 => NtpPacket { poll: 6, precision: -20, ..sntp_profile::client_request(tx) }.serialize(),
        _ => sntp_profile::client_request(tx).serialize(),
    }
}

/// Pick a wire-shape selector for one arrival.
fn draw_shape(rng: &mut SimRng, cfg: &TrafficConfig) -> u32 {
    if rng.below(1000) < cfg.malformed_per_mille as u64 {
        // Alternate the two malformed flavors.
        if rng.chance(0.5) {
            0
        } else {
            1
        }
    } else if rng.below(1000) < cfg.ntpd_per_mille as u64 {
        2
    } else {
        3
    }
}

/// Flush one full (or final partial) batch through both engines,
/// folding the comparison into `all_equal`.
fn flush(
    reqs: &mut RequestRing,
    serial: &mut ServerCore,
    sharded: &mut ServerCore,
    pool: &Pool,
    out_serial: &mut ReplyRing,
    out_sharded: &mut ReplyRing,
    batches: &mut u64,
    all_equal: &mut bool,
) {
    if reqs.is_empty() {
        return;
    }
    serial.process_batch(reqs, out_serial);
    sharded.process_batch_on(reqs, out_sharded, pool);
    *all_equal &= out_serial.as_bytes() == out_sharded.as_bytes()
        && out_serial.fates() == out_sharded.fates();
    *batches += 1;
    reqs.clear();
}

/// Generate the traffic and run it through the serial and sharded
/// engines in lockstep. Deterministic in `seed`; independent of `pool`.
pub fn run_on(pool: &Pool, seed: u64, quick: bool) -> ServercoreResult {
    let cfg = TrafficConfig::for_scale(quick);
    run_traffic_on(pool, seed, cfg)
}

/// [`run_on`] with an explicit traffic shape (tests use small fleets).
pub fn run_traffic_on(pool: &Pool, seed: u64, cfg: TrafficConfig) -> ServercoreResult {
    let mut rng = SimRng::new(seed ^ 0x5EC0_4E00);
    let abusive = cfg.clients * cfg.abusive_per_mille as usize / 1000;
    let compliant = cfg.clients - abusive;
    let base_rate = compliant as f64 / cfg.mean_poll_secs;
    let abusive_rate = abusive as f64 / cfg.abusive_poll_secs;

    let core_cfg = |shards: usize| CoreConfig {
        stratum: 2,
        refid: RefId::ipv4(192, 0, 2, 1),
        clock_error: NtpDuration::from_millis(3),
        min_poll_interval: Some(SimDuration::from_secs(4)),
        table_capacity: cfg.clients.max(16),
        shards,
        ..CoreConfig::default()
    };
    let mut serial = ServerCore::new(core_cfg(1));
    let mut sharded = ServerCore::new(core_cfg(SHARDS));

    let mut reqs = RequestRing::with_capacity(cfg.batch);
    let mut out_serial = ReplyRing::new();
    let mut out_sharded = ReplyRing::new();
    let mut drafts: Vec<Draft> = Vec::new();

    let mut arrivals = 0u64;
    let mut batches = 0u64;
    let mut peak_per_sec = 0u64;
    let mut bytes_in = 0u64;
    let mut all_equal = true;

    for second in 0..cfg.duration_secs {
        drafts.clear();
        let mut seq = 0u32;
        let mut draft = |rng: &mut SimRng, offset_ns: i64, client: u64, cfgr: &TrafficConfig| {
            let d = Draft { offset_ns, seq, client, shape: draw_shape(rng, cfgr) };
            seq += 1;
            d
        };
        // Compliant Poisson base load: uniform client, uniform offset.
        for _ in 0..poisson(&mut rng, base_rate) {
            let client = rng.below(compliant.max(1) as u64);
            let offset = rng.below(1_000_000_000) as i64;
            let d = draft(&mut rng, offset, client, &cfg);
            drafts.push(d);
        }
        // Abusive pollers: same process, distinct key range, higher rate.
        for _ in 0..poisson(&mut rng, abusive_rate) {
            let client = compliant as u64 + rng.below(abusive.max(1) as u64);
            let offset = rng.below(1_000_000_000) as i64;
            let d = draft(&mut rng, offset, client, &cfg);
            drafts.push(d);
        }
        // Herding: at period boundaries a slice of the fleet re-polls
        // almost simultaneously (exponential offsets, ~30 ms mean).
        if second > 0 && second % cfg.herd_period_secs == 0 {
            let herd = (cfg.clients as f64 * cfg.herd_fraction) as u64;
            for _ in 0..herd {
                let client = rng.below(cfg.clients.max(1) as u64);
                let offset =
                    (rng.exponential(30e6) as i64).clamp(0, 999_999_999);
                let d = draft(&mut rng, offset, client, &cfg);
                drafts.push(d);
            }
        }
        // Arrival order within the second: by offset, sequence-stable.
        drafts.sort_by_key(|d| (d.offset_ns, d.seq));
        peak_per_sec = peak_per_sec.max(drafts.len() as u64);

        for d in &drafts {
            let at = SimTime::from_secs(second as i64) + SimDuration(d.offset_ns);
            let wire = wire_bytes(d.shape, at);
            bytes_in += wire.len() as u64;
            arrivals += 1;
            if !reqs.push(d.client, at, &wire) {
                flush(
                    &mut reqs,
                    &mut serial,
                    &mut sharded,
                    pool,
                    &mut out_serial,
                    &mut out_sharded,
                    &mut batches,
                    &mut all_equal,
                );
                reqs.push(d.client, at, &wire);
            }
        }
    }
    flush(
        &mut reqs,
        &mut serial,
        &mut sharded,
        pool,
        &mut out_serial,
        &mut out_sharded,
        &mut batches,
        &mut all_equal,
    );

    all_equal &= serial.stats() == sharded.stats();
    ServercoreResult {
        cfg,
        arrivals,
        batches,
        peak_per_sec,
        mean_per_sec: arrivals as f64 / cfg.duration_secs.max(1) as f64,
        bytes_in,
        stats: *sharded.stats(),
        clients_tracked: sharded.clients_tracked(),
        sharded_matches_serial: all_equal,
    }
}

/// ASCII artifact body.
pub fn render(r: &ServercoreResult) -> String {
    let c = &r.cfg;
    let s = &r.stats;
    let mut out = String::new();
    out.push_str("Server-core ingest: fleet-shaped traffic through the batched engine\n");
    out.push_str(
        "(Poisson base load + herding bursts + abusive pollers; serial and sharded\n engines run in lockstep over identical batches)\n\n",
    );
    out.push_str(&format!(
        "  fleet: {} clients ({:.1}% abusive @ {:.0} s poll), {} s of traffic\n",
        c.clients,
        c.abusive_per_mille as f64 / 10.0,
        c.abusive_poll_secs,
        c.duration_secs
    ));
    out.push_str(&format!(
        "  herding: {:.0}% of the fleet re-polls every {} s within ~200 ms\n",
        c.herd_fraction * 100.0,
        c.herd_period_secs
    ));
    out.push_str(&format!(
        "  arrivals: {} total, {:.1}/s mean, {} peak/s (peak/mean {:.1}x)\n",
        r.arrivals,
        r.mean_per_sec,
        r.peak_per_sec,
        r.peak_per_sec as f64 / r.mean_per_sec.max(1e-9)
    ));
    out.push_str(&format!(
        "  batches: {} through a {}-slot ring, {} request bytes in\n",
        r.batches, c.batch, r.bytes_in
    ));
    out.push_str(&format!(
        "  fates: {} served, {} RATE kisses, {} malformed (of {} processed)\n",
        s.served,
        s.kod,
        s.malformed,
        s.total()
    ));
    out.push_str(&format!(
        "  shapes: {} sntp, {} ntpd-like; clients tracked: {}\n",
        s.sntp_shaped, s.other_shaped, r.clients_tracked
    ));
    out.push_str(&format!(
        "  sharded({SHARDS}) reply stream == serial reply stream: {}\n",
        if r.sharded_matches_serial { "yes" } else { "NO (determinism bug)" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrafficConfig {
        TrafficConfig {
            clients: 400,
            abusive_per_mille: 50,
            duration_secs: 12,
            mean_poll_secs: 8.0,
            abusive_poll_secs: 0.5,
            herd_period_secs: 4,
            herd_fraction: 0.25,
            malformed_per_mille: 30,
            ntpd_per_mille: 200,
            batch: 64,
        }
    }

    #[test]
    fn run_is_deterministic_and_pool_invariant() {
        let a = run_traffic_on(&Pool::with_jobs(1), 7, tiny());
        let b = run_traffic_on(&Pool::with_jobs(4), 7, tiny());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.sharded_matches_serial);
        assert!(a.arrivals > 0 && a.batches > 1);
        assert_eq!(a.stats.total(), a.arrivals);
    }

    #[test]
    fn traffic_exercises_every_fate_and_shape() {
        let r = run_traffic_on(&Pool::with_jobs(2), 11, tiny());
        assert!(r.stats.served > 0, "no served replies");
        assert!(r.stats.kod > 0, "abusive pollers drew no RATE kisses");
        assert!(r.stats.malformed > 0, "no malformed arrivals");
        assert!(r.stats.sntp_shaped > r.stats.other_shaped);
        assert!(r.stats.other_shaped > 0, "no ntpd-shaped arrivals");
        assert!(r.clients_tracked > 0 && r.clients_tracked <= 400);
    }

    #[test]
    fn herding_shows_up_as_peak_over_mean() {
        let r = run_traffic_on(&Pool::with_jobs(1), 3, tiny());
        // A quarter of the fleet herding every 4 s must lift the peak
        // second well above the Poisson mean.
        assert!(
            r.peak_per_sec as f64 > 1.5 * r.mean_per_sec,
            "peak {} vs mean {:.1}",
            r.peak_per_sec,
            r.mean_per_sec
        );
    }

    #[test]
    fn render_reports_the_contract() {
        let r = run_traffic_on(&Pool::with_jobs(1), 5, tiny());
        let txt = render(&r);
        assert!(txt.contains("sharded(8) reply stream == serial reply stream: yes"));
        assert!(txt.contains("RATE kisses"));
    }
}
