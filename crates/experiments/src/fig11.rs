//! Figure 11: achievable clock offsets for the six Table 2 tuner
//! configurations — the corrected-offset time series each configuration
//! produces when replayed over the same 4-hour trace.

use tuner::{emulate, EmulationResult};

use crate::render;
use crate::table2::{Table2Result, PAPER_CONFIGS};

/// One configuration's achievable-offset series.
#[derive(Clone, Debug)]
pub struct Fig11Series {
    /// Configuration index (1-based, paper numbering).
    pub config_no: usize,
    /// The emulation output.
    pub result: EmulationResult,
}

/// The figure: six series.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Series in paper order.
    pub series: Vec<Fig11Series>,
}

/// Replay the six paper configurations over the Table 2 trace.
pub fn run(t2: &Table2Result) -> Fig11Result {
    let series = PAPER_CONFIGS
        .iter()
        .enumerate()
        .map(|(i, &(wp, ww, rw, rp))| {
            let cfg = mntp::MntpConfig::from_tuner_minutes(wp, ww, rw, rp);
            Fig11Series { config_no: i + 1, result: emulate(&cfg, &t2.trace) }
        })
        .collect();
    Fig11Result { series }
}

/// Render: corrected offsets per configuration.
pub fn render(r: &Fig11Result) -> String {
    let mut out = String::from(
        "Figure 11 — achievable offsets for the six Table 2 configurations (ms)\n\n",
    );
    for s in &r.series {
        let pts: Vec<(f64, f64)> =
            s.result.accepted.iter().map(|(t, _, c)| (*t, *c)).collect();
        let abs: Vec<f64> = pts.iter().map(|(_, c)| c.abs()).collect();
        out.push_str(&format!(
            "config {}: {} accepted, RMSE {:.2} ms, max|corrected| {:.1} ms\n",
            s.config_no,
            pts.len(),
            s.result.rmse_ms(),
            abs.iter().cloned().fold(0.0, f64::max)
        ));
    }
    if let Some(last) = r.series.last() {
        let pts: Vec<(f64, f64)> =
            last.result.accepted.iter().map(|(t, _, c)| (*t, *c)).collect();
        out.push('\n');
        out.push_str(&render::scatter(
            "config 6 corrected offsets over time (ms)",
            &[("corrected", 'c', &pts)],
            72,
            10,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2;

    #[test]
    fn all_six_series_produce_offsets() {
        let t2 = table2::run(91);
        let r = run(&t2);
        assert_eq!(r.series.len(), 6);
        for s in &r.series {
            assert!(
                !s.result.accepted.is_empty(),
                "config {} produced nothing",
                s.config_no
            );
        }
    }

    #[test]
    fn series_rmse_matches_table2_rows() {
        let t2 = table2::run(92);
        let r = run(&t2);
        for (s, row) in r.series.iter().zip(&t2.paper_rows) {
            assert!(
                (s.result.rmse_ms() - row.rmse_ms).abs() < 1e-9,
                "config {} rmse mismatch",
                s.config_no
            );
        }
    }
}
