//! Chaos fleet: a regional fault timeline over a 100k-client world.
//!
//! The robustness counterpart of the [`crate::fleet`] sweep: instead of
//! asking how accurate a healthy fleet is, this experiment schedules a
//! deterministic population-fault timeline ([`netsim::chaos`]) over one
//! shared world and measures *degradation and recovery* per phase:
//!
//! 1. **steady** — fault-free baseline; the yardstick for everything
//!    after.
//! 2. **outage** — a regional loss storm blankets one fault domain (the
//!    first quarter of the client population) while server 0 blackholes
//!    entirely.
//! 3. **recovery** — the storm lifts and server 0 restarts with cold
//!    rate state; the reconnecting herd must be served, not mass-RATE'd
//!    (the graceful-degradation ladder's job).
//! 4. **falseticker** — a pool server's reference clock steps by a
//!    quarter second and stays wrong. The resilient arm's fan-out
//!    selection ([`mntp::select_round`]) must discard it; the ablation
//!    arm (identical clients, single-server rounds) shows what the
//!    trend filter alone makes of a lying source.
//! 5. **step wave** — every client in the fault domain steps its clock
//!    within a one-minute window (an NTP leap-mishap caricature);
//!    measured by time back to spec.
//!
//! Both arms run the same plan, seeds, and world. The artifact also
//! replays the resilient arm serially (shards=1, jobs=1) and asserts
//! the sharded run matches sample-for-sample — the chaos runner's
//! determinism contract, checked inside the artifact itself.

use devtools::par::Pool;
use loganalysis::recovery::{peak_error, time_to_reconvergence, RecoveryConfig};
use mntp::{
    run_fleet_chaos_on, ApplyMode, AutoTuneConfig, ChaosSession, Directive, Discipline,
    ExchangeResult, FleetClient, FleetRun, FleetRunConfig, MntpConfig, MntpDiscipline,
    QueryOutcome, RobustConfig,
};
use netsim::chaos::{ChaosEvent, ClientRange, FleetFaultPlan};
use netsim::fleet::{DegradationConfig, FleetConfig, FleetNet, ServerModelConfig};
use netsim::ServerSet;
use sntp::fleet::RequestShape;
use sntp::{PickLane, PoolConfig, ServerPool};

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};
use clocksim::{OscillatorConfig, SimClock};

/// Servers in the shared pool.
const SERVERS: usize = 4;

/// Kernel shards for the parallel runs (fixed: shard count must not be
/// able to leak into artifact bytes).
const SHARDS: usize = 8;

/// Fan-out of the resilient arm's selection rounds.
const FANOUT: usize = 3;

/// The pool member that turns falseticker.
const LIAR: usize = 1;

/// The server the regional outage blackholes.
const DARK: usize = 0;

/// One named phase of the timeline, `[start_secs, end_secs)`.
#[derive(Clone, Copy, Debug)]
pub struct PhaseSpec {
    /// Phase label.
    pub name: &'static str,
    /// Start, seconds of true time (inclusive).
    pub start_secs: f64,
    /// End, seconds of true time (exclusive).
    pub end_secs: f64,
}

/// The fault timeline: phase boundaries plus the knobs the plan is
/// built from. One instance describes both arms of one artifact.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Total clients in the world.
    pub n_clients: usize,
    /// The regional fault domain (a contiguous id range: the first
    /// quarter of the population).
    pub domain: ClientRange,
    /// Total run length, seconds.
    pub duration_secs: u64,
    /// The five phases, in order: steady, outage, recovery,
    /// falseticker, wave.
    pub phases: [PhaseSpec; 5],
    /// How long the step wave takes to sweep the domain, seconds.
    pub wave_sweep_secs: f64,
}

impl Timeline {
    /// The committed-artifact timeline (100k clients, 45 min) or the
    /// `--quick` one (2k clients, same shape compressed 2x).
    pub fn new(quick: bool) -> Timeline {
        let (n, unit) = if quick { (2_000, 150.0) } else { (100_000, 300.0) };
        // Phase boundaries in units: steady 2, outage 1, recovery 2,
        // falseticker 2, wave 2.
        let b = [0.0, 2.0 * unit, 3.0 * unit, 5.0 * unit, 7.0 * unit, 9.0 * unit];
        Timeline {
            n_clients: n,
            domain: ClientRange::new(0, (n / 4) as u32),
            duration_secs: b[5] as u64,
            phases: [
                PhaseSpec { name: "steady", start_secs: b[0], end_secs: b[1] },
                PhaseSpec { name: "outage", start_secs: b[1], end_secs: b[2] },
                PhaseSpec { name: "recovery", start_secs: b[2], end_secs: b[3] },
                PhaseSpec { name: "falseticker", start_secs: b[3], end_secs: b[4] },
                PhaseSpec { name: "step wave", start_secs: b[4], end_secs: b[5] },
            ],
            wave_sweep_secs: 60.0,
        }
    }

    /// The fault plan this timeline schedules.
    pub fn plan(&self, seed: u64) -> FleetFaultPlan {
        let outage = self.phases[1];
        let falseticker = self.phases[3];
        let wave = self.phases[4];
        FleetFaultPlan::new(seed)
            .window(
                outage.start_secs,
                outage.end_secs,
                ChaosEvent::RegionalLossStorm { region: self.domain, loss_prob: 0.9 },
            )
            .window(
                outage.start_secs,
                outage.end_secs,
                ChaosEvent::ServerOutage { servers: ServerSet::One(DARK) },
            )
            .at(
                falseticker.start_secs,
                ChaosEvent::FalsetickerOnset { server: LIAR, error_ms: 250.0 },
            )
            .window(
                wave.start_secs,
                wave.start_secs + self.wave_sweep_secs,
                ChaosEvent::ClockStepWave { region: self.domain, offset_ms: -80.0 },
            )
    }
}

/// Per-phase degradation/recovery numbers for one arm.
#[derive(Clone, Debug)]
pub struct PhaseMetrics {
    /// Phase label.
    pub name: &'static str,
    /// Worst in-domain p99 |error| during the phase, ms.
    pub in_peak_p99_ms: f64,
    /// Worst out-of-domain p99 |error| during the phase, ms.
    pub out_peak_p99_ms: f64,
    /// Seconds from the phase's fault end until the in-domain p99 goes
    /// (and stays) back in spec; `None` for phases without a recovery
    /// edge, or when the series never reconverges.
    pub in_ttr_secs: Option<f64>,
}

/// Server-side totals across the pool for one arm.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerTotals {
    /// Requests reaching any server.
    pub arrivals: u64,
    /// Requests answered with time.
    pub served: u64,
    /// RATE kisses sent.
    pub kod: u64,
    /// Arrivals shed without reply by the degradation ladder.
    pub shed: u64,
    /// Arrivals dropped on backlog overflow.
    pub dropped: u64,
    /// Server process restarts (outage recoveries).
    pub restarts: u64,
}

/// One arm of the experiment: a full timeline replay.
#[derive(Clone, Debug)]
pub struct ChaosArmResult {
    /// Arm label.
    pub name: &'static str,
    /// Baseline: worst in-domain p99 over the settled half of the
    /// steady phase, ms.
    pub steady_p99_ms: f64,
    /// Per-phase metrics, in timeline order.
    pub phases: Vec<PhaseMetrics>,
    /// Whether the outage-phase in-domain p99 stayed within 3x the
    /// steady baseline (the holdover acceptance bar).
    pub outage_within_3x: bool,
    /// Client polls attempted.
    pub polls_sent: u64,
    /// Packets the plan destroyed client->server.
    pub chaos_dropped_up: u64,
    /// Replies the plan destroyed server->client.
    pub chaos_dropped_down: u64,
    /// Pool-wide service counters.
    pub servers: ServerTotals,
}

/// Everything the chaosfleet artifact reports.
#[derive(Clone, Debug)]
pub struct ChaosFleetResult {
    /// The timeline both arms replay.
    pub timeline: Timeline,
    /// Resilient arm (fan-out selection) then ablation arm
    /// (single-server rounds), same world and seeds.
    pub arms: Vec<ChaosArmResult>,
    /// Whether the serial (shards=1, jobs=1) replay of the resilient
    /// arm matched the sharded run sample-for-sample.
    pub lockstep_ok: bool,
}

fn client_clock(seed: u64) -> SimClock {
    let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
    SimClock::new(osc, SimTime::ZERO)
}

/// MNTP scaled to the timeline: warmup finishes inside the first half
/// of the steady phase (the fault phases must hit *regular*-phase
/// clients — that is where single-source trust, and therefore
/// selection, matters), regular rounds every minute, and no mid-run
/// reset (a reset re-warmup would alias with the fault windows).
fn mntp_config(tl: &Timeline) -> MntpConfig {
    MntpConfig {
        // The clients *discipline* their clocks (adjtime-style bounded
        // slew): recovery here means true error coming back, not just
        // the estimator's opinion. (The measurement-methodology default
        // is RecordOnly, under which every arm free-runs identically.)
        apply_mode: ApplyMode::Slew,
        warmup_period_secs: tl.phases[0].end_secs / 2.0,
        // 20 s warmup rounds: fast enough to clear min_warmup_samples
        // inside even the miniature test's steady phase, slow enough
        // that 100k warming clients offer ~15k req/s, inside the pool's
        // capacity (a 10 s cadence trips the overload rung during
        // warmup and the run measures self-inflicted RATE bans).
        warmup_wait_secs: 20.0,
        regular_wait_secs: 60.0,
        // Cap the holdover backoff at two regular rounds: the default
        // 480 s cap means a client that rode out the 300 s storm in
        // holdover may not even *probe* until deep into the next phase,
        // and the domain's tail never returns to baseline. A fleet
        // that wants its region back after an outage probes sooner.
        holdover_max_wait_secs: 120.0,
        // ntpd's STEPT analogue: a wave-stepped client measures an
        // ~80 ms offset, and slewing that back at the 500 ppm cap takes
        // 160 s — during which every new sample still reads the
        // unslewed remainder and fights the trend filter. Step past
        // 50 ms; slews stay bounded-rate below it.
        step_threshold_ms: Some(50.0),
        // A stepped client on a channel too noisy for the trend
        // filter's re-anchor (5 ms residual bar) would otherwise reject
        // samples forever; five straight rejects with a large median
        // force the step the filter won't bless.
        stepout_rejects: Some(5),
        reset_period_secs: 2.0 * tl.duration_secs as f64,
        ..MntpConfig::default()
    }
}

/// A discipline that sleeps until its boot instant, then delegates.
///
/// Real fleets don't boot in the same second: without a per-client
/// phase offset, 100k identically-configured MNTP engines all poll at
/// the same warmup/regular marks, the herd's bursts swamp any finite
/// server queue, and the run measures queue overflow instead of the
/// timeline's faults. The offset spreads poll schedules uniformly over
/// one regular round; it is a pure function of the global client id,
/// so every (shards, jobs) layout sees the same fleet.
struct BootStagger {
    inner: Box<dyn Discipline>,
    boot_secs: f64,
}

impl Discipline for BootStagger {
    fn wants_hints(&self) -> bool {
        self.inner.wants_hints()
    }

    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        hints: Option<&netsim::WirelessHints>,
        select: &mut dyn sntp::ServerSelect,
    ) -> Directive {
        if t.as_secs_f64() < self.boot_secs {
            return Directive::Idle { record_deferred: false };
        }
        self.inner.poll(t, clock, hints, select)
    }

    fn complete(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        round: &[ExchangeResult],
    ) -> Option<QueryOutcome> {
        self.inner.complete(t, clock, round)
    }

    fn take_commands(&mut self) -> Vec<clocksim::ClockCommand> {
        self.inner.take_commands()
    }
}

/// An all-MNTP population: every client hardened, the resilient arm
/// additionally running fan-out selection rounds. Identical seeds per
/// client id in both arms — the arms differ *only* in selection.
fn build_clients(tl: &Timeline, seed: u64, resilient: bool) -> Vec<FleetClient> {
    let cfg = mntp_config(tl);
    let stagger_span = cfg.regular_wait_secs;
    (0..tl.n_clients)
        .map(|i| {
            let clock = client_clock(seed ^ (0x10_000 + i as u64));
            let select = PickLane::new(SERVERS, seed ^ (0x30_000 + i as u64));
            let rcfg = RobustConfig {
                health_seed: seed ^ (0x20_000 + i as u64),
                ..RobustConfig::default()
            };
            // AIMD wait tuning, bounded to [20 s, regular wait]: a
            // rejection streak (stepped clock, stale trend) speeds
            // sampling up so the filter's wedge escape can fire within
            // a phase instead of five full regular waits; the 20 s
            // floor stays above the ladder's 16 s ramp rung, so a
            // fast-sampling client is never the abuser the ladder sheds.
            let tune = AutoTuneConfig {
                min_wait_secs: 20.0,
                max_wait_secs: cfg.regular_wait_secs,
                increase_secs: 15.0,
                decrease_factor: 0.5,
            };
            let inner: Box<dyn Discipline> = if resilient {
                Box::new(
                    MntpDiscipline::resilient(cfg.clone(), &rcfg, SERVERS, FANOUT)
                        .with_autotune(tune),
                )
            } else {
                Box::new(MntpDiscipline::hardened(cfg.clone(), &rcfg, SERVERS).with_autotune(tune))
            };
            // Low-discrepancy boot phase: successive ids land far apart.
            let boot_secs =
                stagger_span * ((i as u64).wrapping_mul(0x9E37_79B9) % 4096) as f64 / 4096.0;
            let discipline: Box<dyn Discipline> = Box::new(BootStagger { inner, boot_secs });
            FleetClient { discipline, clock, select, shape: RequestShape::Sntp }
        })
        .collect()
}

/// Replay the timeline once. Returns the raw run plus the pool-wide
/// service counters.
fn run_arm(
    tl: &Timeline,
    seed: u64,
    resilient: bool,
    shards: usize,
    jobs: usize,
) -> (FleetRun, ServerTotals) {
    let fcfg = FleetConfig {
        clients: tl.n_clients,
        servers: SERVERS,
        shards,
        // Fleet-grade pool members: the defaults model a hobby server
        // (64-deep queue, 300 us/req). Against 100k clients even a
        // staggered warmup offers ~30k req/s pool-wide, so size each
        // member for ~17k req/s with a queue deep enough to absorb a
        // tick's worth of burst — steady state then serves cleanly and
        // the ladder engages on the *fault* herds, which is the story
        // this experiment is about.
        // The rung thresholds scale with the queue: the defaults (16/32)
        // belong to the 64-deep hobby queue and would pin this pool on
        // the overload rung from the first warmup burst. Sized so the
        // tick-aligned bursts of routine polling top out on the ramp
        // rung and only fault herds can reach overload/shedding.
        server: ServerModelConfig {
            queue_capacity: 6144,
            service_time: SimDuration::from_secs_f64(60e-6),
            overload_backlog: 4608,
            ladder: Some(DegradationConfig { ramp_backlog: 1536, ..DegradationConfig::default() }),
            ..ServerModelConfig::default()
        },
        // Lightly loaded APs: at the default download frequency the
        // shared cross-traffic source keeps the hint gate closed for
        // minutes at a stretch and the fleet's polls collapse into rare
        // idle bursts. The faults under study here come from the plan,
        // not ambient congestion, so keep the channel mostly favorable.
        initial_frequency: 0.05,
        ..FleetConfig::default()
    };
    let mut net = FleetNet::new(&fcfg, seed);
    let mut pool =
        ServerPool::new(PoolConfig { size: SERVERS, ..PoolConfig::default() }, seed ^ 0x9001);
    let mut clients = build_clients(tl, seed, resilient);
    let groups: Vec<u8> =
        (0..tl.n_clients).map(|i| u8::from(!tl.domain.contains(i as u32))).collect();
    let mut session = ChaosSession::new(tl.plan(seed ^ 0xC0A5), &mut net, groups, 2);
    let cfg = FleetRunConfig {
        start_secs: 0.0,
        duration_secs: tl.duration_secs,
        tick_secs: 1.0,
        sample_period_secs: 15.0,
        collect_arrivals: false,
        // Past-the-end cutoff: group quantiles are the only ground
        // truth this experiment needs; skip per-client series.
        steady_cutoff_secs: Some(tl.duration_secs as f64 + 1.0),
    };
    let run = run_fleet_chaos_on(
        &Pool::with_jobs(jobs),
        &mut clients,
        &mut net,
        &mut pool,
        &cfg,
        &mut session,
    );
    let mut totals = ServerTotals::default();
    for j in 0..SERVERS {
        if let Some(m) = net.server_model(j) {
            totals.arrivals += m.stats.arrivals;
            totals.served += m.stats.served;
            totals.kod += m.stats.kod_sent;
            totals.shed += m.stats.shed;
            totals.dropped += m.stats.dropped;
            totals.restarts += m.stats.restarts;
        }
    }
    (run, totals)
}

/// The in-domain / out-of-domain p99 series of a run.
fn p99_series(run: &FleetRun, group: usize) -> Vec<(f64, f64)> {
    run.group_quantiles
        .get(group)
        .map(|s| s.iter().map(|g| (g.t_secs, g.p99_ms)).collect())
        .unwrap_or_default()
}

/// Distill one arm's run into the artifact row.
fn arm_metrics(
    name: &'static str,
    tl: &Timeline,
    run: &FleetRun,
    servers: ServerTotals,
) -> ChaosArmResult {
    let series_in = p99_series(run, 0);
    let series_out = p99_series(run, 1);
    // Baseline over the settled half of the steady phase (the first
    // half is MNTP warmup).
    let steady = tl.phases[0];
    let settle = (steady.start_secs + steady.end_secs) / 2.0;
    let steady_p99 =
        peak_error(&series_in, settle, steady.end_secs).map(|(_, v)| v).unwrap_or(0.0);
    // Back-in-spec bar: 3x the steady baseline (floored well above
    // quantization noise), sustained for two sample periods.
    let rcfg = RecoveryConfig { threshold_ms: (3.0 * steady_p99).max(2.0), sustain_secs: 30.0 };
    let phases = tl
        .phases
        .iter()
        .map(|p| {
            // Recovery edges: the outage ends at its window end; the
            // wave's fault is over once the sweep finishes.
            let fault_end = match p.name {
                "recovery" => Some(tl.phases[1].end_secs),
                "step wave" => Some(p.start_secs + tl.wave_sweep_secs),
                _ => None,
            };
            PhaseMetrics {
                name: p.name,
                in_peak_p99_ms: peak_error(&series_in, p.start_secs, p.end_secs)
                    .map(|(_, v)| v)
                    .unwrap_or(0.0),
                out_peak_p99_ms: peak_error(&series_out, p.start_secs, p.end_secs)
                    .map(|(_, v)| v)
                    .unwrap_or(0.0),
                in_ttr_secs: fault_end
                    .and_then(|end| time_to_reconvergence(&series_in, end, &rcfg)),
            }
        })
        .collect::<Vec<_>>();
    let outage_peak = phases.get(1).map(|p| p.in_peak_p99_ms).unwrap_or(0.0);
    ChaosArmResult {
        name,
        steady_p99_ms: steady_p99,
        phases,
        outage_within_3x: outage_peak <= (3.0 * steady_p99).max(2.0),
        polls_sent: run.polls_sent,
        chaos_dropped_up: run.chaos_dropped_up,
        chaos_dropped_down: run.chaos_dropped_down,
        servers,
    }
}

/// Run the whole experiment (both arms plus the serial lockstep check)
/// on `pool` workers.
pub fn run_on(pool: &Pool, seed: u64, quick: bool) -> ChaosFleetResult {
    let tl = Timeline::new(quick);
    run_timeline_on(pool, seed, &tl)
}

/// [`run_on`] over an explicit timeline (tests use miniature ones).
pub fn run_timeline_on(pool: &Pool, seed: u64, tl: &Timeline) -> ChaosFleetResult {
    let jobs = pool.jobs();
    let (resilient_run, resilient_srv) = run_arm(tl, seed, true, SHARDS, jobs);
    let (ablation_run, ablation_srv) = run_arm(tl, seed, false, SHARDS, jobs);
    // Lockstep: the serial world must reproduce the sharded one
    // sample-for-sample (and poll-for-poll).
    let (serial_run, _) = run_arm(tl, seed, true, 1, 1);
    let lockstep_ok = serial_run.group_quantiles == resilient_run.group_quantiles
        && serial_run.polls_sent == resilient_run.polls_sent
        && serial_run.arrivals_per_sec == resilient_run.arrivals_per_sec
        && serial_run.chaos_dropped_up == resilient_run.chaos_dropped_up
        && serial_run.chaos_dropped_down == resilient_run.chaos_dropped_down;
    ChaosFleetResult {
        timeline: tl.clone(),
        arms: vec![
            arm_metrics("MNTP resilient (fan-out 3)", tl, &resilient_run, resilient_srv),
            arm_metrics("MNTP ablation (no selection)", tl, &ablation_run, ablation_srv),
        ],
        lockstep_ok,
    }
}

/// ASCII artifact body.
pub fn render(r: &ChaosFleetResult) -> String {
    let tl = &r.timeline;
    let mut out = String::new();
    out.push_str("Chaos fleet: regional fault timeline over a shared-world population\n");
    out.push_str(
        "(loss storm + server blackhole over one fault domain, then a pool falseticker,\n then a client clock-step wave; ladder-hardened servers; all clients MNTP)\n\n",
    );
    out.push_str(&format!(
        "  world: {} clients ({} in the fault domain), {} servers, {} s timeline\n",
        tl.n_clients,
        tl.domain.len(),
        SERVERS,
        tl.duration_secs
    ));
    for p in &tl.phases {
        out.push_str(&format!(
            "    {:<12} [{:>6.0}, {:>6.0}) s\n",
            p.name, p.start_secs, p.end_secs
        ));
    }
    out.push_str(&format!(
        "  faults: storm p=0.9 on the domain + server {DARK} dark during outage;\n          server {LIAR} steps +250 ms at falseticker onset; domain steps -80 ms\n          across {:.0} s of the wave window\n\n",
        tl.wave_sweep_secs
    ));
    for a in &r.arms {
        out.push_str(&format!(
            "{} — steady in-domain p99 {:.2} ms (settled half)\n",
            a.name, a.steady_p99_ms
        ));
        out.push_str(&format!(
            "  {:<12} {:>16} {:>17} {:>14}\n",
            "phase", "in-domain p99", "out-domain p99", "reconverge"
        ));
        for p in &a.phases {
            let ttr = match p.in_ttr_secs {
                Some(s) => format!("{s:.0} s"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<12} {:>13.2} ms {:>14.2} ms {:>14}\n",
                p.name, p.in_peak_p99_ms, p.out_peak_p99_ms, ttr
            ));
        }
        out.push_str(&format!(
            "  outage holdover within 3x steady: {}\n",
            if a.outage_within_3x { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "  {} polls; chaos destroyed {} up / {} down\n",
            a.polls_sent, a.chaos_dropped_up, a.chaos_dropped_down
        ));
        let s = &a.servers;
        out.push_str(&format!(
            "  servers: {} arrivals, {} served, {} RATE, {} shed, {} dropped, {} restarts\n\n",
            s.arrivals, s.served, s.kod, s.shed, s.dropped, s.restarts
        ));
    }
    out.push_str(&format!(
        "serial replay (shards=1, jobs=1) matches sharded run: {}\n",
        if r.lockstep_ok { "yes" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 60-client, 375 s miniature of the real timeline.
    fn tiny_timeline() -> Timeline {
        let unit = 50.0;
        let b = [0.0, 2.0 * unit, 3.0 * unit, 5.0 * unit, 6.0 * unit, 7.5 * unit];
        Timeline {
            n_clients: 60,
            domain: ClientRange::new(0, 15),
            duration_secs: b[5] as u64,
            phases: [
                PhaseSpec { name: "steady", start_secs: b[0], end_secs: b[1] },
                PhaseSpec { name: "outage", start_secs: b[1], end_secs: b[2] },
                PhaseSpec { name: "recovery", start_secs: b[2], end_secs: b[3] },
                PhaseSpec { name: "falseticker", start_secs: b[3], end_secs: b[4] },
                PhaseSpec { name: "step wave", start_secs: b[4], end_secs: b[5] },
            ],
            wave_sweep_secs: 20.0,
        }
    }

    #[test]
    fn miniature_timeline_produces_both_arms_in_lockstep() {
        let r = run_timeline_on(&Pool::with_jobs(2), 42, &tiny_timeline());
        assert!(r.lockstep_ok, "serial and sharded replays diverged");
        assert_eq!(r.arms.len(), 2);
        for a in &r.arms {
            assert_eq!(a.phases.len(), 5);
            assert!(a.polls_sent > 0);
            assert!(
                a.chaos_dropped_up + a.chaos_dropped_down > 0,
                "{}: the storm destroyed nothing — the plan is not wired in",
                a.name
            );
            assert!(a.steady_p99_ms > 0.0);
        }
        // The wave steps every domain client by 80 ms: the in-domain
        // peak of that phase must see it.
        let wave = &r.arms[0].phases[4];
        assert!(wave.in_peak_p99_ms > 40.0, "wave peak {}", wave.in_peak_p99_ms);
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_timeline_on(&Pool::with_jobs(1), 7, &tiny_timeline());
        let b = run_timeline_on(&Pool::with_jobs(3), 7, &tiny_timeline());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn render_names_every_phase_and_arm() {
        let r = run_timeline_on(&Pool::with_jobs(1), 11, &tiny_timeline());
        let txt = render(&r);
        for name in ["steady", "outage", "recovery", "falseticker", "step wave"] {
            assert!(txt.contains(name), "missing phase {name}");
        }
        assert!(txt.contains("resilient"));
        assert!(txt.contains("ablation"));
        assert!(txt.contains("matches sharded run"));
    }

    #[test]
    fn committed_timeline_shapes_are_sane() {
        for quick in [true, false] {
            let tl = Timeline::new(quick);
            assert_eq!(tl.domain.len() as usize, tl.n_clients / 4);
            assert_eq!(tl.phases[4].end_secs as u64, tl.duration_secs);
            for w in tl.phases.windows(2) {
                assert!(w[0].end_secs <= w[1].start_secs + 1e-9);
            }
            assert!(!tl.plan(1).is_empty());
        }
    }
}
