//! The `repro` orchestrator: regenerate every table and figure of the
//! paper, fanning independent pipelines out over the work-stealing pool.
//!
//! Each paper artifact is produced by a *task* — an independent trial
//! (or family of trials) that owns all of its RNG streams and returns
//! `(id, body)` pairs. Tasks run concurrently on [`devtools::par`], but
//! every `emit` is **buffered**: bodies are printed and written strictly
//! in the fixed task order after the fleet drains, so stdout and
//! `results/*.txt` are byte-identical at any `--jobs` / `MNTP_JOBS`
//! setting (`--jobs 1` *is* the serial loop).
//!
//! Result-write failures do not abort the run (later artifacts still
//! regenerate) but are collected into the returned [`Report`] — the
//! binary exits nonzero if any artifact failed to land, so CI cannot go
//! green with missing figures.

use std::fs;
use std::path::{Path, PathBuf};

use devtools::par::Pool;

use crate::*;

/// Parsed command line of the `repro` binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Short horizons (`--quick`): 15-minute hours, skip the 4-hour and
    /// tuner pipelines.
    pub quick: bool,
    /// Artifact ids to produce; empty = everything.
    pub selected: Vec<String>,
    /// Output directory for `<id>.txt` artifacts.
    pub out_dir: PathBuf,
    /// Worker override (`--jobs N`); `None` defers to `MNTP_JOBS` / the
    /// machine's core count.
    pub jobs: Option<usize>,
    /// Suppress the per-artifact stdout dump (tests).
    pub print: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            selected: Vec::new(),
            out_dir: PathBuf::from("results"),
            jobs: None,
            print: true,
        }
    }
}

impl Options {
    /// Parse the binary's arguments (everything after argv[0]).
    pub fn from_args(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--jobs" | "-j" => {
                    let v = it.next().ok_or("--jobs requires a positive integer argument")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("invalid --jobs value {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = Some(n);
                }
                "--out" => {
                    let v = it.next().ok_or("--out requires a directory argument")?;
                    opts.out_dir = PathBuf::from(v);
                }
                other if !other.starts_with('-') => opts.selected.push(other.to_string()),
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(opts)
    }

    fn want(&self, id: &str) -> bool {
        self.selected.is_empty() || self.selected.iter().any(|s| s == id)
    }

    fn hour(&self) -> u64 {
        if self.quick {
            900
        } else {
            3600
        }
    }
}

/// What a finished run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// `(artifact id, file path)` for every artifact written, in emit
    /// order.
    pub written: Vec<(String, PathBuf)>,
    /// `(artifact id, error)` for every artifact whose file write
    /// failed.
    pub write_failures: Vec<(String, String)>,
}

/// The artifact ids a full (non-quick) run produces, in emit order.
/// `--quick` drops `fig12`, `table2`, and `fig11`.
pub fn expected_ids(quick: bool) -> Vec<&'static str> {
    let mut ids = vec![
        "table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    ];
    if !quick {
        ids.extend(["fig12", "table2", "fig11"]);
    }
    ids.extend([
        "validation_drift",
        "validation_temperature",
        "ablations",
        "extended_threeway",
        "extended_vendor",
        "extended_huffpuff",
        "extended_autotune",
        "extended_scenarios",
        "faultsweep",
        "fleet",
        "fullscale",
        "servercore",
        "chaosfleet",
    ]);
    ids
}

/// Fixed seeds: EXPERIMENTS.md numbers regenerate from exactly these.
const SEED: u64 = 2016;

type Task<'a> = Box<dyn FnOnce() -> Vec<(&'static str, String)> + Send + 'a>;

/// Run the selected experiments and write `results/<id>.txt` artifacts.
pub fn run(opts: &Options) -> Report {
    let pool = opts.jobs.map(Pool::with_jobs).unwrap_or_else(Pool::from_env);
    let quick = opts.quick;
    let hour = opts.hour();

    // One task per independent pipeline, in the fixed emit order. Each
    // closure owns its inputs; nothing is shared, so the fleet order
    // cannot leak into the output.
    let mut tasks: Vec<Task<'_>> = Vec::new();
    if opts.want("table1") {
        let scale = if quick { 20_000 } else { 1_000 };
        tasks.push(Box::new(move || {
            vec![("table1", table1::render(&table1::run(SEED, scale)))]
        }));
    }
    if opts.want("fig1") {
        let scale = if quick { 10_000 } else { 2_000 };
        tasks.push(Box::new(move || vec![("fig1", fig1::render(&fig1::run(SEED, scale)))]));
    }
    if opts.want("fig2") {
        let scale = if quick { 10_000 } else { 2_000 };
        tasks.push(Box::new(move || vec![("fig2", fig2::render(&fig2::run(SEED, scale)))]));
    }
    if opts.want("fig4") {
        tasks.push(Box::new(move || vec![("fig4", fig4::render(&fig4::run(SEED, hour)))]));
    }
    if opts.want("fig5") {
        let d = if quick { 1800 } else { 3 * 3600 };
        tasks.push(Box::new(move || vec![("fig5", fig5::render(&fig5::run(SEED, d)))]));
    }
    if opts.want("fig6") {
        tasks.push(Box::new(move || vec![("fig6", fig6::render(&fig6::run(SEED, hour)))]));
    }
    if opts.want("fig7") {
        tasks.push(Box::new(move || vec![("fig7", fig7::render(&fig7::run(SEED, hour)))]));
    }
    if opts.want("fig8") {
        tasks.push(Box::new(move || vec![("fig8", fig8::render(&fig8::run(SEED, hour)))]));
    }
    if opts.want("fig9") {
        tasks.push(Box::new(move || {
            vec![("fig9", fig9and10::render_fig9(&fig9and10::run(SEED, hour, true)))]
        }));
    }
    if opts.want("fig10") {
        tasks.push(Box::new(move || {
            vec![("fig10", fig9and10::render_fig10(&fig9and10::run(SEED, hour, false)))]
        }));
    }
    if opts.want("fig12") && !quick {
        tasks.push(Box::new(move || vec![("fig12", fig12::render(&fig12::run(SEED)))]));
    }
    if (opts.want("table2") || opts.want("fig11")) && !quick {
        let want_t2 = opts.want("table2");
        let want_f11 = opts.want("fig11");
        tasks.push(Box::new(move || {
            let t2 = table2::run(SEED);
            let mut out = Vec::new();
            if want_t2 {
                out.push(("table2", table2::render(&t2)));
            }
            if want_f11 {
                out.push(("fig11", fig11::render(&fig11::run(&t2))));
            }
            out
        }));
    }
    if opts.want("validation") {
        tasks.push(Box::new(move || {
            vec![(
                "validation_drift",
                validation::render_drift(&validation::drift_estimation_accuracy(SEED)),
            )]
        }));
        tasks.push(Box::new(move || {
            vec![(
                "validation_temperature",
                validation::render_temperature(&validation::temperature_step(SEED)),
            )]
        }));
    }
    if opts.want("ablations") {
        let d = if quick { 1800 } else { 3600 };
        // The suite fans its 8 arms out itself; a serial inner pool here
        // keeps the worker budget at `jobs` overall.
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![("ablations", ablations::render_suite(&ablations::run_suite_on(&inner, SEED, d)))]
        }));
    }
    if opts.want("extended") {
        let d3 = if quick { 1800 } else { 2 * 3600 };
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![(
                "extended_threeway",
                extended::render_three_way(&extended::three_way_on(&inner, SEED, d3)),
            )]
        }));
        let days = if quick { 1 } else { 3 };
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![(
                "extended_vendor",
                extended::render_vendor(&extended::vendor_policies_on(&inner, SEED, days)),
            )]
        }));
        let dh = if quick { 1800 } else { 3600 };
        tasks.push(Box::new(move || {
            vec![(
                "extended_huffpuff",
                extended::render_huffpuff(&extended::huffpuff_comparison(SEED, dh)),
            )]
        }));
        let da = if quick { 1800 } else { 2 * 3600 };
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![(
                "extended_autotune",
                extended::render_autotune(&extended::autotune_comparison_on(&inner, SEED, da)),
            )]
        }));
        let ds = if quick { 1800 } else { 3600 };
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![(
                "extended_scenarios",
                extended::render_scenarios(&extended::scenario_sweep_on(&inner, SEED, ds)),
            )]
        }));
    }

    if opts.want("faultsweep") {
        let d = if quick { 1800 } else { 5400 };
        // The sweep fans its 21 runs out itself; serial inner pool keeps
        // the worker budget at `jobs` overall.
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![(
                "faultsweep",
                faultsweep::render_sweep(&faultsweep::run_sweep_on(&inner, SEED, d)),
            )]
        }));
    }

    if opts.want("fleet") {
        // The sweep fans its per-size trials out itself; serial inner
        // pool keeps the worker budget at `jobs` overall.
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![("fleet", fleet::render(&fleet::run_sweep_on(&inner, SEED, quick)))]
        }));
    }

    if opts.want("fullscale") {
        let cfg =
            if quick { fullscale::FullScaleConfig::quick() } else { fullscale::FullScaleConfig::full() };
        let jobs = opts.jobs;
        // Unlike the simulation pipelines, this one is pure streaming
        // fan-out over generation chunks and is proven pool-invariant
        // (tests pin jobs=1 == jobs=8), so it gets the run's worker
        // budget: at full scale it is the heaviest single task and a
        // serial inner pool would leave the machine idle.
        tasks.push(Box::new(move || {
            let inner = jobs.map(Pool::with_jobs).unwrap_or_else(Pool::from_env);
            vec![("fullscale", fullscale::render(&fullscale::run_on(&inner, SEED, &cfg)))]
        }));
    }

    if opts.want("servercore") {
        // The harness drives the sharded engine itself; serial inner
        // pool keeps the worker budget at `jobs` overall (the artifact
        // is pool-invariant regardless).
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![("servercore", servercore::render(&servercore::run_on(&inner, SEED, quick)))]
        }));
    }

    if opts.want("chaosfleet") {
        // Three full-timeline replays (two arms + the serial lockstep
        // reference); serial inner pool keeps the worker budget at
        // `jobs` overall, and the result is pool-invariant regardless.
        tasks.push(Box::new(move || {
            let inner = Pool::with_jobs(1);
            vec![("chaosfleet", chaosfleet::render(&chaosfleet::run_on(&inner, SEED, quick)))]
        }));
    }

    // Fan out, then emit strictly in task order.
    let buffered = pool.invoke(tasks);
    let mut report = Report::default();
    if let Err(e) = fs::create_dir_all(&opts.out_dir) {
        report
            .write_failures
            .push(("<out dir>".into(), format!("create {}: {e}", opts.out_dir.display())));
    }
    for (id, body) in buffered.into_iter().flatten() {
        emit(opts, id, &body, &mut report);
    }
    report
}

fn emit(opts: &Options, id: &str, body: &str, report: &mut Report) {
    if opts.print {
        println!("\n=================== {id} ===================");
        println!("{body}");
    }
    let path = Path::new(&opts.out_dir).join(format!("{id}.txt"));
    match fs::write(&path, body) {
        Ok(()) => report.written.push((id.to_string(), path)),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            report.write_failures.push((id.to_string(), e.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_ids() {
        let args: Vec<String> =
            ["--quick", "fig6", "--jobs", "4", "fig8"].iter().map(|s| s.to_string()).collect();
        let o = Options::from_args(&args).unwrap();
        assert!(o.quick);
        assert_eq!(o.jobs, Some(4));
        assert_eq!(o.selected, vec!["fig6", "fig8"]);
        assert!(o.want("fig6") && o.want("fig8") && !o.want("fig12"));
    }

    #[test]
    fn args_reject_bad_jobs_and_unknown_flags() {
        let bad = |args: &[&str]| {
            Options::from_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(bad(&["--jobs"]).is_err());
        assert!(bad(&["--jobs", "0"]).is_err());
        assert!(bad(&["--jobs", "many"]).is_err());
        assert!(bad(&["--frobnicate"]).is_err());
    }

    #[test]
    fn expected_ids_cover_quick_subset() {
        let full = expected_ids(false);
        let quick = expected_ids(true);
        assert_eq!(full.len(), quick.len() + 3);
        for id in ["fig12", "table2", "fig11"] {
            assert!(full.contains(&id) && !quick.contains(&id));
        }
        for id in &quick {
            assert!(full.contains(id));
        }
    }

    #[test]
    fn write_failure_is_reported_not_fatal() {
        // Point the out dir at a path that cannot be a directory.
        // lint:allow(no-env) — OS scratch dir for a write-failure test; its location never reaches an artifact
        let base = std::env::temp_dir().join("mntp_repro_unwritable");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let file_in_the_way = base.join("results");
        std::fs::write(&file_in_the_way, b"not a directory").unwrap();
        let opts = Options {
            quick: true,
            selected: vec!["fig6".into()],
            out_dir: file_in_the_way,
            jobs: Some(1),
            print: false,
        };
        let report = run(&opts);
        assert!(report.written.is_empty());
        assert!(!report.write_failures.is_empty());
        let _ = std::fs::remove_dir_all(&base);
    }
}
