//! Fleet-scale sweep: N clients per server pool, three client stacks.
//!
//! The paper's client-side experiments are one phone on one bench; its
//! server-side study is 19 production servers under millions of
//! clients. This sweep closes the loop in simulation: one shared world
//! ([`netsim::fleet::FleetNet`]) hosts N clients — a mix of naive SNTP,
//! hardened MNTP, and the reference ntpd — behind one access point and
//! a 4-server pool with bounded service queues. Each trial reports both
//! ends:
//!
//! * client side: steady-state |clock error| percentiles per stack;
//! * server side: arrival/KoD/drop rates and peak backlog.
//!
//! The N=1000 trial additionally keeps the raw server-side arrival log
//! (request bytes, true arrival times) and feeds it through the same
//! `loganalysis` pipeline the paper ran over tcpdump captures: packet-
//! shape protocol classification (Figure 2) and the inter-arrival
//! analysis of Figures 11/12 — regenerated here from a *simulated*
//! fleet instead of production servers.

use clocksim::rng::SimRng;
use clocksim::time::SimTime;
use clocksim::{OscillatorConfig, SimClock};
use devtools::par::Pool;
use loganalysis::model::{IpVersion, ServerProfile};
use loganalysis::synth::{LogRecord, ServerLog};
use loganalysis::InterarrivalSummary;
use mntp::{
    run_fleet_on, Discipline, FleetClient, FleetRunConfig, MntpConfig, MntpDiscipline,
    RobustConfig, SntpDiscipline,
};
use netsim::fleet::{FleetConfig, FleetNet};
use ntpd_sim::{NtpdConfig, NtpdDiscipline};
use sntp::fleet::{FleetArrival, RequestShape};
use sntp::{PickLane, PoolConfig, ServerPool};

/// Number of servers every fleet trial runs against.
const SERVERS: usize = 4;

/// Kernel shards per fleet world. Fixed for every trial (shard count is
/// not observable in results, but fixing it keeps artifact bytes
/// independent of any future heuristic).
const SHARDS: usize = 8;

/// Populations at or above this size switch to compact steady-state
/// sampling ([`FleetRunConfig::steady_cutoff_secs`]): per-client `f32`
/// |error| samples instead of the full timestamped series.
const STEADY_SAMPLING_MIN_CLIENTS: usize = 100_000;

/// Client-stack mix by id: half naive SNTP, 3/10 MNTP, 2/10 ntpd —
/// SNTP-dominant, as the paper's Figure 2 found on real servers.
fn stack_for(client: usize) -> Stack {
    match client % 10 {
        0..=4 => Stack::Sntp,
        5..=7 => Stack::Mntp,
        _ => Stack::Ntpd,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Stack {
    Sntp,
    Mntp,
    Ntpd,
}

impl Stack {
    fn name(self) -> &'static str {
        match self {
            Stack::Sntp => "SNTP (naive)",
            Stack::Mntp => "MNTP (hardened)",
            Stack::Ntpd => "NTP (ntpd)",
        }
    }
}

/// Steady-state |error| percentiles for one client stack in one trial.
#[derive(Clone, Debug)]
pub struct FleetArmStats {
    /// Stack label.
    pub name: &'static str,
    /// Clients running this stack.
    pub clients: usize,
    /// Median |error|, ms, over the steady-state half of the trial.
    pub p50_ms: f64,
    /// 90th percentile |error|, ms.
    pub p90_ms: f64,
    /// 99th percentile |error|, ms.
    pub p99_ms: f64,
    /// Worst |error|, ms.
    pub max_ms: f64,
}

/// One fleet trial: N clients against the shared 4-server world.
#[derive(Clone, Debug)]
pub struct FleetTrialResult {
    /// Total clients.
    pub n_clients: usize,
    /// Trial length, seconds.
    pub duration_secs: u64,
    /// Per-stack offset statistics (only stacks with ≥1 client).
    pub arms: Vec<FleetArmStats>,
    /// Requests that reached any server.
    pub arrivals: u64,
    /// Requests answered with time.
    pub served: u64,
    /// RATE kisses sent.
    pub kod: u64,
    /// Requests dropped on backlog overflow.
    pub dropped: u64,
    /// Deepest service backlog seen at any server.
    pub peak_backlog: usize,
    /// Mean server-side arrival rate, requests/s.
    pub mean_rate: f64,
    /// Peak per-second arrival count.
    pub peak_rate: u64,
    /// Client polls attempted (all stacks).
    pub polls_sent: u64,
}

/// §3.1-pipeline analysis of the simulated server log.
#[derive(Clone, Debug)]
pub struct FleetLogAnalysis {
    /// Which trial the log came from (client count).
    pub n_clients: usize,
    /// Captured requests.
    pub records: usize,
    /// Distinct clients seen at the servers.
    pub clients_seen: usize,
    /// Fraction of clients the packet-shape classifier labels SNTP.
    pub sntp_share: f64,
    /// Aggregate inter-arrival distribution (herding view).
    pub global: Option<InterarrivalSummary>,
    /// Same-client inter-arrival distribution (effective poll interval).
    pub per_client: Option<InterarrivalSummary>,
}

/// Everything the fleet artifact reports.
#[derive(Clone, Debug)]
pub struct FleetSweepResult {
    /// One row per population size.
    pub trials: Vec<FleetTrialResult>,
    /// Log-pipeline analysis of the N=1000 trial.
    pub log: FleetLogAnalysis,
}

fn client_clock(seed: u64) -> SimClock {
    let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
    SimClock::new(osc, SimTime::ZERO)
}

fn build_clients(n: usize, seed: u64) -> Vec<FleetClient> {
    (0..n)
        .map(|i| {
            let clock = client_clock(seed ^ (0x10_000 + i as u64));
            let select = PickLane::new(SERVERS, seed ^ (0x30_000 + i as u64));
            match stack_for(i) {
                Stack::Sntp => FleetClient {
                    discipline: Box::new(SntpDiscipline::naive().self_paced(5.0))
                        as Box<dyn Discipline>,
                    clock,
                    select,
                    shape: RequestShape::Sntp,
                },
                Stack::Mntp => {
                    let rcfg = RobustConfig {
                        health_seed: seed ^ (0x20_000 + i as u64),
                        ..RobustConfig::default()
                    };
                    FleetClient {
                        discipline: Box::new(MntpDiscipline::hardened(
                            MntpConfig::default(),
                            &rcfg,
                            SERVERS,
                        )),
                        clock,
                        select,
                        shape: RequestShape::Sntp,
                    }
                }
                Stack::Ntpd => FleetClient {
                    discipline: Box::new(NtpdDiscipline::new(&NtpdConfig::with_peers(
                        (0..SERVERS).collect(),
                    ))),
                    clock,
                    select,
                    shape: RequestShape::Ntpd,
                },
            }
        })
        .collect()
}

/// Run one fleet trial, ticking its kernel shards over `jobs` worker
/// threads (the output is identical at any job count). Returns the
/// summary row plus the raw arrival log when `collect_log` is set (the
/// log does not perturb the trial: collection only stores observations).
pub fn fleet_trial(
    n: usize,
    seed: u64,
    duration_secs: u64,
    collect_log: bool,
    jobs: usize,
) -> (FleetTrialResult, Vec<FleetArrival>) {
    let fcfg =
        FleetConfig { clients: n, servers: SERVERS, shards: SHARDS, ..FleetConfig::default() };
    let mut net = FleetNet::new(&fcfg, seed);
    let mut pool = ServerPool::new(
        PoolConfig { size: SERVERS, ..PoolConfig::default() },
        seed ^ 0x9001,
    );
    let mut clients = build_clients(n, seed);
    // Steady state: second half of the trial. Large populations keep
    // only the compact per-client |error| samples past the cutoff; the
    // full timestamped series at 1M clients would dwarf the trial state.
    let cutoff = duration_secs as f64 / 2.0;
    let steady = n >= STEADY_SAMPLING_MIN_CLIENTS;
    let cfg = FleetRunConfig {
        start_secs: 0.0,
        duration_secs,
        tick_secs: 1.0,
        sample_period_secs: 30.0,
        collect_arrivals: collect_log,
        steady_cutoff_secs: steady.then_some(cutoff),
    };
    let run = run_fleet_on(&Pool::with_jobs(jobs), &mut clients, &mut net, &mut pool, &cfg);

    let mut arms = Vec::new();
    for stack in [Stack::Sntp, Stack::Mntp, Stack::Ntpd] {
        let mut errs: Vec<f64> = Vec::new();
        let mut members = 0usize;
        if steady {
            for (i, samples) in run.steady_abs_ms.iter().enumerate() {
                if stack_for(i) != stack {
                    continue;
                }
                members += 1;
                errs.extend(samples.iter().map(|&e| e as f64));
            }
        } else {
            for (i, series) in run.true_error_ms.iter().enumerate() {
                if stack_for(i) != stack {
                    continue;
                }
                members += 1;
                errs.extend(
                    series.iter().filter(|(t, _)| *t >= cutoff).map(|(_, e)| e.abs()),
                );
            }
        }
        if members == 0 {
            continue;
        }
        errs.sort_by(f64::total_cmp);
        arms.push(FleetArmStats {
            name: stack.name(),
            clients: members,
            p50_ms: devtools::sketch::percentile_nearest_rank(&errs, 0.50),
            p90_ms: devtools::sketch::percentile_nearest_rank(&errs, 0.90),
            p99_ms: devtools::sketch::percentile_nearest_rank(&errs, 0.99),
            max_ms: errs.last().copied().unwrap_or(0.0),
        });
    }

    let mut arrivals = 0u64;
    let mut served = 0u64;
    let mut kod = 0u64;
    let mut dropped = 0u64;
    let mut peak_backlog = 0usize;
    for j in 0..SERVERS {
        if let Some(m) = net.server_model(j) {
            arrivals += m.stats.arrivals;
            served += m.stats.served;
            kod += m.stats.kod_sent;
            dropped += m.stats.dropped;
            peak_backlog = peak_backlog.max(m.stats.peak_backlog);
        }
    }
    let peak_rate = run.arrivals_per_sec.iter().copied().max().unwrap_or(0);
    let row = FleetTrialResult {
        n_clients: n,
        duration_secs,
        arms,
        arrivals,
        served,
        kod,
        dropped,
        peak_backlog,
        mean_rate: arrivals as f64 / duration_secs as f64,
        peak_rate,
        polls_sent: run.polls_sent,
    };
    (row, run.arrivals)
}

/// Convert a fleet arrival log into the [`ServerLog`] shape the §3.1
/// pipeline consumes. Hostnames are synthesized with the `mobile`
/// keyword (the whole fleet sits behind a wireless AP); ground-truth
/// fields not observable in this capture are zeroed.
pub fn arrivals_to_server_log(n_clients: usize, arrivals: &[FleetArrival]) -> ServerLog {
    let server = ServerProfile {
        id: "SIM",
        stratum: 2,
        ip_version: IpVersion::V4,
        unique_clients: n_clients as u64,
        total_measurements: arrivals.len() as u64,
        isp_internal: false,
    };
    let mut seen = std::collections::BTreeSet::new();
    let records = arrivals
        .iter()
        .map(|a| {
            seen.insert(a.client_id);
            LogRecord {
                client_id: a.client_id,
                hostname: format!("c{}.mobile.simfleet.example.net", a.client_id),
                request: a.request.clone(),
                received_at_secs: a.at.as_secs_f64(),
                true_provider: 0,
                true_ipv6: false,
                true_sntp: false,
                true_owd_ms: 0.0,
                true_clock_err_ms: 0.0,
            }
        })
        .collect();
    ServerLog { server, records, unique_clients: seen.len() as u64 }
}

/// Run the §3.1 pipeline over the collected log.
pub fn analyze_log(n_clients: usize, arrivals: &[FleetArrival]) -> FleetLogAnalysis {
    let log = arrivals_to_server_log(n_clients, arrivals);
    FleetLogAnalysis {
        n_clients,
        records: log.records.len(),
        clients_seen: log.unique_clients as usize,
        sntp_share: loganalysis::protocol::sntp_share(&log),
        global: loganalysis::global_interarrival(&log),
        per_client: loganalysis::per_client_interarrival(&log),
    }
}

/// Population sizes for one sweep.
pub fn sweep_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 100, 1000]
    } else {
        vec![1, 100, 1000, 10_000, 100_000, 1_000_000]
    }
}

/// Run the whole sweep serially.
pub fn run_sweep(seed: u64, quick: bool) -> FleetSweepResult {
    run_sweep_on(&Pool::with_jobs(1), seed, quick)
}

/// Run the sweep with trials fanned out over `pool`. Trials own all
/// their state and seeds, so the output is identical at any job count.
///
/// Small populations run as one task each (trial-level parallelism);
/// populations at the steady-sampling threshold and above run one at a
/// time with their kernel shards fanned across `pool.jobs()` workers
/// instead — at that size a single trial dominates the sweep, so
/// shard-level parallelism is the useful axis.
pub fn run_sweep_on(pool: &Pool, seed: u64, quick: bool) -> FleetSweepResult {
    let duration = if quick { 600 } else { 1800 };
    let (small, big): (Vec<usize>, Vec<usize>) = sweep_sizes(quick)
        .into_iter()
        .partition(|&n| n < STEADY_SAMPLING_MIN_CLIENTS);
    let tasks: Vec<Box<dyn FnOnce() -> (FleetTrialResult, Vec<FleetArrival>) + Send>> = small
        .into_iter()
        .map(|n| {
            let collect = n == 1000;
            Box::new(move || fleet_trial(n, seed, duration, collect, 1))
                as Box<dyn FnOnce() -> (FleetTrialResult, Vec<FleetArrival>) + Send>
        })
        .collect();
    let mut results = pool.invoke(tasks);
    for n in big {
        results.push(fleet_trial(n, seed, duration, false, pool.jobs()));
    }
    let mut trials = Vec::new();
    let mut log = None;
    for (row, arrivals) in results {
        if row.n_clients == 1000 {
            log = Some(analyze_log(row.n_clients, &arrivals));
        }
        trials.push(row);
    }
    let log = log.unwrap_or(FleetLogAnalysis {
        n_clients: 0,
        records: 0,
        clients_seen: 0,
        sntp_share: 0.0,
        global: None,
        per_client: None,
    });
    FleetSweepResult { trials, log }
}

fn render_summary(label: &str, s: &Option<InterarrivalSummary>, out: &mut String) {
    match s {
        Some(s) => out.push_str(&format!(
            "  {label}: mean={:.2} ms  p50={:.2}  p90={:.2}  p99={:.2}  sub-ms share={:.1}%  (n={})\n",
            s.mean_ms,
            s.p50_ms,
            s.p90_ms,
            s.p99_ms,
            s.sub_ms_share * 100.0,
            s.gaps
        )),
        None => out.push_str(&format!("  {label}: (no gaps)\n")),
    }
}

/// ASCII artifact body.
pub fn render(r: &FleetSweepResult) -> String {
    let mut out = String::new();
    out.push_str("Fleet sweep: N mixed clients vs a shared AP and a 4-server pool\n");
    out.push_str(
        "(bounded service queues; RATE kisses under load; steady-state = 2nd half)\n\n",
    );
    for t in &r.trials {
        out.push_str(&format!(
            "N={} clients, {} s, {} polls sent\n",
            t.n_clients, t.duration_secs, t.polls_sent
        ));
        out.push_str(&format!(
            "  server side: {} arrivals ({:.2}/s mean, {} peak/s), {} served, {} RATE, {} dropped, peak backlog {}\n",
            t.arrivals, t.mean_rate, t.peak_rate, t.served, t.kod, t.dropped, t.peak_backlog
        ));
        out.push_str(&format!(
            "  {:<16} {:>7} {:>12} {:>10} {:>10} {:>10}\n",
            "stack", "clients", "p50|err|ms", "p90 ms", "p99 ms", "max ms"
        ));
        for a in &t.arms {
            out.push_str(&format!(
                "  {:<16} {:>7} {:>12.2} {:>10.2} {:>10.2} {:>10.2}\n",
                a.name, a.clients, a.p50_ms, a.p90_ms, a.p99_ms, a.max_ms
            ));
        }
        out.push('\n');
    }
    let l = &r.log;
    out.push_str(&format!(
        "Server-log analysis of the N={} trial (simulated capture -> 3.1 pipeline)\n",
        l.n_clients
    ));
    out.push_str(&format!(
        "  {} records from {} distinct clients; packet-shape SNTP share {:.1}%\n",
        l.records,
        l.clients_seen,
        l.sntp_share * 100.0
    ));
    render_summary("global inter-arrival (herding view)", &l.global, &mut out);
    render_summary("per-client inter-arrival (poll view)", &l.per_client, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trial_reports_all_three_stacks() {
        let (row, _) = fleet_trial(10, 77, 120, false, 1);
        assert_eq!(row.n_clients, 10);
        assert_eq!(row.arms.len(), 3);
        assert_eq!(row.arms.iter().map(|a| a.clients).sum::<usize>(), 10);
        assert!(row.arrivals > 0);
    }

    #[test]
    fn trial_is_deterministic() {
        let (a, _) = fleet_trial(12, 5, 90, false, 1);
        let (b, _) = fleet_trial(12, 5, 90, false, 1);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn collected_log_feeds_pipeline() {
        let (_, arrivals) = fleet_trial(20, 9, 180, true, 1);
        assert!(!arrivals.is_empty());
        let analysis = analyze_log(20, &arrivals);
        assert!(analysis.records == arrivals.len());
        assert!(analysis.clients_seen > 0 && analysis.clients_seen <= 20);
        // Mix is 7/10 SNTP-shaped (naive + MNTP) and the classifier
        // votes per client: the share must reflect a majority of SNTP.
        assert!(analysis.sntp_share > 0.5);
    }

    #[test]
    fn render_mentions_every_trial() {
        // Miniature sweep through the public entry point shape.
        let (row1, _) = fleet_trial(1, 3, 60, false, 1);
        let (row2, arr) = fleet_trial(8, 3, 60, true, 1);
        let r = FleetSweepResult {
            trials: vec![row1, row2],
            log: analyze_log(8, &arr),
        };
        let txt = render(&r);
        assert!(txt.contains("N=1 clients"));
        assert!(txt.contains("N=8 clients"));
        assert!(txt.contains("SNTP share"));
    }
}
