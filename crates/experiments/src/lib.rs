//! # experiments
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, each returning a structured result plus an ASCII
//! rendering of the same rows/series the paper reports. The `repro`
//! binary runs everything and writes `results/`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — 19-server log summary |
//! | [`fig1`] | Figure 1 — min OWD per provider + CDFs |
//! | [`fig2`] | Figure 2 — SNTP vs NTP shares |
//! | [`fig4`] | Figure 4 — SNTP wired vs wireless, ± NTP correction |
//! | [`fig5`] | Figure 5 — SNTP offsets on a 4G network |
//! | [`fig6`] | Figure 6 — SNTP vs MNTP, wireless, NTP-corrected |
//! | [`fig7`] | Figure 7 — signals & selection plot |
//! | [`fig8`] | Figure 8 — SNTP vs MNTP, wireless, free-running |
//! | [`fig9and10`] | Figures 9/10 — SNTP wired vs MNTP wireless, ± correction |
//! | [`fig12`] | Figure 12 — 4-hour run with drift trend |
//! | [`table2`] | Table 2 — tuner configurations |
//! | [`fig11`] | Figure 11 — achievable offsets for Table 2 configs |
//! | [`extended`] | Beyond-paper: NTP (ntpd) as a third comparator |
//! | [`ablations`] | Beyond-paper: per-mechanism ablation suite |
//! | [`validation`] | Beyond-paper: estimator checks against ground truth |
//! | [`faultsweep`] | Beyond-paper: fault-injection survival grid |
//! | [`fleet`] | Beyond-paper: fleet-scale sweep + simulated server-log analysis |
//! | [`fullscale`] | Beyond-paper: the full 209M-record Table 1 regime, streamed in constant memory |
//! | [`servercore`] | Beyond-paper: batched server engine under fleet-shaped ingest |
//! | [`chaosfleet`] | Beyond-paper: regional fault timeline, degradation + recovery |
//!
//! Every experiment takes an explicit seed; the default seeds used by
//! `repro` are fixed so the committed EXPERIMENTS.md numbers regenerate
//! exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod chaosfleet;
pub mod extended;
pub mod faultsweep;
pub mod fleet;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9and10;
pub mod fullscale;
pub mod harness;
pub mod render;
pub mod repro;
pub mod servercore;
pub mod table1;
pub mod table2;
pub mod validation;

pub use harness::{paired_run, sntp_run, ClockMode, PairedRun, SntpRun};
