//! Figure 1: minimum OWDs of clients per service provider (box stats on
//! the left of the paper's figure, CDFs on the right), for the three
//! showcased servers AG1, JW2 and SU1.

use loganalysis::model::SERVERS;
use loganalysis::owd::OwdFilter;
use loganalysis::synth::generate_server_log;
use loganalysis::{figure1, Figure1Row, ProviderCategory, SynthConfig};

use crate::render;

/// One server's Figure 1 panel.
#[derive(Clone, Debug)]
pub struct Fig1Panel {
    /// Server id (AG1 / JW2 / SU1).
    pub server_id: &'static str,
    /// Per-provider rows.
    pub rows: Vec<Figure1Row>,
}

/// The full figure: three panels.
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// Panels in paper order.
    pub panels: Vec<Fig1Panel>,
}

/// Run the experiment. `scale` trades fidelity for runtime; 2_000 gives
/// a few hundred clients per provider on AG1.
pub fn run(seed: u64, scale: u64) -> Fig1Result {
    let cfg = SynthConfig { scale, duration_secs: 86_400 };
    let panels = ["AG1", "JW2", "SU1"]
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let server = SERVERS.iter().find(|s| s.id == *id).expect("known server");
            let log = generate_server_log(server, &cfg, seed + i as u64 * 31);
            Fig1Panel { server_id: id, rows: figure1(&log, &OwdFilter::default()) }
        })
        .collect();
    Fig1Result { panels }
}

/// Median of providers' median min-OWDs within one category, over all
/// panels (the summary statistic §3.1 quotes: 40/50/250/550 ms).
pub fn category_median(r: &Fig1Result, cat: ProviderCategory) -> f64 {
    let meds: Vec<f64> = r
        .panels
        .iter()
        .flat_map(|p| p.rows.iter())
        .filter(|row| row.category == cat && row.clients >= 3)
        .map(|row| row.min_owd.median)
        .collect();
    clocksim::stats::median(&meds)
}

/// Render all panels.
pub fn render(r: &Fig1Result) -> String {
    let mut out = String::from("Figure 1 — per-provider minimum OWDs (ms)\n");
    for panel in &r.panels {
        out.push_str(&format!("\nserver {}\n", panel.server_id));
        let rows: Vec<Vec<String>> = panel
            .rows
            .iter()
            .filter(|row| row.clients > 0)
            .map(|row| {
                vec![
                    row.provider.to_string(),
                    format!("{:?}", row.category),
                    row.clients.to_string(),
                    render::f1(row.min_owd.p25),
                    render::f1(row.min_owd.median),
                    render::f1(row.min_owd.p75),
                ]
            })
            .collect();
        out.push_str(&render::table(
            &["provider", "category", "clients", "p25", "median", "p75"],
            &rows,
        ));
    }
    out.push_str(&format!(
        "\ncategory medians (paper: cloud≈40, isp≈50, broadband≈250, mobile≈550):\n\
         cloud={:.0}  isp={:.0}  broadband={:.0}  mobile={:.0}\n",
        category_median(r, ProviderCategory::CloudHosting),
        category_median(r, ProviderCategory::Isp),
        category_median(r, ProviderCategory::Broadband),
        category_median(r, ProviderCategory::Mobile),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_ordering_holds() {
        let r = run(1, 2_000);
        let cloud = category_median(&r, ProviderCategory::CloudHosting);
        let isp = category_median(&r, ProviderCategory::Isp);
        let bb = category_median(&r, ProviderCategory::Broadband);
        let mobile = category_median(&r, ProviderCategory::Mobile);
        assert!(cloud < bb && isp < bb && bb < mobile, "{cloud} {isp} {bb} {mobile}");
        // Rough magnitudes from §3.1.
        assert!((20.0..90.0).contains(&cloud), "cloud={cloud}");
        assert!((300.0..800.0).contains(&mobile), "mobile={mobile}");
    }

    #[test]
    fn mobile_providers_have_wide_spread() {
        let r = run(2, 2_000);
        for panel in &r.panels {
            for row in panel.rows.iter().filter(|x| x.clients >= 20) {
                if row.category == ProviderCategory::Mobile {
                    let iqr = row.min_owd.p75 - row.min_owd.p25;
                    assert!(iqr > 100.0, "{}: iqr {iqr}", row.provider);
                }
            }
        }
    }

    #[test]
    fn render_mentions_all_panels() {
        let r = run(3, 20_000);
        let s = render(&r);
        assert!(s.contains("AG1") && s.contains("JW2") && s.contains("SU1"));
    }
}
