//! Ablations of MNTP's design choices (DESIGN.md §6): what does each
//! mechanism buy? Every ablation runs the same wireless head-to-head as
//! Figure 6 with one mechanism altered, and reports the accepted-offset
//! quality plus the network cost.

use clocksim::stats::Summary;
use clocksim::time::{SimDuration, SimTime};
use mntp::{HintGate, MntpConfig, TrendFilter};
use netsim::testbed::TestbedConfig;
use netsim::Testbed;
use sntp::perform_exchange;

use crate::harness::{default_pool, ClockMode};
use crate::render;

/// Which mechanisms are active in an ablation arm.
#[derive(Clone, Copy, Debug)]
pub struct Mechanisms {
    /// Wireless-hint gate active.
    pub gate: bool,
    /// Trend filter active.
    pub filter: bool,
    /// σ multiplier for both filters.
    pub sigma: f64,
    /// SNR-margin threshold, dB.
    pub snr_margin_db: f64,
    /// Per-sample drift re-estimation.
    pub reestimate: bool,
}

impl Mechanisms {
    /// Full MNTP baseline.
    pub fn full() -> Self {
        Mechanisms { gate: true, filter: true, sigma: 1.0, snr_margin_db: 20.0, reestimate: true }
    }
}

/// One ablation arm's outcome.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Arm label.
    pub label: String,
    /// Summary of |accepted offset| (or all offsets if the filter is
    /// off), ms.
    pub accepted: Summary,
    /// Samples taken / rejected / deferred.
    pub counts: (usize, usize, usize),
}

/// Run one arm over `duration` seconds of the Figure 6 configuration.
pub fn run_arm(label: &str, m: Mechanisms, seed: u64, duration: u64) -> AblationRow {
    let cfg = MntpConfig {
        snr_margin_min_db: m.snr_margin_db,
        filter_sigma: m.sigma,
        reestimate_drift: m.reestimate,
        ..MntpConfig::baseline(5.0)
    };
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::NtpCorrected.build(seed + 2);
    let mut gate = HintGate::new(&cfg);
    let mut filter = TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    let mut deferred = 0usize;
    let polls = duration / 5;
    for i in 0..=polls {
        let t = SimTime::ZERO + SimDuration::from_secs((i * 5) as i64);
        let hints = tb.hints(t);
        if m.gate && !gate.favorable(hints.as_ref()) {
            deferred += 1;
            continue;
        }
        let id = pool.pick();
        let Ok(done) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) else {
            continue;
        };
        let ms = done.sample.offset.as_millis_f64();
        if m.filter {
            if filter.offer(t.as_secs_f64(), ms) {
                accepted.push(ms.abs());
            } else {
                rejected += 1;
            }
        } else {
            accepted.push(ms.abs());
        }
    }
    AblationRow {
        label: label.to_string(),
        accepted: Summary::of(&accepted),
        counts: (accepted.len(), rejected, deferred),
    }
}

/// The standard ablation arms, in report order.
pub fn suite_arms() -> Vec<(&'static str, Mechanisms)> {
    vec![
        ("full MNTP", Mechanisms::full()),
        ("gate only (no filter)", Mechanisms { filter: false, ..Mechanisms::full() }),
        ("filter only (no gate)", Mechanisms { gate: false, ..Mechanisms::full() }),
        ("neither (plain SNTP)", Mechanisms { gate: false, filter: false, ..Mechanisms::full() }),
        ("SNR margin 10 dB", Mechanisms { snr_margin_db: 10.0, ..Mechanisms::full() }),
        ("SNR margin 25 dB", Mechanisms { snr_margin_db: 25.0, ..Mechanisms::full() }),
        ("no drift re-estimation", Mechanisms { reestimate: false, ..Mechanisms::full() }),
        ("filter σ = 2", Mechanisms { sigma: 2.0, ..Mechanisms::full() }),
    ]
}

/// Run the standard ablation suite (pool sized from `MNTP_JOBS` / the
/// machine).
pub fn run_suite(seed: u64, duration: u64) -> Vec<AblationRow> {
    run_suite_on(&devtools::par::Pool::from_env(), seed, duration)
}

/// Run the standard ablation suite over an explicit pool. Every arm is
/// an independent trial (own testbed, pool, clock, filter state), so
/// the fan-out is bit-identical to the serial loop in arm order.
pub fn run_suite_on(pool: &devtools::par::Pool, seed: u64, duration: u64) -> Vec<AblationRow> {
    pool.map(suite_arms(), |(label, m)| run_arm(label, m, seed, duration))
}

/// Render the suite.
pub fn render_suite(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations — what each MNTP mechanism buys (Figure 6 setting)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.counts.0.to_string(),
                r.counts.1.to_string(),
                r.counts.2.to_string(),
                render::f1(r.accepted.mean),
                render::f1(r.accepted.max),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["arm", "accepted", "rejected", "deferred", "mean|o|", "max|o|"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_mechanisms_contribute() {
        let rows = run_suite(901, 1800);
        let by = |label: &str| rows.iter().find(|r| r.label.contains(label)).unwrap();
        let full = by("full MNTP");
        let gate_only = by("gate only");
        let filter_only = by("filter only");
        let neither = by("neither");
        // Full beats either alone on worst case; both alone beat nothing.
        assert!(full.accepted.max <= gate_only.accepted.max + 1.0);
        assert!(full.accepted.max <= filter_only.accepted.max + 1.0);
        assert!(neither.accepted.max > 2.0 * full.accepted.max, "neither {} vs full {}", neither.accepted.max, full.accepted.max);
    }

    #[test]
    fn lower_snr_threshold_lets_more_noise_in() {
        let rows = run_suite(902, 1800);
        let by = |label: &str| rows.iter().find(|r| r.label.contains(label)).unwrap();
        let loose = by("10 dB");
        let full = by("full MNTP");
        // The looser gate defers less…
        assert!(loose.counts.2 < full.counts.2);
        // …and pays for it in sample quality (mean or max).
        assert!(
            loose.accepted.mean + 0.5 >= full.accepted.mean
                || loose.accepted.max >= full.accepted.max,
            "loose {:?} vs full {:?}",
            (loose.accepted.mean, loose.accepted.max),
            (full.accepted.mean, full.accepted.max)
        );
    }
}
