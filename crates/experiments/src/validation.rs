//! Model-validation experiments — checks the paper could not run because
//! it had no ground truth, and we can because the simulator does.
//!
//! * [`drift_estimation_accuracy`] — how close does MNTP's least-squares
//!   `estimateDrift` get to the oscillator's true skew, across a sweep
//!   of skews? (Validates Algorithm 1's core estimator.)
//! * [`temperature_step`] — the paper notes wired drift "is dependent on
//!   the temperature of the vendor-specific oscillator"; here the
//!   ambient temperature steps mid-run and MNTP's re-estimated trend
//!   must follow the changed drift.

use clocksim::temperature::TemperatureProfile;
use clocksim::time::{SimDuration, SimTime};
use clocksim::{ClockControl, OscillatorConfig, SimClock, SimRng};
use mntp::{Mntp, MntpAction, MntpConfig};
use netsim::Testbed;
use sntp::perform_exchange;

use crate::harness::default_pool;
use crate::render;

/// One row of the drift-estimation sweep.
#[derive(Clone, Copy, Debug)]
pub struct DriftRow {
    /// True oscillator skew, ppm.
    pub true_ppm: f64,
    /// MNTP's estimate after warmup, ppm.
    pub estimated_ppm: f64,
}

impl DriftRow {
    /// Estimation error, ppm. (Offset slope = −skew, so the estimator's
    /// sign is inverted relative to the oscillator's.)
    pub fn error_ppm(&self) -> f64 {
        self.estimated_ppm + self.true_ppm
    }
}

/// Warm MNTP up on a wired path against a clock with known skew and
/// report the drift estimate.
pub fn drift_estimation_accuracy(seed: u64) -> Vec<DriftRow> {
    let skews = [-50.0, -20.0, -5.0, 0.0, 5.0, 20.0, 50.0];
    skews
        .iter()
        .map(|&ppm| {
            let mut tb = Testbed::wired(seed);
            let mut pool = default_pool(seed + 1);
            let osc = OscillatorConfig::perfect().with_skew_ppm(ppm).build(SimRng::new(seed + 2));
            let mut clock = SimClock::new(osc, SimTime::ZERO);
            let cfg = MntpConfig {
                warmup_period_secs: 1800.0,
                warmup_wait_secs: 15.0,
                min_warmup_samples: 10,
                ..Default::default()
            };
            let mut engine = Mntp::new(cfg);
            let mut t_secs = 0u64;
            while t_secs <= 2000 {
                let t = SimTime::ZERO + SimDuration::from_secs(t_secs as i64);
                let now_local = clock.now(t);
                if let MntpAction::QueryMultiple(n) = engine.on_tick(now_local, None) {
                    let ids = pool.pick_distinct(n);
                    let offsets: Vec<f64> = ids
                        .into_iter()
                        .filter_map(|id| {
                            perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t)
                                .ok()
                                .map(|d| d.sample.offset.as_millis_f64())
                        })
                        .collect();
                    if offsets.is_empty() {
                        engine.on_query_failed(clock.now(t));
                    } else {
                        engine.on_warmup_round(clock.now(t), &offsets);
                    }
                }
                t_secs += 1;
            }
            DriftRow { true_ppm: ppm, estimated_ppm: engine.drift_ppm().unwrap_or(f64::NAN) }
        })
        .collect()
}

/// Render the drift sweep.
pub fn render_drift(rows: &[DriftRow]) -> String {
    let mut out = String::from(
        "Validation — MNTP drift estimator vs ground-truth oscillator skew\n\
         (offset slope = −skew, so a perfect estimate is the negated skew)\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:+.0}", r.true_ppm),
                format!("{:+.2}", r.estimated_ppm),
                format!("{:+.2}", r.error_ppm()),
            ]
        })
        .collect();
    out.push_str(&render::table(&["true skew (ppm)", "estimate (ppm)", "error (ppm)"], &table_rows));
    out
}

/// Result of the temperature-step experiment.
#[derive(Clone, Debug)]
pub struct TemperatureStepResult {
    /// Trend slope over the first (cool) hour, ppm.
    pub slope_before_ppm: f64,
    /// Trend slope over the last (hot) hour, ppm.
    pub slope_after_ppm: f64,
    /// Ground-truth rate change implied by the thermal coefficient, ppm.
    pub true_change_ppm: f64,
}

/// Run a wired free-running clock whose ambient temperature jumps 20 °C
/// at the half-way point; fit MNTP-accepted samples on each side.
pub fn temperature_step(seed: u64) -> TemperatureStepResult {
    let temp_coeff = 0.4; // ppm/°C — a poor phone crystal far from turnover
    let step_c = 20.0;
    let osc_cfg = OscillatorConfig {
        skew_ppm: 12.0,
        wander_sigma_ppm: 0.1,
        wander_tau_secs: 900.0,
        temp_coeff_ppm_per_c: temp_coeff,
        temp_ref_c: 25.0,
        temperature: TemperatureProfile::Steps(vec![(0.0, 25.0), (3600.0, 45.0)]),
    };
    let mut tb = Testbed::wired(seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = SimClock::new(osc_cfg.build(SimRng::new(seed + 2)), SimTime::ZERO);
    // Collect raw accepted samples with the baseline filter.
    let cfg = MntpConfig::baseline(5.0);
    let mut filter = mntp::TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
    let mut accepted: Vec<(f64, f64)> = Vec::new();
    for i in 0..(2 * 3600 / 5) {
        let t = SimTime::from_secs(i * 5);
        let id = pool.pick();
        if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
            let ms = done.sample.offset.as_millis_f64();
            if filter.offer(t.as_secs_f64(), ms) {
                accepted.push((t.as_secs_f64(), ms));
            }
        }
    }
    let before: Vec<(f64, f64)> =
        accepted.iter().copied().filter(|(t, _)| *t < 3300.0).collect();
    let after: Vec<(f64, f64)> =
        accepted.iter().copied().filter(|(t, _)| *t > 3900.0).collect();
    let slope = |pts: &[(f64, f64)]| {
        clocksim::fit::fit_line(pts).map(|f| f.slope * 1000.0).unwrap_or(f64::NAN)
    };
    TemperatureStepResult {
        slope_before_ppm: slope(&before),
        slope_after_ppm: slope(&after),
        true_change_ppm: temp_coeff * step_c,
    }
}

/// Render the temperature-step result.
pub fn render_temperature(r: &TemperatureStepResult) -> String {
    format!(
        "Validation — temperature step (25 → 45 °C at t = 1 h, 0.4 ppm/°C crystal)\n\n\
         trend slope before: {:+.2} ppm\n\
         trend slope after : {:+.2} ppm\n\
         measured change   : {:+.2} ppm (ground truth: −{:.1} ppm on the offset slope)\n",
        r.slope_before_ppm,
        r.slope_after_ppm,
        r.slope_after_ppm - r.slope_before_ppm,
        r.true_change_ppm
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_estimates_track_truth() {
        for row in drift_estimation_accuracy(141) {
            assert!(
                row.error_ppm().abs() < 3.0,
                "skew {} ppm estimated {} ppm",
                row.true_ppm,
                row.estimated_ppm
            );
        }
    }

    #[test]
    fn temperature_step_shifts_the_trend() {
        let r = temperature_step(142);
        let change = r.slope_after_ppm - r.slope_before_ppm;
        // Offset slope change = −(thermal rate change) = −8 ppm.
        assert!(
            (change + r.true_change_ppm).abs() < 3.0,
            "change {change} ppm vs expected −{} ppm",
            r.true_change_ppm
        );
    }
}
