//! Table 2: MNTP tuner output — parameter combinations, the RMSE of the
//! resulting offsets against a perfect clock, and the number of requests
//! each configuration emits.
//!
//! Paper rows (warmupPeriod, warmupWaitTime, regularWaitTime,
//! resetPeriod → RMSE, requests): (30, .25, 15, 240 → 13.08 ms, 239) …
//! (240, .084, 15, 240 → 8.9 ms, 2913): more tuning requests buy lower
//! RMSE, with diminishing returns — "MNTP performs well with only modest
//! tuning".

use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;
use tuner::{grid_search, record_trace, ParamGrid, SearchResult, Trace};

use crate::harness::ClockMode;
use crate::render;

/// The six configurations the paper's Table 2 prints.
pub const PAPER_CONFIGS: [(f64, f64, f64, f64); 6] = [
    (30.0, 0.25, 15.0, 240.0),
    (40.0, 0.25, 15.0, 240.0),
    (50.0, 0.25, 15.0, 240.0),
    (70.0, 0.25, 30.0, 240.0),
    (90.0, 0.084, 15.0, 240.0),
    (240.0, 0.084, 15.0, 240.0),
];

/// The reproduced Table 2.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// The recorded 4-hour trace the tuner analyzed.
    pub trace: Trace,
    /// Results for the paper's six configurations, in paper order.
    pub paper_rows: Vec<SearchResult>,
    /// Full grid-search results, best first.
    pub search: Vec<SearchResult>,
}

/// Record a 4-hour trace on the wireless testbed (free-running clock,
/// as in §5.2) and run the tuner over it.
pub fn run(seed: u64) -> Table2Result {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = crate::harness::default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let trace = record_trace(&mut tb, &mut pool, &mut clock, 4 * 3600, 5.0, 3);

    let base = MntpConfig::default();
    let search = grid_search(&base, &ParamGrid::paper_table2(), &trace);
    let paper_rows = PAPER_CONFIGS
        .iter()
        .map(|&(wp, ww, rw, rp)| {
            search
                .iter()
                .find(|r| r.params == (wp, ww, rw, rp))
                .cloned()
                .expect("paper config in grid")
        })
        .collect();
    Table2Result { trace, paper_rows, search }
}

/// Render the paper-style table.
pub fn render(r: &Table2Result) -> String {
    let mut out = String::from(
        "Table 2 — tuner configurations (paper RMSE: 13.08 → 8.9 ms as requests grow 239 → 2913)\n\n",
    );
    let rows: Vec<Vec<String>> = r
        .paper_rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            vec![
                (i + 1).to_string(),
                render::f1(row.params.0),
                format!("{:.3}", row.params.1),
                render::f1(row.params.2),
                render::f1(row.params.3),
                render::f2(row.rmse_ms),
                row.requests.to_string(),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["cfg", "warmupPeriod", "warmupWait", "regularWait", "resetPeriod", "RMSE(ms)", "requests"],
        &rows,
    ));
    out.push_str(&format!(
        "\nbest grid config: {:?} → RMSE {:.2} ms ({} requests)\n",
        r.search[0].params, r.search[0].rmse_ms, r.search[0].requests
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_trend_holds() {
        let r = run(81);
        // Requests grow with warmup length / shorter waits.
        let reqs: Vec<u64> = r.paper_rows.iter().map(|x| x.requests).collect();
        assert!(reqs[5] > reqs[0] * 4, "request growth: {reqs:?}");
        // The heaviest configuration beats the lightest on RMSE.
        let rmse: Vec<f64> = r.paper_rows.iter().map(|x| x.rmse_ms).collect();
        assert!(
            rmse[5] <= rmse[0] + 1.0,
            "RMSE should improve (or hold) with budget: {rmse:?}"
        );
        // All RMSEs land in the paper's magnitude (single to low double
        // digits of ms).
        for (i, v) in rmse.iter().enumerate() {
            assert!(*v < 40.0, "config {i} rmse {v}");
            assert!(*v > 0.1, "config {i} rmse {v}");
        }
    }

    #[test]
    fn modest_tuning_already_good() {
        // The paper's takeaway: config 1 is within ~50% of config 6.
        let r = run(82);
        let first = r.paper_rows[0].rmse_ms;
        let best = r.paper_rows[5].rmse_ms;
        assert!(first < best * 3.0 + 5.0, "first {first} best {best}");
    }

    #[test]
    fn render_has_six_rows() {
        let r = run(83);
        let s = render(&r);
        assert!(s.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count() >= 6);
        assert!(s.contains("RMSE"));
    }
}
