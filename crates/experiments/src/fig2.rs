//! Figure 2: percentage of clients using SNTP vs NTP — per server
//! (left) and per provider at one server (right).

use loganalysis::model::SERVERS;
use loganalysis::report::figure2_providers;
use loganalysis::synth::generate_server_log;
use loganalysis::{figure2, generate_all_logs, Figure2Row, SynthConfig};

use crate::render;

/// The reproduced Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// Per-server SNTP shares (left panel).
    pub per_server: Vec<Figure2Row>,
    /// Per-provider SNTP shares at one large public server (right
    /// panel; the paper uses SU1 — we use the largest population at the
    /// configured scale for statistical weight).
    pub per_provider: Vec<(&'static str, f64, usize)>,
    /// Which server the provider panel used.
    pub provider_panel_server: &'static str,
}

/// Run the experiment.
pub fn run(seed: u64, scale: u64) -> Fig2Result {
    let cfg = SynthConfig { scale, duration_secs: 86_400 };
    let logs = generate_all_logs(&cfg, seed);
    let per_server = figure2(&logs);
    // Provider panel: MW2 has the largest client population, giving the
    // per-provider split statistical meaning at reduced scale.
    let mw2 = SERVERS.iter().find(|s| s.id == "MW2").expect("MW2 exists");
    let log = generate_server_log(mw2, &cfg, seed ^ 0xF162);
    Fig2Result {
        per_server,
        per_provider: figure2_providers(&log),
        provider_panel_server: "MW2",
    }
}

/// Render both panels.
pub fn render(r: &Fig2Result) -> String {
    let mut out = String::from("Figure 2 — SNTP vs NTP shares\n\nper server:\n");
    let rows: Vec<Vec<String>> = r
        .per_server
        .iter()
        .map(|row| {
            vec![
                row.server_id.to_string(),
                row.clients.to_string(),
                format!("{:.0}%", row.sntp_fraction * 100.0),
                format!("{:.0}%", (1.0 - row.sntp_fraction) * 100.0),
            ]
        })
        .collect();
    out.push_str(&render::table(&["server", "clients", "SNTP", "NTP"], &rows));
    out.push_str(&format!("\nper provider (server {}):\n", r.provider_panel_server));
    let rows: Vec<Vec<String>> = r
        .per_provider
        .iter()
        .filter(|(_, _, n)| *n > 0)
        .map(|(name, frac, n)| {
            vec![name.to_string(), n.to_string(), format!("{:.0}%", frac * 100.0)]
        })
        .collect();
    out.push_str(&render::table(&["provider", "clients", "SNTP"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loganalysis::{ProviderCategory, PROVIDERS};

    #[test]
    fn majority_sntp_except_isp_internal() {
        let r = run(1, 5_000);
        for row in r.per_server.iter().filter(|x| x.clients >= 30) {
            let internal =
                SERVERS.iter().find(|s| s.id == row.server_id).unwrap().isp_internal;
            if internal {
                assert!(row.sntp_fraction < 0.5, "{}", row.server_id);
            } else {
                assert!(row.sntp_fraction > 0.5, "{}", row.server_id);
            }
        }
    }

    #[test]
    fn mobile_providers_over_95_percent_sntp() {
        let r = run(2, 2_000);
        let mut mobile_checked = 0;
        for (name, frac, n) in &r.per_provider {
            let cat = PROVIDERS.iter().find(|p| p.name == *name).unwrap().category;
            if cat == ProviderCategory::Mobile && *n >= 50 {
                assert!(*frac > 0.9, "{name}: {frac}");
                mobile_checked += 1;
            }
        }
        assert!(mobile_checked >= 2, "not enough mobile providers with data");
    }

    #[test]
    fn render_has_percentages() {
        let r = run(3, 20_000);
        let s = render(&r);
        assert!(s.contains('%'));
        assert!(s.contains("MW2"));
    }
}
