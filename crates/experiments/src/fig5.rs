//! Figure 5: SNTP clock offsets reported by a mobile host on a 4G
//! network (paper §3.3: Galaxy S4, 3-hour run, GPS-corrected baseline;
//! mean offset 192 ms, σ 55 ms, max 840 ms).

use clocksim::stats::Summary;
use netsim::cellular::CellularConfig;
use netsim::Testbed;

use crate::harness::{default_pool, sntp_run, ClockMode, SntpRun};
use crate::render;

/// The reproduced Figure 5.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// The run.
    pub run: SntpRun,
    /// Summary of |offset|, ms.
    pub abs_summary: Summary,
}

/// Run: 3 hours on the cellular testbed with a GPS-corrected clock
/// (modelled as NTP-corrected: held near truth).
pub fn run(seed: u64, duration: u64) -> Fig5Result {
    let mut tb = Testbed::cellular(CellularConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::NtpCorrected.build(seed + 2);
    let run = sntp_run(&mut tb, &mut pool, &mut clock, duration, 5.0);
    let abs = run.abs_offsets();
    Fig5Result { abs_summary: Summary::of(&abs), run }
}

/// Render.
pub fn render(r: &Fig5Result) -> String {
    let mut out = format!(
        "Figure 5 — SNTP offsets on a 4G network\n\
         (paper: mean 192 ms, σ 55 ms, max 840 ms)\n\
         measured: mean|o|={:.0} ms, σ={:.0} ms, max={:.0} ms over {} samples ({} losses)\n\n",
        r.abs_summary.mean,
        r.abs_summary.std,
        r.abs_summary.max,
        r.run.offsets.len(),
        r.run.losses
    );
    out.push_str(&render::scatter(
        "4G SNTP offsets over time (ms)",
        &[("offset", 'o', &r.run.offsets)],
        72,
        14,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lands_in_figure5_regime() {
        let r = run(21, 3 * 3600);
        assert!(
            (100.0..320.0).contains(&r.abs_summary.mean),
            "mean {}",
            r.abs_summary.mean
        );
        assert!(r.abs_summary.max > 450.0, "max {}", r.abs_summary.max);
        // Offsets are dominated by downlink bufferbloat → negative
        // (reply path slower makes the server look behind).
        let negative = r.run.offsets.iter().filter(|(_, o)| *o < 0.0).count();
        assert!(negative * 2 > r.run.offsets.len(), "downlink-dominated asymmetry");
    }

    #[test]
    fn worse_than_wired_by_an_order_of_magnitude() {
        let r = run(22, 1800);
        let mut tb = netsim::Testbed::wired(23);
        let mut pool = default_pool(24);
        let mut clock = ClockMode::NtpCorrected.build(25);
        let wired = sntp_run(&mut tb, &mut pool, &mut clock, 1800, 5.0);
        let wired_mean = clocksim::stats::mean(&wired.abs_offsets());
        assert!(r.abs_summary.mean > 8.0 * wired_mean);
    }
}
