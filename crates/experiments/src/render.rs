//! Plain-text rendering for experiment outputs: fixed-width tables and
//! a rough ASCII scatter for the time-series figures.

/// Render a fixed-width table: header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One scatter series: label, plot glyph, points.
pub type Series<'a> = (&'a str, char, &'a [(f64, f64)]);

/// Render one or more `(t, y)` series as an ASCII scatter plot. Each
/// series gets the corresponding glyph. Useful for eyeballing the shape
/// of the paper's time-series figures in a terminal.
pub fn scatter(title: &str, series: &[Series<'_>], width: usize, height: usize) -> String {
    let mut out = format!("{title}\n");
    let all: Vec<(f64, f64)> =
        series.iter().flat_map(|(_, _, pts)| pts.iter().copied()).collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        xmin = xmin.min(*x);
        xmax = xmax.max(*x);
        ymin = ymin.min(*y);
        ymax = ymax.max(*y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    // Zero line, if visible.
    if ymin < 0.0 && ymax > 0.0 {
        let zr = ((ymax) / (ymax - ymin) * (height - 1) as f64).round() as usize;
        if zr < height {
            for c in grid[zr].iter_mut() {
                *c = '·';
            }
        }
    }
    for (_, glyph, pts) in series {
        for (x, y) in pts.iter() {
            let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let row = (((ymax - y) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            if row < height && col < width {
                grid[row][col] = *glyph;
            }
        }
    }
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{ymax:>9.1} |")
        } else if r == height - 1 {
            format!("{ymin:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9}  {}{}\n",
        "",
        format_args!("{xmin:<12.0}"),
        format_args!("{:>w$.0}", xmax, w = width.saturating_sub(12))
    ));
    let legend: Vec<String> =
        series.iter().map(|(name, g, _)| format!("{g} = {name}")).collect();
    out.push_str(&format!("{:>9}  [{}]\n", "", legend.join(", ")));
    out
}

/// Format a float with fixed precision, for table cells.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    fn scatter_renders_bounds_and_legend() {
        let pts = [(0.0, 0.0), (10.0, 5.0), (20.0, -5.0)];
        let s = scatter("demo", &[("series", 'x', &pts)], 40, 10);
        assert!(s.contains("demo"));
        assert!(s.contains("x = series"));
        assert!(s.contains("5.0"));
        assert!(s.matches('x').count() >= 3);
    }

    #[test]
    fn scatter_empty_series() {
        let s = scatter("empty", &[("none", 'o', &[])], 10, 5);
        assert!(s.contains("(no data)"));
    }
}
