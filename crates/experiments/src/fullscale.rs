//! Beyond-paper: the paper's *full* 209M-measurement regime, streamed
//! end to end in constant memory.
//!
//! Every other artifact scales Table 1 down (default 1/1000) because
//! the batch pipeline materializes whole server logs. This pipeline
//! does not: `loganalysis::synth::stream_chunk` generates each server's
//! day in fixed-size record chunks (a chunk is a pure function of
//! `(seed, server, chunk)`), each chunk is absorbed into a
//! `loganalysis::stream::ChunkSummary` as it is produced, and the
//! global result is a **flat fold of chunk summaries in (server,
//! chunk) order** — chunks of one server stitch time-adjacently,
//! servers pool as independent streams.
//!
//! Determinism: chunk boundaries come from [`FullScaleConfig`], never
//! from worker counts; the fold order is fixed; chunk production is
//! embarrassingly parallel. Any `(shards, jobs)` decomposition
//! therefore emits byte-identical digits (`tests/parallel_equivalence.rs`
//! pins jobs=1 against jobs=8).
//!
//! Memory: no record, client table, or sample vector survives a chunk.
//! Live state is one summary per in-flight chunk plus two fold
//! accumulators — all sketch-sized, independent of the record count —
//! and the artifact prints the measured bound.

use devtools::par::Pool;
use loganalysis::model::{ProviderCategory, PROVIDERS, SERVERS};
use loganalysis::owd::OwdFilter;
use loganalysis::stream::ChunkSummary;
use loganalysis::synth::{chunk_plan, stream_chunk, StreamSynthConfig};

use crate::render;

/// Regime parameters. `chunk_records` is part of the result's identity
/// (it fixes chunk boundaries and therefore the sketch fold), so both
/// presets pin it explicitly.
#[derive(Clone, Debug)]
pub struct FullScaleConfig {
    /// Scale divisor on Table 1 counts (`1` = the full 209M records).
    pub scale: u64,
    /// Records per generation chunk.
    pub chunk_records: u64,
    /// Quantile sketch accuracy parameter.
    pub k: usize,
}

impl FullScaleConfig {
    /// The paper's full regime: every Table 1 record, 1M-record chunks.
    pub fn full() -> FullScaleConfig {
        FullScaleConfig { scale: 1, chunk_records: 1 << 20, k: devtools::sketch::DEFAULT_K }
    }

    /// Smoke-test regime: 1/20,000 of Table 1 in 4K-record chunks
    /// (same code path, multi-chunk plans, seconds of runtime).
    pub fn quick() -> FullScaleConfig {
        FullScaleConfig { scale: 20_000, chunk_records: 1 << 12, k: devtools::sketch::DEFAULT_K }
    }
}

/// One server's row of the Table-1-shaped section.
#[derive(Clone, Debug)]
pub struct ServerRow {
    /// Server id (Table 1).
    pub id: &'static str,
    /// Client population at this scale.
    pub clients: u64,
    /// Records streamed.
    pub records: u64,
    /// Chunks the day was cut into.
    pub chunks: u64,
    /// Request-weighted SNTP share at this server.
    pub sntp_share: f64,
    /// OWD samples surviving the filter.
    pub owd_kept: u64,
}

/// Everything the artifact renders.
#[derive(Clone, Debug)]
pub struct FullScaleResult {
    /// The regime that produced this result.
    pub cfg: FullScaleConfig,
    /// Per-server rows, Table 1 order.
    pub servers: Vec<ServerRow>,
    /// The whole-regime fold.
    pub global: ChunkSummary,
    /// Total records streamed.
    pub total_records: u64,
    /// Total client population.
    pub total_clients: u64,
    /// Largest single chunk-summary state observed, bytes.
    pub peak_chunk_bytes: usize,
    /// Fold accumulator state (server + global) at finish, bytes.
    pub accumulator_bytes: usize,
}

/// Stream the full regime on `pool`. The output is pool-invariant: the
/// pool only parallelizes chunk production, the fold below is always
/// the same flat (server, chunk)-ordered sequence.
pub fn run_on(pool: &Pool, seed: u64, cfg: &FullScaleConfig) -> FullScaleResult {
    let scfg = StreamSynthConfig {
        scale: cfg.scale,
        duration_secs: 86_400,
        chunk_records: cfg.chunk_records,
    };
    let filter = OwdFilter::default();
    // Wave width bounds live summaries; it is deliberately a constant
    // (never jobs-derived) so the memory bound is one number, but the
    // fold result would be identical at any width.
    const WAVE: u64 = 64;

    let mut global = ChunkSummary::new(cfg.k);
    let mut rows = Vec::with_capacity(SERVERS.len());
    let mut peak_chunk_bytes = 0usize;
    let mut server_acc_bytes = 0usize;
    for (si, server) in SERVERS.iter().enumerate() {
        let plan = chunk_plan(server, &scfg);
        let mut server_sum = ChunkSummary::new(cfg.k);
        let mut next = 0u64;
        while next < plan.chunks {
            let hi = (next + WAVE).min(plan.chunks);
            let wave: Vec<u64> = (next..hi).collect();
            let summaries = pool.map(wave, |chunk| {
                let mut s = ChunkSummary::new(cfg.k);
                stream_chunk(server, si, &scfg, seed, chunk, &mut |r| s.push(r, &filter));
                s
            });
            for s in &summaries {
                peak_chunk_bytes = peak_chunk_bytes.max(s.state_bytes());
                server_sum.merge_adjacent(s);
            }
            next = hi;
        }
        rows.push(ServerRow {
            id: server.id,
            clients: plan.n_clients as u64,
            records: server_sum.records,
            chunks: plan.chunks,
            sntp_share: server_sum.shapes.sntp_request_share(),
            owd_kept: server_sum.owd_kept,
        });
        server_acc_bytes = server_acc_bytes.max(server_sum.state_bytes());
        global.merge_union(&server_sum);
    }

    let total_records = rows.iter().map(|r| r.records).sum();
    let total_clients = rows.iter().map(|r| r.clients).sum();
    FullScaleResult {
        cfg: cfg.clone(),
        servers: rows,
        total_records,
        total_clients,
        peak_chunk_bytes,
        accumulator_bytes: server_acc_bytes + global.state_bytes(),
        global,
    }
}

fn cat_label(cat: ProviderCategory) -> &'static str {
    match cat {
        ProviderCategory::CloudHosting => "cloud",
        ProviderCategory::Isp => "isp",
        ProviderCategory::Broadband => "broadband",
        ProviderCategory::Mobile => "mobile",
    }
}

/// Render the artifact body.
pub fn render(r: &FullScaleResult) -> String {
    let mut out = String::new();
    out.push_str("Full-scale streaming regime: every Table 1 record in one pass\n");
    out.push_str(&format!(
        "scale divisor {}  chunk {} records  sketch k={}\n",
        r.cfg.scale, r.cfg.chunk_records, r.cfg.k
    ));
    out.push_str(&format!(
        "records streamed {}  client population {}  servers {}\n\n",
        r.total_records,
        r.total_clients,
        r.servers.len()
    ));

    out.push_str("Per-server counts (Table 1 shape)\n");
    let rows: Vec<Vec<String>> = r
        .servers
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.clients.to_string(),
                s.records.to_string(),
                s.chunks.to_string(),
                format!("{:.4}", s.sntp_share),
                s.owd_kept.to_string(),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["server", "clients", "records", "chunks", "sntp_req_share", "owd_kept"],
        &rows,
    ));

    let g = &r.global;
    out.push_str("\nProtocol classification (request-weighted)\n");
    out.push_str(&format!(
        "sntp {}  ntp {}  malformed {}  sntp share {:.4}  shape-vs-truth accuracy {:.6}\n",
        g.shapes.sntp,
        g.shapes.ntp,
        g.shapes.malformed,
        g.shapes.sntp_request_share(),
        g.shapes.accuracy()
    ));
    out.push_str(&format!(
        "hostname classification: provider {}  category-only {}  unknown {}  provider accuracy {:.6}\n",
        g.providers.per_provider.iter().sum::<u64>(),
        g.providers.category_only.iter().sum::<u64>(),
        g.providers.unknown,
        if g.providers.total() == 0 {
            0.0
        } else {
            g.providers.provider_correct as f64 / g.providers.total() as f64
        }
    ));

    out.push_str("\nFiltered OWD per provider (sketched quantiles, ms)\n");
    out.push_str(&format!(
        "records kept {}  discarded {}\n",
        r.global.owd_kept, r.global.owd_discarded
    ));
    let owd_rows: Vec<Vec<String>> = PROVIDERS
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let sk = r.global.owd_per_provider.get(i)?;
            if sk.is_empty() {
                return None;
            }
            Some(vec![
                p.name.to_string(),
                cat_label(p.category).to_string(),
                sk.count().to_string(),
                format!("{:.2}", sk.query(0.10)),
                format!("{:.2}", sk.query(0.50)),
                format!("{:.2}", sk.query(0.90)),
                format!("{:.2}", sk.query(0.99)),
            ])
        })
        .collect();
    out.push_str(&render::table(
        &["provider", "category", "samples", "p10", "p50", "p90", "p99"],
        &owd_rows,
    ));

    if let Some(s) = r.global.gaps.finish() {
        out.push_str("\nGlobal inter-arrival (pooled across servers)\n");
        out.push_str(&format!(
            "gaps {}  mean {:.4} ms  p50 {:.4} ms  p90 {:.4} ms  p99 {:.4} ms  sub-ms share {:.4}\n",
            s.gaps, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.sub_ms_share
        ));
    }

    out.push_str("\nMemory bound (sketch state only — independent of record count)\n");
    out.push_str(&format!(
        "peak chunk summary {} bytes  fold accumulators {} bytes  records per byte {:.0}\n",
        r.peak_chunk_bytes,
        r.accumulator_bytes,
        r.total_records as f64 / (r.peak_chunk_bytes + r.accumulator_bytes).max(1) as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FullScaleConfig {
        FullScaleConfig { scale: 100_000, chunk_records: 1 << 10, k: 64 }
    }

    #[test]
    fn streams_the_planned_record_counts_exactly() {
        let pool = Pool::with_jobs(2);
        let r = run_on(&pool, 2016, &tiny());
        assert_eq!(r.servers.len(), 19);
        let scfg = StreamSynthConfig {
            scale: 100_000,
            duration_secs: 86_400,
            chunk_records: 1 << 10,
        };
        for (row, server) in r.servers.iter().zip(SERVERS.iter()) {
            let plan = chunk_plan(server, &scfg);
            assert_eq!(row.records, plan.total_records, "server {}", row.id);
            assert_eq!(row.chunks, plan.chunks);
        }
        assert_eq!(r.total_records, r.global.records);
        assert_eq!(r.global.shapes.classified(), r.total_records);
    }

    #[test]
    fn render_is_pool_invariant() {
        let a = render(&run_on(&Pool::with_jobs(1), 7, &tiny()));
        let b = render(&run_on(&Pool::with_jobs(8), 7, &tiny()));
        assert_eq!(a, b);
        assert!(a.contains("Per-server counts"));
        assert!(a.contains("Memory bound"));
    }

    #[test]
    fn classification_is_near_perfect_on_synth_ground_truth() {
        let r = run_on(&Pool::with_jobs(4), 2016, &tiny());
        assert!((r.global.shapes.accuracy() - 1.0).abs() < 1e-9);
        assert_eq!(r.global.shapes.malformed, 0);
        // Public servers dominate, so the pooled stream is SNTP-heavy.
        assert!(r.global.shapes.sntp_request_share() > 0.5);
    }

    #[test]
    fn memory_bound_is_sketch_sized() {
        let r = run_on(&Pool::with_jobs(2), 2016, &tiny());
        // At k=64 the whole live state is well under 4 MB regardless of
        // how many records streamed through.
        assert!(r.peak_chunk_bytes < 2 << 20, "peak {}", r.peak_chunk_bytes);
        assert!(r.accumulator_bytes < 4 << 20, "acc {}", r.accumulator_bytes);
    }
}
