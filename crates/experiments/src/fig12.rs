//! Figure 12: the 4-hour experiment — SNTP vs MNTP on wireless with the
//! clock free-running, showing the fitted drift trend, MNTP's corrected
//! drift values, and the rejected outliers.
//!
//! Paper: SNTP offsets reach 392 ms; MNTP's clock-corrected drift values
//! stay under 20 ms throughout.

use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::fig6::{summarize, HeadToHead};
use crate::harness::{default_pool, paired_run, ClockMode};
use crate::render;

/// Run the 4-hour configuration (same head-to-head harness as Figure 8,
/// longer horizon).
pub fn run(seed: u64) -> HeadToHead {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let cfg = MntpConfig::baseline(5.0);
    let run = paired_run(&mut tb, None, &mut pool, &mut clock, 4 * 3600, 5.0, &cfg);
    summarize(run)
}

/// Render with the trend and corrected-drift series the paper plots.
pub fn render(r: &HeadToHead) -> String {
    let mut out = String::from(
        "Figure 12 — 4-hour run: SNTP vs MNTP, free-running clock\n\
         (paper: SNTP up to 392 ms; MNTP corrected drift < 20 ms)\n\n",
    );
    let corrected: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, _, e)| match e {
            crate::harness::MntpEvent::Accepted { corrected_ms: Some(c), .. } => Some((*t, *c)),
            _ => None,
        })
        .collect();
    let accepted: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, _, e)| match e {
            crate::harness::MntpEvent::Accepted { offset_ms, .. } => Some((*t, *offset_ms)),
            _ => None,
        })
        .collect();
    out.push_str(&render::scatter(
        "raw offsets + trend (ms)",
        &[
            ("sntp", '.', &r.run.sntp_offsets),
            ("mntp accepted", 'A', &accepted),
            ("trend", '-', &r.run.trend),
        ],
        72,
        16,
    ));
    out.push_str(&render::scatter(
        "MNTP corrected drift values (ms)",
        &[("corrected", 'c', &corrected)],
        72,
        10,
    ));
    let abs: Vec<f64> = corrected.iter().map(|(_, c)| c.abs()).collect();
    out.push_str(&format!(
        "corrected drift: mean|c|={:.2} ms, max|c|={:.2} ms; SNTP max {:.0} ms\n",
        clocksim::stats::mean(&abs),
        abs.iter().cloned().fold(0.0, f64::max),
        r.sntp_abs.max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_hour_shape() {
        let r = run(71);
        // SNTP suffers triple-digit spikes over 4 h.
        assert!(r.sntp_abs.max > 200.0, "sntp max {}", r.sntp_abs.max);
        // MNTP corrected drift stays within tens of ms.
        let corrected = r.run.mntp_corrected();
        assert!(corrected.len() > 100, "corrected n={}", corrected.len());
        let max_c = corrected.iter().map(|c| c.abs()).fold(0.0, f64::max);
        assert!(max_c < 40.0, "corrected max {max_c}");
    }

    #[test]
    fn trend_slope_matches_clock_skew() {
        let r = run(72);
        // Fit the recorded trend against the known −30 ppm skew (offset
        // slope = −skew).
        // Exclude the bootstrap transient; the settled trend must track
        // the −30 ppm skew.
        let settled: Vec<(f64, f64)> =
            r.run.trend.iter().copied().filter(|(t, _)| *t > 1800.0).collect();
        let fit = clocksim::fit::fit_line(&settled).unwrap();
        let slope_ppm = fit.slope * 1000.0;
        assert!(
            (slope_ppm + 30.0).abs() < 8.0,
            "trend slope {slope_ppm} ppm vs skew −30 ppm"
        );
    }

    #[test]
    fn rejections_continue_throughout() {
        let r = run(73);
        let rejected_times: Vec<f64> = r
            .run
            .mntp_events
            .iter()
            .filter_map(|(t, _, e)| match e {
                crate::harness::MntpEvent::Rejected { .. } => Some(*t),
                _ => None,
            })
            .collect();
        // Rejections in both halves of the run (the filter never wedges —
        // the §5.3 re-estimation fix at work).
        assert!(rejected_times.iter().any(|&t| t < 7200.0));
        assert!(rejected_times.iter().any(|&t| t > 7200.0));
        // And acceptances continue too.
        let accepted_late = r
            .run
            .mntp_events
            .iter()
            .filter(|(t, _, e)| {
                *t > 12_600.0 && matches!(e, crate::harness::MntpEvent::Accepted { .. })
            })
            .count();
        assert!(accepted_late > 5, "late acceptances {accepted_late}");
    }
}
