//! Beyond the paper: the fault sweep — how each client survives
//! episodic network failure.
//!
//! Every scenario in the grid injects one fault family through
//! [`netsim::FaultInjector`] while three clients discipline their own
//! clocks over otherwise-identical wireless conditions:
//!
//! * **SNTP (naive)** — poll every 5 s, step on every reply, no retry
//!   policy beyond the next poll. This is the §5.1 baseline; under an
//!   outage it freewheels at the raw oscillator skew.
//! * **MNTP (hardened)** — Algorithm 1 through
//!   [`mntp::run_full_faulted`]: health-tracked server selection,
//!   per-query timeout, kiss-o'-death honoring, and the holdover phase
//!   that freewheels on the *fitted* drift and re-syncs on recovery.
//! * **NTP (ntpd-sim)** — the full RFC 5905 mitigation pipeline via
//!   [`ntpd_sim::daemon::run_ntpd_faulted`]; its reachability registers
//!   and poll backoff are its native hardening.
//!
//! The table reports |true clock error| *during* the fault window and
//! *after* recovery time has passed, plus polls sent — the survival /
//! accuracy trade each client makes.

use clocksim::stats::Summary;
use clocksim::time::SimDuration;
use mntp::{ApplyMode, MntpConfig, RobustConfig};
use netsim::testbed::TestbedConfig;
use netsim::{FaultInjector, FaultKind, FaultSchedule, ServerSet, Testbed};
use ntpd_sim::daemon::{run_ntpd_faulted, NtpdConfig};

use crate::harness::{default_pool, ClockMode};
use crate::render;

/// Per-query round-trip budget shared by all three arms, seconds.
const TIMEOUT_SECS: f64 = 1.0;

/// One fault scenario of the sweep.
#[derive(Clone, Debug)]
pub struct FaultScenario {
    /// Scenario name (table row label).
    pub name: &'static str,
    /// The injected faults.
    pub schedule: FaultSchedule,
    /// `[start, end)` of the fault episode, seconds — the "during"
    /// metric window.
    pub during: (f64, f64),
    /// Post-recovery metrics start here (leaves room for holdover
    /// probe backoff plus a fresh warmup).
    pub post_from: f64,
}

/// The fault grid, positioned relative to `duration` so quick and full
/// horizons exercise the same phases (fault lands in the regular phase,
/// recovery window before the end).
pub fn scenario_grid(duration: u64) -> Vec<FaultScenario> {
    let d = duration as f64;
    let w0 = (d * 0.33).floor();
    let w1 = (d * 0.55).floor();
    let post = (d * 0.78).floor();
    let windowed = |name, kind| FaultScenario {
        name,
        schedule: FaultSchedule::none().window(w0, w1, kind),
        during: (w0, w1),
        post_from: post,
    };
    vec![
        FaultScenario {
            name: "clean",
            schedule: FaultSchedule::none(),
            during: (w0, w1),
            post_from: post,
        },
        windowed("loss-storm-80", FaultKind::LossStorm { loss_prob: 0.8 }),
        windowed("total-outage", FaultKind::ServerOutage { servers: ServerSet::All }),
        windowed(
            "kod-rate-limit",
            FaultKind::KissODeath { servers: ServerSet::All, min_poll_secs: 3600.0 },
        ),
        windowed(
            "delay-spike-asym",
            FaultKind::DelaySpike { extra_up_ms: 150.0, extra_down_ms: 0.0 },
        ),
        FaultScenario {
            name: "clock-step-400",
            schedule: FaultSchedule::none()
                .at(w0, FaultKind::ClockStep { offset_ms: -400.0 }),
            during: (w0, w1),
            post_from: post,
        },
        FaultScenario {
            name: "corrupt-duplicate",
            schedule: FaultSchedule::none()
                .window(w0, w1, FaultKind::CorruptReply { prob: 0.5 })
                .window(w0, w1, FaultKind::DuplicateReply { prob: 0.5 }),
            during: (w0, w1),
            post_from: post,
        },
    ]
}

/// One protocol's survival numbers for one scenario.
#[derive(Clone, Debug)]
pub struct FaultArmStats {
    /// Protocol label.
    pub name: &'static str,
    /// |true error| (ms) while the fault is active.
    pub during: Summary,
    /// |true error| (ms) after `post_from`.
    pub post: Summary,
    /// Polls sent over the whole run.
    pub polls: u64,
    /// Kiss-o'-death replies seen (only the hardened client counts
    /// them; the others fold KoD into generic failure).
    pub kod: u64,
}

/// One scenario row: the three arms over the same fault schedule.
#[derive(Clone, Debug)]
pub struct FaultScenarioResult {
    /// Scenario name.
    pub name: &'static str,
    /// The fault window the metrics split on.
    pub during: (f64, f64),
    /// SNTP / MNTP / ntpd survival stats.
    pub arms: Vec<FaultArmStats>,
}

fn split_errors(
    errors: &[(f64, f64)],
    during: (f64, f64),
    post_from: f64,
) -> (Summary, Summary) {
    let within = |lo: f64, hi: f64| -> Vec<f64> {
        errors.iter().filter(|(t, _)| *t >= lo && *t < hi).map(|(_, e)| e.abs()).collect()
    };
    (Summary::of(&within(during.0, during.1)), Summary::of(&within(post_from, f64::INFINITY)))
}

/// Naive SNTP under faults: poll every 5 s through the injector with
/// the shared timeout, step on every reply — no health tracking, no
/// backoff. What a stock mobile SNTP client does when the network
/// misbehaves.
fn sntp_arm(sc: &FaultScenario, seed: u64, duration: u64) -> FaultArmStats {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let mut faults = FaultInjector::new(sc.schedule.clone(), seed + 3);
    let mut d = mntp::SntpDiscipline::naive();
    let dcfg = mntp::DriverConfig {
        ticks: duration / 5,
        tick_secs: 5.0,
        sample_every_tick: true,
        timeout: Some(SimDuration::from_secs_f64(TIMEOUT_SECS)),
    };
    let run = mntp::drive(&mut d, &mut tb, &mut pool, &mut clock, Some(&mut faults), &dcfg);
    let (during, post) = split_errors(&run.true_error_ms, sc.during, sc.post_from);
    FaultArmStats { name: "SNTP (naive)", during, post, polls: run.polls_sent, kod: 0 }
}

/// The hardened MNTP client under faults.
fn mntp_arm(sc: &FaultScenario, seed: u64, duration: u64) -> FaultArmStats {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let mut faults = FaultInjector::new(sc.schedule.clone(), seed + 3);
    let cfg = MntpConfig {
        warmup_period_secs: 300.0,
        warmup_wait_secs: 10.0,
        regular_wait_secs: 30.0,
        reset_period_secs: duration as f64 + 1.0,
        apply_mode: ApplyMode::Step,
        ..Default::default()
    };
    let rcfg = RobustConfig { timeout_secs: TIMEOUT_SECS, ..Default::default() };
    let run =
        mntp::run_full_faulted(cfg, rcfg, &mut tb, &mut pool, &mut clock, &mut faults, duration, 1.0);
    let (during, post) = split_errors(&run.true_error_ms, sc.during, sc.post_from);
    let polls = run
        .records
        .iter()
        .filter(|r| !matches!(r.outcome, mntp::QueryOutcome::Deferred))
        .count() as u64;
    FaultArmStats { name: "MNTP (hardened)", during, post, polls, kod: run.kod_count() as u64 }
}

/// ntpd-sim under faults.
fn ntpd_arm(sc: &FaultScenario, seed: u64, duration: u64) -> FaultArmStats {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let mut faults = FaultInjector::new(sc.schedule.clone(), seed + 3);
    let run = run_ntpd_faulted(
        NtpdConfig::with_peers(vec![0, 1, 2, 3]),
        &mut tb,
        &mut pool,
        &mut clock,
        &mut faults,
        TIMEOUT_SECS,
        duration,
    );
    let (during, post) = split_errors(&run.true_error_ms, sc.during, sc.post_from);
    FaultArmStats { name: "NTP (ntpd-sim)", during, post, polls: run.polls_sent, kod: 0 }
}

/// Run the sweep: every scenario × every protocol, each run an
/// independent trial with its own seeds (pool sized from `MNTP_JOBS`).
pub fn run_sweep(seed: u64, duration: u64) -> Vec<FaultScenarioResult> {
    run_sweep_on(&devtools::par::Pool::from_env(), seed, duration)
}

/// [`run_sweep`] over an explicit pool. The 3 × |grid| runs are fully
/// independent trials, so they fan out as one task each; results come
/// back in grid order regardless of worker count.
pub fn run_sweep_on(
    pool: &devtools::par::Pool,
    seed: u64,
    duration: u64,
) -> Vec<FaultScenarioResult> {
    let grid = scenario_grid(duration);
    type Arm = Box<dyn FnOnce() -> FaultArmStats + Send>;
    let mut tasks: Vec<Arm> = Vec::new();
    for (i, sc) in grid.iter().enumerate() {
        let base = seed + 1000 * i as u64;
        let (a, b, c) = (sc.clone(), sc.clone(), sc.clone());
        tasks.push(Box::new(move || sntp_arm(&a, base, duration)));
        tasks.push(Box::new(move || mntp_arm(&b, base + 10, duration)));
        tasks.push(Box::new(move || ntpd_arm(&c, base + 20, duration)));
    }
    let mut flat = pool.invoke(tasks).into_iter();
    grid.iter()
        .map(|sc| FaultScenarioResult {
            name: sc.name,
            during: sc.during,
            arms: (0..3).map(|_| flat.next().expect("arm result")).collect(),
        })
        .collect()
}

/// Render the survival/accuracy table.
pub fn render_sweep(rows: &[FaultScenarioResult]) -> String {
    let mut out = String::from(
        "Fault sweep — |true clock error| (ms) during the fault window and after recovery\n\
         (each protocol disciplines its own free-running clock; same wireless conditions)\n\n",
    );
    let mut table_rows = Vec::new();
    for sc in rows {
        for arm in &sc.arms {
            table_rows.push(vec![
                sc.name.to_string(),
                arm.name.to_string(),
                render::f1(arm.during.median),
                render::f1(arm.during.p95),
                render::f1(arm.during.max),
                render::f1(arm.post.p95),
                render::f1(arm.post.max),
                arm.polls.to_string(),
                arm.kod.to_string(),
            ]);
        }
    }
    out.push_str(&render::table(
        &[
            "scenario",
            "protocol",
            "dur p50",
            "dur p95",
            "dur max",
            "post p95",
            "post max",
            "polls",
            "kod",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nReading guide: under total-outage, MNTP's holdover keeps the during-window error\n\
         near the residual of its fitted drift and re-syncs after the window (small post\n\
         error), while naive SNTP freewheels at the raw oscillator skew during the window.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_fault_families() {
        let grid = scenario_grid(5400);
        assert_eq!(grid.len(), 7);
        assert_eq!(grid[0].name, "clean");
        assert!(grid.iter().any(|s| s.name == "total-outage"));
        for sc in &grid {
            assert!(sc.during.0 < sc.during.1);
            assert!(sc.post_from > sc.during.1, "{}: post must start after the window", sc.name);
        }
    }

    #[test]
    fn sweep_outage_row_shows_mntp_surviving() {
        let pool = devtools::par::Pool::with_jobs(1);
        let rows = run_sweep_on(&pool, 77, 1800);
        assert_eq!(rows.len(), 7);
        let outage = rows.iter().find(|r| r.name == "total-outage").unwrap();
        let sntp = &outage.arms[0];
        let mntp = &outage.arms[1];
        assert!(sntp.during.n > 0 && mntp.during.n > 0);
        // Holdover bounds the during-window error below naive SNTP's
        // freewheel-plus-spikes, and the client re-syncs afterwards.
        assert!(
            mntp.during.max < sntp.during.max,
            "mntp during max {} vs sntp {}",
            mntp.during.max,
            sntp.during.max
        );
        assert!(
            mntp.post.p95 < sntp.during.max,
            "post p95 {} should sit below the outage degradation {}",
            mntp.post.p95,
            sntp.during.max
        );
        // The hardened client is also far cheaper on the network.
        assert!(mntp.polls < sntp.polls / 2, "polls {} vs {}", mntp.polls, sntp.polls);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let one = run_sweep_on(&devtools::par::Pool::with_jobs(1), 99, 1800);
        let eight = run_sweep_on(&devtools::par::Pool::with_jobs(8), 99, 1800);
        assert_eq!(render_sweep(&one), render_sweep(&eight));
    }
}
