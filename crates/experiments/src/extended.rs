//! Beyond the paper: the three-way comparison the authors list as
//! future work — SNTP vs MNTP vs a full NTP (`ntpd-sim`) client, plus a
//! vendor-policy demonstration (Android/Windows Mobile SNTP behaviour
//! from §2).

use clocksim::stats::Summary;
use clocksim::time::{SimDuration, SimTime};
use mntp::{ApplyMode, MntpConfig};
use netsim::testbed::TestbedConfig;
use netsim::Testbed;
use ntpd_sim::daemon::{run_ntpd, NtpdConfig};
use ntpd_sim::HuffPuff;
use sntp::vendor::{VendorAction, VendorClient, VendorPolicy};
use sntp::perform_exchange;

use crate::harness::{default_pool, sntp_run, ClockMode};
use crate::render;

/// Result of the three-way clock-error comparison: each protocol
/// disciplines its own clock; we compare the resulting *true* clock
/// errors.
#[derive(Clone, Debug)]
pub struct ThreeWayResult {
    /// |true error| summary for SNTP stepping its clock each sample, ms.
    pub sntp: Summary,
    /// |true error| summary for MNTP in apply mode, ms.
    pub mntp: Summary,
    /// |true error| summary for ntpd, ms.
    pub ntpd: Summary,
    /// Polls sent by each protocol (network load proxy).
    pub polls: (u64, u64, u64),
    /// Radio energy per protocol, J (Balasubramanian tail-cost model —
    /// the paper's §3.4 battery argument).
    pub energy_j: (f64, f64, f64),
}

/// Run all three protocols over the same wireless conditions (separate
/// testbed instances with identical configuration — each protocol's
/// transmissions perturb the channel it sees, so sharing one channel
/// would entangle them). Pool sized from `MNTP_JOBS` / the machine.
pub fn three_way(seed: u64, duration: u64) -> ThreeWayResult {
    three_way_on(&devtools::par::Pool::from_env(), seed, duration)
}

/// [`three_way`] over an explicit pool: the three protocol arms are
/// fully independent trials, so they fan out as three tasks.
pub fn three_way_on(pool: &devtools::par::Pool, seed: u64, duration: u64) -> ThreeWayResult {
    type Arm = Box<dyn FnOnce() -> (Summary, u64, f64) + Send>;
    let arms: Vec<Arm> = vec![
        Box::new(move || three_way_sntp_arm(seed, duration)),
        Box::new(move || three_way_mntp_arm(seed, duration)),
        Box::new(move || three_way_ntpd_arm(seed, duration)),
    ];
    let mut results = pool.invoke(arms).into_iter();
    let (sntp_summary, sntp_polls, sntp_energy) = results.next().expect("sntp arm");
    let (mntp_summary, mntp_polls, mntp_energy) = results.next().expect("mntp arm");
    let (ntpd_summary, ntpd_polls, ntpd_energy) = results.next().expect("ntpd arm");
    ThreeWayResult {
        sntp: sntp_summary,
        mntp: mntp_summary,
        ntpd: ntpd_summary,
        polls: (sntp_polls, mntp_polls, ntpd_polls),
        energy_j: (sntp_energy, mntp_energy, ntpd_energy),
    }
}

/// s of radio activity per exchange (≈ one RTT) for the three-way
/// energy accounting.
const THREE_WAY_AIRTIME: f64 = 0.15;

/// SNTP stepping its clock on every reply.
fn three_way_sntp_arm(seed: u64, duration: u64) -> (Summary, u64, f64) {
    use sntp::{EnergyMeter, EnergyModel};
    let airtime = THREE_WAY_AIRTIME;
    {
        let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
        let mut pool = default_pool(seed + 1);
        let mut clock = ClockMode::free_running_default().build(seed + 2);
        let mut meter = EnergyMeter::new(EnergyModel::default());
        let mut errors = Vec::new();
        let polls = duration / 5;
        for i in 0..=polls {
            let t = SimTime::ZERO + SimDuration::from_secs((i * 5) as i64);
            meter.record_transfer(t.as_secs_f64(), airtime);
            let id = pool.pick();
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
                // SNTP applies the offset directly.
                clocksim::ClockCommand::Step(done.sample.offset).apply(&mut clock, t);
            }
            errors.push(clock.true_error(t).as_millis_f64().abs());
        }
        (Summary::of(&errors), polls + 1, meter.total_j())
    }
}

/// MNTP full algorithm in Step mode.
fn three_way_mntp_arm(seed: u64, duration: u64) -> (Summary, u64, f64) {
    use sntp::{EnergyMeter, EnergyModel};
    let airtime = THREE_WAY_AIRTIME;
    {
        let mut tb = Testbed::wireless(TestbedConfig::default(), seed + 10);
        let mut pool = default_pool(seed + 11);
        let mut clock = ClockMode::free_running_default().build(seed + 12);
        let cfg = MntpConfig {
            warmup_period_secs: 600.0,
            warmup_wait_secs: 15.0,
            regular_wait_secs: 120.0,
            reset_period_secs: duration as f64 + 1.0,
            apply_mode: ApplyMode::Step,
            ..Default::default()
        };
        let run = mntp::run_full(cfg, &mut tb, &mut pool, &mut clock, duration, 1.0);
        let errors: Vec<f64> =
            run.true_error_ms.iter().map(|(_, e)| e.abs()).collect();
        let mut meter = EnergyMeter::new(EnergyModel::default());
        let mut polls = 0u64;
        for r in &run.records {
            if !matches!(r.outcome, mntp::QueryOutcome::Deferred) {
                polls += 1;
                meter.record_transfer(r.t_secs, airtime);
            }
        }
        (Summary::of(&errors), polls, meter.total_j())
    }
}

/// ntpd over the same conditions.
fn three_way_ntpd_arm(seed: u64, duration: u64) -> (Summary, u64, f64) {
    use sntp::{EnergyMeter, EnergyModel};
    let airtime = THREE_WAY_AIRTIME;
    {
        let mut tb = Testbed::wireless(TestbedConfig::default(), seed + 20);
        let mut pool = default_pool(seed + 21);
        let mut clock = ClockMode::free_running_default().build(seed + 22);
        let run = run_ntpd(NtpdConfig::with_peers(vec![0, 1, 2, 3]), &mut tb, &mut pool, &mut clock, duration);
        let errors: Vec<f64> = run.true_error_ms.iter().map(|(_, e)| e.abs()).collect();
        // ntpd polls arrive on the discipline's schedule; approximate the
        // energy from the poll count spread uniformly (an upper-ish bound:
        // staggered peers rarely share tails).
        let mut meter = EnergyMeter::new(EnergyModel::default());
        let spacing = duration as f64 / run.polls_sent.max(1) as f64;
        for i in 0..run.polls_sent {
            meter.record_transfer(i as f64 * spacing, airtime);
        }
        (Summary::of(&errors), run.polls_sent, meter.total_j())
    }
}

/// Render the three-way comparison.
pub fn render_three_way(r: &ThreeWayResult) -> String {
    let mut out = String::from(
        "Extended — SNTP vs MNTP vs NTP, each disciplining its own clock on wireless\n\
         (the comparison the paper defers to future work)\n\n",
    );
    let rows = vec![
        vec![
            "SNTP (step every reply)".to_string(),
            render::f1(r.sntp.median),
            render::f1(r.sntp.p95),
            render::f1(r.sntp.max),
            r.polls.0.to_string(),
            render::f1(r.energy_j.0),
        ],
        vec![
            "MNTP (Algorithm 1, step)".to_string(),
            render::f1(r.mntp.median),
            render::f1(r.mntp.p95),
            render::f1(r.mntp.max),
            r.polls.1.to_string(),
            render::f1(r.energy_j.1),
        ],
        vec![
            "NTP (ntpd-sim)".to_string(),
            render::f1(r.ntpd.median),
            render::f1(r.ntpd.p95),
            render::f1(r.ntpd.max),
            r.polls.2.to_string(),
            render::f1(r.energy_j.2),
        ],
    ];
    out.push_str(&render::table(
        &["protocol", "median|err|", "p95|err|", "max|err|", "polls", "radio J"],
        &rows,
    ));
    out
}

/// Vendor-policy demonstration: how far the clock wanders under
/// Android/Windows-Mobile SNTP policies over several days.
#[derive(Clone, Debug)]
pub struct VendorResult {
    /// Policy label → |true error| summary (ms) over the horizon.
    pub rows: Vec<(&'static str, Summary, u64)>,
}

/// Simulate a policy for `days` days on a wired path (the policies'
/// failure mode is cadence, not channel).
fn run_policy(label: &'static str, policy: VendorPolicy, days: u64, seed: u64) -> (&'static str, Summary, u64) {
    let mut tb = Testbed::wired(seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    use clocksim::ClockControl;
    let start_local = clock.now(SimTime::ZERO);
    let mut client = VendorClient::new(policy, start_local);
    let mut errors = Vec::new();
    let mut polls = 0u64;
    let horizon = days * 86_400;
    // Tick every 5 minutes — plenty for daily/weekly policies.
    let mut t_secs = 0u64;
    while t_secs <= horizon {
        let t = SimTime::from_secs(t_secs as i64);
        let now_local = clock.now(t);
        if client.on_tick(now_local) == VendorAction::SendRequest {
            polls += 1;
            let id = pool.pick();
            match perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
                Ok(done) => {
                    if let Some(cmd) = client.on_success(clock.now(t), &done.sample) {
                        cmd.apply(&mut clock, t);
                    }
                }
                Err(_) => client.on_failure(clock.now(t)),
            }
        }
        errors.push(clock.true_error(t).as_millis_f64().abs());
        t_secs += 300;
    }
    (label, Summary::of(&errors), polls)
}

/// Run the vendor demonstration (pool sized from `MNTP_JOBS`).
pub fn vendor_policies(seed: u64, days: u64) -> VendorResult {
    vendor_policies_on(&devtools::par::Pool::from_env(), seed, days)
}

/// [`vendor_policies`] over an explicit pool — one independent trial
/// per policy.
pub fn vendor_policies_on(pool: &devtools::par::Pool, seed: u64, days: u64) -> VendorResult {
    let specs: Vec<(&'static str, VendorPolicy, u64)> = vec![
        ("Android KitKat (daily, 5 s threshold)", VendorPolicy::android_kitkat(), seed),
        ("Windows Mobile (weekly)", VendorPolicy::windows_mobile(), seed + 100),
        ("5 s measurement poll", VendorPolicy::measurement(3600), seed + 200),
    ];
    VendorResult {
        rows: pool.map(specs, |(label, policy, s)| run_policy(label, policy, days, s)),
    }
}

/// Render the vendor table.
pub fn render_vendor(r: &VendorResult) -> String {
    let mut out = String::from("Extended — vendor SNTP policies over multiple days (§2 behaviours)\n\n");
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(label, s, polls)| {
            vec![
                label.to_string(),
                render::f1(s.median),
                render::f1(s.max),
                polls.to_string(),
            ]
        })
        .collect();
    out.push_str(&render::table(&["policy", "median|err| ms", "max|err| ms", "polls"], &rows));
    out
}

/// SNTP + huff-n'-puff vs MNTP: can a *transport-only* heuristic (NTP's
/// own one-sided-congestion filter) recover MNTP's win without any
/// cross-layer hints?
///
/// The clock free-runs, so the *true* offset is nonzero and moving —
/// this is what separates the two approaches: huff-n'-puff shrinks every
/// excess-delay sample toward **zero**, which also destroys genuine
/// offset signal, while MNTP's trend filter shrinks toward the **drift
/// line**. The metric is measurement error against ground truth.
#[derive(Clone, Debug)]
pub struct HuffPuffResult {
    /// |reported − true offset| summaries, ms.
    pub sntp: Summary,
    /// SNTP corrected by huff-n'-puff.
    pub huffpuff: Summary,
    /// MNTP accepted offsets.
    pub mntp: Summary,
}

/// Run the three estimators over the same wireless channel with a
/// free-running clock (the Figure 8 setting).
pub fn huffpuff_comparison(seed: u64, duration: u64) -> HuffPuffResult {
    use mntp::{HintGate, TrendFilter};
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::free_running_default().build(seed + 2);
    let cfg = MntpConfig::baseline(5.0);
    let mut gate = HintGate::new(&cfg);
    let mut filter = TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
    let mut hp = HuffPuff::new(1800.0);
    let mut sntp = Vec::new();
    let mut hpv = Vec::new();
    let mut mntp = Vec::new();
    let polls = duration / 5;
    for i in 0..=polls {
        let t = SimTime::ZERO + SimDuration::from_secs((i * 5) as i64);
        // Ground truth: the offset a perfect measurement would report is
        // −(client clock error); servers sit within ~1 ms of true time.
        let true_offset_ms = -clock.true_error(t).as_millis_f64();
        // SNTP and huff-n'-puff share one sample stream (huff-n'-puff is
        // a post-filter on the same exchanges).
        let id = pool.pick();
        if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
            let offset_s = done.sample.offset.as_seconds_f64();
            let delay_s = done.sample.delay.as_seconds_f64();
            sntp.push((offset_s * 1e3 - true_offset_ms).abs());
            let corrected = hp.correct(t.as_secs_f64(), offset_s, delay_s);
            hpv.push((corrected * 1e3 - true_offset_ms).abs());
        }
        // MNTP samples independently through its gate.
        let hints = tb.hints(t);
        if gate.favorable(hints.as_ref()) {
            let id = pool.pick();
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
                let ms = done.sample.offset.as_millis_f64();
                if filter.offer(t.as_secs_f64(), ms) {
                    mntp.push((ms - true_offset_ms).abs());
                }
            }
        }
    }
    HuffPuffResult {
        sntp: Summary::of(&sntp),
        huffpuff: Summary::of(&hpv),
        mntp: Summary::of(&mntp),
    }
}

/// Render the huff-n'-puff comparison.
pub fn render_huffpuff(r: &HuffPuffResult) -> String {
    let mut out = String::from(
        "Extended — SNTP vs SNTP+huff-n'-puff vs MNTP (reported |offset|, ms)
         (how much of MNTP's win can a transport-only heuristic recover?)

",
    );
    let rows = vec![
        vec!["SNTP (raw)".to_string(), render::f1(r.sntp.median), render::f1(r.sntp.p95), render::f1(r.sntp.max)],
        vec!["SNTP + huff-n'-puff".to_string(), render::f1(r.huffpuff.median), render::f1(r.huffpuff.p95), render::f1(r.huffpuff.max)],
        vec!["MNTP (accepted)".to_string(), render::f1(r.mntp.median), render::f1(r.mntp.p95), render::f1(r.mntp.max)],
    ];
    out.push_str(&render::table(&["estimator", "median", "p95", "max"], &rows));
    out
}

/// Fixed pacing vs the AIMD self-tuner (paper §7 future work): same
/// accuracy target, how many requests does each need?
#[derive(Clone, Debug)]
pub struct AutotuneResult {
    /// |true error| summary for the fixed-wait engine, ms.
    pub fixed: Summary,
    /// Queries (non-deferred instants) the fixed engine made.
    pub fixed_queries: usize,
    /// |true error| summary for the self-tuned engine, ms.
    pub tuned: Summary,
    /// Queries the self-tuned engine made.
    pub tuned_queries: usize,
    /// Tuner backoffs (diagnostics).
    pub backoffs: u64,
}

/// Run both engines (Step mode, same seeds) for `duration` seconds.
pub fn autotune_comparison(seed: u64, duration: u64) -> AutotuneResult {
    autotune_comparison_on(&devtools::par::Pool::from_env(), seed, duration)
}

/// [`autotune_comparison`] over an explicit pool — the fixed and tuned
/// engines are independent trials, so they run as a parallel pair.
pub fn autotune_comparison_on(
    pool: &devtools::par::Pool,
    seed: u64,
    duration: u64,
) -> AutotuneResult {
    use mntp::{run_full, run_full_autotuned, AutoTuneConfig};
    let cfg = MntpConfig {
        warmup_period_secs: 600.0,
        warmup_wait_secs: 15.0,
        regular_wait_secs: 60.0,
        reset_period_secs: duration as f64 + 1.0,
        apply_mode: ApplyMode::Step,
        ..Default::default()
    };
    let queries = |run: &mntp::driver::MntpRun| {
        run.records
            .iter()
            .filter(|r| !matches!(r.outcome, mntp::QueryOutcome::Deferred))
            .count()
    };
    let errors = |run: &mntp::driver::MntpRun| -> Vec<f64> {
        run.true_error_ms.iter().filter(|(t, _)| *t > 900.0).map(|(_, e)| e.abs()).collect()
    };

    let (fixed_run, (tuned_run, tuner)) = pool.join(
        {
            let cfg = cfg.clone();
            move || {
                let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
                let mut pool = default_pool(seed + 1);
                let mut clock = ClockMode::free_running_default().build(seed + 2);
                run_full(cfg, &mut tb, &mut pool, &mut clock, duration, 1.0)
            }
        },
        move || {
            let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
            let mut pool = default_pool(seed + 1);
            let mut clock = ClockMode::free_running_default().build(seed + 2);
            run_full_autotuned(
                cfg,
                AutoTuneConfig::default(),
                &mut tb,
                &mut pool,
                &mut clock,
                duration,
                1.0,
            )
        },
    );

    AutotuneResult {
        fixed: Summary::of(&errors(&fixed_run)),
        fixed_queries: queries(&fixed_run),
        tuned: Summary::of(&errors(&tuned_run)),
        tuned_queries: queries(&tuned_run),
        backoffs: tuner.decreases,
    }
}

/// Render the self-tuning comparison.
pub fn render_autotune(r: &AutotuneResult) -> String {
    let mut out = String::from(
        "Extended — fixed pacing vs AIMD self-tuning (§7 future work), clock error after warmup

",
    );
    let rows = vec![
        vec![
            "fixed 60 s wait".to_string(),
            render::f1(r.fixed.median),
            render::f1(r.fixed.p95),
            r.fixed_queries.to_string(),
        ],
        vec![
            "self-tuned (AIMD 15–1800 s)".to_string(),
            render::f1(r.tuned.median),
            render::f1(r.tuned.p95),
            r.tuned_queries.to_string(),
        ],
    ];
    out.push_str(&render::table(&["pacing", "median|err| ms", "p95|err| ms", "queries"], &rows));
    out.push_str(&format!("tuner backoffs: {}
", r.backoffs));
    out
}

/// One row of the scenario sweep.
#[derive(Clone, Debug)]
pub struct ScenarioRow {
    /// Scenario name.
    pub name: &'static str,
    /// |SNTP offset| summary, ms.
    pub sntp: Summary,
    /// |MNTP accepted offset| summary, ms.
    pub mntp: Summary,
    /// MNTP deferrals.
    pub deferred: usize,
}

/// Sweep MNTP vs SNTP across the named deployment scenarios (§7's
/// "wider variety of WiFi settings"), NTP-corrected clock. Pool sized
/// from `MNTP_JOBS`.
pub fn scenario_sweep(seed: u64, duration: u64) -> Vec<ScenarioRow> {
    scenario_sweep_on(&devtools::par::Pool::from_env(), seed, duration)
}

/// [`scenario_sweep`] over an explicit pool — one trial per scenario.
pub fn scenario_sweep_on(
    pool: &devtools::par::Pool,
    seed: u64,
    duration: u64,
) -> Vec<ScenarioRow> {
    use crate::harness::paired_run;
    pool.map(netsim::scenarios::all(), |sc| {
        let mut tb = Testbed::wireless(sc.config, seed);
        let mut pool = default_pool(seed + 1);
        let mut clock = ClockMode::NtpCorrected.build(seed + 2);
        let cfg = MntpConfig::baseline(5.0);
        let run = paired_run(&mut tb, None, &mut pool, &mut clock, duration, 5.0, &cfg);
        let mntp: Vec<f64> = run.mntp_accepted().iter().map(|o| o.abs()).collect();
        ScenarioRow {
            name: sc.name,
            sntp: Summary::of(&run.sntp_abs()),
            mntp: Summary::of(&mntp),
            deferred: run.mntp_deferrals(),
        }
    })
}

/// Render the scenario sweep.
pub fn render_scenarios(rows: &[ScenarioRow]) -> String {
    let mut out = String::from(
        "Extended — SNTP vs MNTP across deployment scenarios (reported |offset|, ms)

",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                render::f1(r.sntp.mean),
                render::f1(r.sntp.max),
                r.mntp.n.to_string(),
                render::f1(r.mntp.mean),
                render::f1(r.mntp.max),
                r.deferred.to_string(),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["scenario", "sntp mean", "sntp max", "mntp n", "mntp mean", "mntp max", "deferred"],
        &table_rows,
    ));
    out
}

/// Quick wired-vs-everything sanity series used by the repro binary.
pub fn wired_baseline(seed: u64, duration: u64) -> Summary {
    let mut tb = Testbed::wired(seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::NtpCorrected.build(seed + 2);
    let run = sntp_run(&mut tb, &mut pool, &mut clock, duration, 5.0);
    Summary::of(&run.abs_offsets())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffpuff_helps_but_mntp_wins() {
        let r = huffpuff_comparison(111, 3600);
        // The transport-only filter removes part of the congestion bias…
        assert!(
            r.huffpuff.p95 < r.sntp.p95,
            "huffpuff p95 {} vs sntp p95 {}",
            r.huffpuff.p95,
            r.sntp.p95
        );
        // …but on a drifting clock its shrink-toward-zero also destroys
        // genuine offset signal; MNTP's shrink-toward-trend wins.
        assert!(
            r.mntp.p95 < r.huffpuff.p95,
            "mntp p95 {} vs huffpuff p95 {}",
            r.mntp.p95,
            r.huffpuff.p95
        );
    }

    #[test]
    fn autotune_trades_requests_for_similar_accuracy() {
        let r = autotune_comparison(121, 2 * 3600);
        // The self-tuned engine must use meaningfully fewer queries…
        assert!(
            (r.tuned_queries as f64) < r.fixed_queries as f64 * 0.8,
            "tuned {} vs fixed {}",
            r.tuned_queries,
            r.fixed_queries
        );
        // …without giving up more than ~3x of the p95 clock error.
        assert!(
            r.tuned.p95 < r.fixed.p95 * 3.0 + 10.0,
            "tuned p95 {} vs fixed p95 {}",
            r.tuned.p95,
            r.fixed.p95
        );
    }

    #[test]
    fn scenario_sweep_shapes() {
        let rows = scenario_sweep(131, 1800);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            if r.mntp.n >= 5 {
                assert!(
                    r.mntp.max < r.sntp.max,
                    "{}: mntp max {} vs sntp max {}",
                    r.name,
                    r.mntp.max,
                    r.sntp.max
                );
            }
        }
        // The known limitation the paper defers ("perpetually unstable
        // network conditions"): on a persistently busy medium the hint
        // gate starves MNTP of samples.
        let lab = rows.iter().find(|r| r.name == "lab").unwrap();
        let cafe = rows.iter().find(|r| r.name == "cafe").unwrap();
        assert!(
            cafe.mntp.n * 3 < lab.mntp.n,
            "cafe should starve relative to lab: {} vs {}",
            cafe.mntp.n,
            lab.mntp.n
        );
        assert!(cafe.deferred > lab.deferred);
    }

    #[test]
    fn ntpd_and_mntp_beat_naive_sntp() {
        let r = three_way(101, 2 * 3600);
        // Naive SNTP stepping on wireless spikes wrecks the clock.
        assert!(
            r.sntp.p95 > 2.0 * r.mntp.p95,
            "sntp p95 {} vs mntp p95 {}",
            r.sntp.p95,
            r.mntp.p95
        );
        assert!(r.ntpd.p95 < r.sntp.p95, "ntpd {} vs sntp {}", r.ntpd.p95, r.sntp.p95);
        // MNTP uses far fewer polls than 5-second SNTP.
        assert!(r.polls.1 < r.polls.0 / 2, "polls {:?}", r.polls);
        // And correspondingly far less radio energy (§3.4's argument).
        assert!(
            r.energy_j.1 < r.energy_j.0 / 2.0,
            "energy {:?}",
            r.energy_j
        );
    }

    #[test]
    fn android_policy_lets_clock_wander_between_daily_polls() {
        let r = vendor_policies(102, 3);
        let android = &r.rows[0];
        // 30 ppm accumulates ≈ 2.6 s/day; threshold 5 s means the clock
        // can sit seconds off before Android even reacts.
        assert!(android.1.max > 1_000.0, "android max {}", android.1.max);
        // Weekly Windows Mobile is worse.
        let winmo = &r.rows[1];
        assert!(winmo.1.max >= android.1.max * 0.8);
        // The hourly measurement poll keeps things tight.
        let hourly = &r.rows[2];
        assert!(hourly.1.max < 300.0, "hourly max {}", hourly.1.max);
    }
}
