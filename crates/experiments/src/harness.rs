//! Shared experiment machinery: clock setups, the plain SNTP sampler,
//! and the paired SNTP+MNTP sampler that reproduces the paper's
//! simultaneous head-to-head runs.

use clocksim::time::{SimDuration, SimTime};
use clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp::{HintGate, MntpConfig, TrendFilter};
use netsim::{Testbed, WirelessHints};
use sntp::{perform_exchange, PoolConfig, ServerPool};

/// How the target node's system clock behaves during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// "NTP clock correction" on: the clock is held within a few ms of
    /// true time (the paper keeps ntpd disciplining the Macbook).
    NtpCorrected,
    /// Correction suspended: the clock free-runs at the given skew, ppm.
    FreeRunning {
        /// Constant oscillator skew, ppm ×10 (integer so the mode stays
        /// `Eq`/hashable; 125 = 12.5 ppm).
        skew_tenth_ppm: i32,
    },
}

impl ClockMode {
    /// The paper's free-running laptop: ~30 ppm effective drift (its
    /// 1-hour uncorrected traces drift by ≈100 ms).
    pub fn free_running_default() -> Self {
        ClockMode::FreeRunning { skew_tenth_ppm: 300 }
    }

    /// Build the clock.
    pub fn build(self, seed: u64) -> SimClock {
        match self {
            ClockMode::NtpCorrected => {
                // Disciplined clock: tiny residual wobble is modelled by
                // a near-zero-skew oscillator with small wander.
                let cfg = OscillatorConfig {
                    skew_ppm: 0.0,
                    wander_sigma_ppm: 0.6,
                    wander_tau_secs: 120.0,
                    temp_coeff_ppm_per_c: 0.0,
                    temp_ref_c: 25.0,
                    temperature: clocksim::temperature::TemperatureProfile::room(),
                };
                SimClock::new(cfg.build(SimRng::new(seed)), SimTime::ZERO)
            }
            ClockMode::FreeRunning { skew_tenth_ppm } => {
                let osc = OscillatorConfig::laptop()
                    .with_skew_ppm(skew_tenth_ppm as f64 / 10.0)
                    .build(SimRng::new(seed));
                SimClock::new(osc, SimTime::ZERO)
            }
        }
    }
}

/// Default pool for the experiments.
pub fn default_pool(seed: u64) -> ServerPool {
    ServerPool::new(PoolConfig::default(), seed)
}

/// A plain SNTP sampling run: poll every `poll_secs`, record every
/// reported offset.
#[derive(Clone, Debug, Default)]
pub struct SntpRun {
    /// `(t_secs, reported offset ms)` for every completed exchange.
    pub offsets: Vec<(f64, f64)>,
    /// Failed exchanges (losses/timeouts).
    pub losses: u64,
    /// `(t_secs, true clock error ms)` ground truth.
    pub true_error_ms: Vec<(f64, f64)>,
}

impl SntpRun {
    /// Offset magnitudes, ms.
    pub fn abs_offsets(&self) -> Vec<f64> {
        self.offsets.iter().map(|(_, o)| o.abs()).collect()
    }
}

/// Run plain SNTP for `duration_secs`.
pub fn sntp_run(
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    poll_secs: f64,
) -> SntpRun {
    let mut run = SntpRun::default();
    let polls = (duration_secs as f64 / poll_secs).floor() as u64;
    for i in 0..=polls {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * poll_secs);
        let id = pool.pick();
        match perform_exchange(testbed, pool.server_mut(id), clock, t) {
            Ok(done) => run.offsets.push((t.as_secs_f64(), done.sample.offset.as_millis_f64())),
            Err(_) => run.losses += 1,
        }
        run.true_error_ms.push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
    }
    run
}

/// One MNTP event in a paired run.
#[derive(Clone, Debug, PartialEq)]
pub enum MntpEvent {
    /// Gate deferred the query.
    Deferred,
    /// Exchange lost.
    Failed,
    /// Sample accepted; `corrected` is offset − trend prediction (the
    /// residual a drift-corrected clock would show), absent before a
    /// trend exists.
    Accepted {
        /// Raw reported offset, ms.
        offset_ms: f64,
        /// Offset minus trend prediction, ms.
        corrected_ms: Option<f64>,
    },
    /// Sample rejected by the trend filter.
    Rejected {
        /// The rejected offset, ms.
        offset_ms: f64,
    },
}

/// The paired SNTP + MNTP run of the paper's §5.1/§5.2 experiments:
/// both clients sample the same host clock over the same channel.
#[derive(Clone, Debug, Default)]
pub struct PairedRun {
    /// SNTP side: `(t_secs, offset ms)`.
    pub sntp_offsets: Vec<(f64, f64)>,
    /// SNTP losses.
    pub sntp_losses: u64,
    /// MNTP side: `(t_secs, hints, event)`.
    pub mntp_events: Vec<(f64, Option<WirelessHints>, MntpEvent)>,
    /// Trend predictions over time `(t_secs, predicted offset ms)`.
    pub trend: Vec<(f64, f64)>,
    /// Ground-truth clock error `(t_secs, ms)`.
    pub true_error_ms: Vec<(f64, f64)>,
}

impl PairedRun {
    /// Accepted MNTP offsets, ms.
    pub fn mntp_accepted(&self) -> Vec<f64> {
        self.mntp_events
            .iter()
            .filter_map(|(_, _, e)| match e {
                MntpEvent::Accepted { offset_ms, .. } => Some(*offset_ms),
                _ => None,
            })
            .collect()
    }

    /// Corrected (trend-residual) MNTP offsets, ms.
    pub fn mntp_corrected(&self) -> Vec<f64> {
        self.mntp_events
            .iter()
            .filter_map(|(_, _, e)| match e {
                MntpEvent::Accepted { corrected_ms: Some(c), .. } => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// Rejected MNTP offsets, ms.
    pub fn mntp_rejected(&self) -> Vec<f64> {
        self.mntp_events
            .iter()
            .filter_map(|(_, _, e)| match e {
                MntpEvent::Rejected { offset_ms } => Some(*offset_ms),
                _ => None,
            })
            .collect()
    }

    /// Count of deferred MNTP query instants.
    pub fn mntp_deferrals(&self) -> usize {
        self.mntp_events.iter().filter(|(_, _, e)| *e == MntpEvent::Deferred).count()
    }

    /// SNTP offset magnitudes.
    pub fn sntp_abs(&self) -> Vec<f64> {
        self.sntp_offsets.iter().map(|(_, o)| o.abs()).collect()
    }
}

/// Run SNTP and MNTP (the §5.1 baseline configuration: gate + filter,
/// no phases, no drift correction) side by side. `mntp_testbed` may be
/// the same testbed (shared channel) or a different one — the paper's
/// Figures 9/10 compare SNTP on a *wired* network against MNTP on a
/// *wireless* one, hence two testbeds.
#[allow(clippy::too_many_arguments)]
pub fn paired_run(
    sntp_testbed: &mut Testbed,
    mut mntp_testbed: Option<&mut Testbed>,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    poll_secs: f64,
    cfg: &MntpConfig,
) -> PairedRun {
    let mut gate = HintGate::new(cfg);
    let mut filter = TrendFilter::new(cfg.filter_sigma, cfg.reestimate_drift);
    let mut run = PairedRun::default();
    let polls = (duration_secs as f64 / poll_secs).floor() as u64;
    for i in 0..=polls {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * poll_secs);
        let t_secs = t.as_secs_f64();

        // --- SNTP side: polls unconditionally ---
        let id = pool.pick();
        match perform_exchange(sntp_testbed, pool.server_mut(id), clock, t) {
            Ok(done) => run.sntp_offsets.push((t_secs, done.sample.offset.as_millis_f64())),
            Err(_) => run.sntp_losses += 1,
        }

        // --- MNTP side: same channel unless a second testbed is given ---
        let tb: &mut Testbed = match mntp_testbed.as_deref_mut() {
            Some(other) => other,
            None => &mut *sntp_testbed,
        };
        let hints = tb.hints(t);
        let event = if !gate.favorable(hints.as_ref()) {
            MntpEvent::Deferred
        } else {
            let id = pool.pick();
            match perform_exchange(tb, pool.server_mut(id), clock, t) {
                Ok(done) => {
                    let ms = done.sample.offset.as_millis_f64();
                    let predicted = filter.predict(t_secs);
                    if filter.offer(t_secs, ms) {
                        MntpEvent::Accepted {
                            offset_ms: ms,
                            corrected_ms: predicted.map(|p| ms - p),
                        }
                    } else {
                        MntpEvent::Rejected { offset_ms: ms }
                    }
                }
                Err(_) => MntpEvent::Failed,
            }
        };
        run.mntp_events.push((t_secs, hints, event));

        run.true_error_ms.push((t_secs, clock.true_error(t).as_millis_f64()));
        if let Some(p) = filter.predict(t_secs) {
            run.trend.push((t_secs, p));
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testbed::TestbedConfig;

    #[test]
    fn sntp_run_records_offsets_and_truth() {
        let mut tb = Testbed::wired(1);
        let mut pool = default_pool(2);
        let mut clock = ClockMode::NtpCorrected.build(3);
        let run = sntp_run(&mut tb, &mut pool, &mut clock, 600, 5.0);
        assert!(run.offsets.len() > 110);
        assert_eq!(run.true_error_ms.len(), 121);
        // NTP-corrected clock: truth stays within a few ms.
        assert!(run.true_error_ms.iter().all(|(_, e)| e.abs() < 10.0));
    }

    #[test]
    fn free_running_clock_drifts() {
        let mut tb = Testbed::wired(4);
        let mut pool = default_pool(5);
        let mut clock = ClockMode::free_running_default().build(6);
        let run = sntp_run(&mut tb, &mut pool, &mut clock, 3600, 5.0);
        let last = run.true_error_ms.last().unwrap().1;
        // 30 ppm for an hour ≈ +108 ms.
        assert!(last > 80.0, "drift {last}");
    }

    #[test]
    fn paired_run_shares_channel_and_splits_verdicts() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 7);
        let mut pool = default_pool(8);
        let mut clock = ClockMode::NtpCorrected.build(9);
        let cfg = MntpConfig::baseline(5.0);
        let run = paired_run(&mut tb, None, &mut pool, &mut clock, 1800, 5.0, &cfg);
        assert!(!run.sntp_offsets.is_empty());
        assert!(run.mntp_deferrals() > 0);
        assert!(!run.mntp_accepted().is_empty());
        // MNTP accepted max should beat SNTP max decisively.
        let sntp_max = run.sntp_abs().into_iter().fold(0.0f64, f64::max);
        let mntp_max = run.mntp_accepted().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(sntp_max > 2.0 * mntp_max, "sntp={sntp_max} mntp={mntp_max}");
    }

    #[test]
    fn paired_run_with_separate_testbeds() {
        let mut wired = Testbed::wired(10);
        let mut wireless = Testbed::wireless(TestbedConfig::default(), 11);
        let mut pool = default_pool(12);
        let mut clock = ClockMode::NtpCorrected.build(13);
        let cfg = MntpConfig::baseline(5.0);
        let run = paired_run(
            &mut wired,
            Some(&mut wireless),
            &mut pool,
            &mut clock,
            900,
            5.0,
            &cfg,
        );
        // SNTP side is wired → no hints recorded there; MNTP side sees
        // wireless hints.
        assert!(run.mntp_events.iter().any(|(_, h, _)| h.is_some()));
        assert!(run.sntp_losses < 10);
    }
}
