//! Figures 9 and 10: SNTP on a **wired** network vs MNTP on a
//! **wireless** network — with NTP correction (Fig. 9) and without
//! (Fig. 10).
//!
//! The paper's point: even handed a wired path, SNTP still reports
//! offsets up to ~50 ms (pool-server error and backbone spikes pass
//! straight through), while MNTP on a hostile wireless channel holds
//! ~20 ms by deferring and filtering.

use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::fig6::{render_with, summarize, HeadToHead};
use crate::harness::{default_pool, paired_run, ClockMode};

/// Run the cross-medium comparison. `corrected` selects Figure 9
/// (true) or Figure 10 (false).
pub fn run(seed: u64, duration: u64, corrected: bool) -> HeadToHead {
    let mut wired = Testbed::wired(seed);
    let mut wireless = Testbed::wireless(TestbedConfig::default(), seed + 1);
    let mut pool = default_pool(seed + 2);
    let mode =
        if corrected { ClockMode::NtpCorrected } else { ClockMode::free_running_default() };
    let mut clock = mode.build(seed + 3);
    let cfg = MntpConfig::baseline(5.0);
    let run = paired_run(
        &mut wired,
        Some(&mut wireless),
        &mut pool,
        &mut clock,
        duration,
        5.0,
        &cfg,
    );
    summarize(run)
}

/// Render Figure 9.
pub fn render_fig9(r: &HeadToHead) -> String {
    render_with(
        r,
        "Figure 9 — SNTP (wired) vs MNTP (wireless), NTP-corrected clock",
        "(paper: wired SNTP still up to ~50 ms; wireless MNTP ~20 ms)",
    )
}

/// Render Figure 10.
pub fn render_fig10(r: &HeadToHead) -> String {
    render_with(
        r,
        "Figure 10 — SNTP (wired) vs MNTP (wireless), free-running clock",
        "(paper: wired SNTP up to ~50 ms off the drift; MNTP hugs the trend)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_wired_sntp_has_tens_of_ms_spikes() {
        let r = run(61, 3600, true);
        // Wired SNTP: tight most of the time…
        assert!(r.sntp_abs.median < 10.0, "median {}", r.sntp_abs.median);
        // …but the max still reaches tens of ms (false tickers, spikes).
        assert!(r.sntp_abs.max > 15.0, "max {}", r.sntp_abs.max);
        assert!(r.sntp_abs.max < 150.0, "max {}", r.sntp_abs.max);
    }

    #[test]
    fn fig9_mntp_on_wireless_stays_comparable() {
        let r = run(62, 3600, true);
        // MNTP on hostile wireless holds the same order of magnitude as
        // wired SNTP's max — the paper's headline for this figure.
        assert!(
            r.mntp_abs.max < r.sntp_abs.max * 2.5 && r.mntp_abs.max < 80.0,
            "mntp max {} vs sntp max {}",
            r.mntp_abs.max,
            r.sntp_abs.max
        );
    }

    #[test]
    fn fig10_free_running_drift_visible_in_both() {
        let r = run(63, 3600, false);
        // Both series drift together; MNTP residuals stay small.
        let corrected = r.run.mntp_corrected();
        let abs: Vec<f64> = corrected.iter().map(|c| c.abs()).collect();
        assert!(clocksim::stats::mean(&abs) < 10.0, "resid {}", clocksim::stats::mean(&abs));
    }
}
