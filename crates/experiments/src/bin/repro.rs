//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p experiments --bin repro              # everything
//! cargo run --release -p experiments --bin repro -- fig6 fig8 # a subset
//! cargo run --release -p experiments --bin repro -- --quick   # short horizons
//! ```
//!
//! Results are printed and written to `results/<id>.txt`.

use std::fs;
use std::path::Path;

use experiments::*;

struct Ctx {
    quick: bool,
    out_dir: String,
}

impl Ctx {
    fn hour(&self) -> u64 {
        if self.quick {
            900
        } else {
            3600
        }
    }

    fn emit(&self, id: &str, body: &str) {
        println!("\n=================== {id} ===================");
        println!("{body}");
        let path = Path::new(&self.out_dir).join(format!("{id}.txt"));
        if let Err(e) = fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    let ctx = Ctx { quick, out_dir: "results".into() };
    fs::create_dir_all(&ctx.out_dir).expect("create results dir");

    // Fixed seeds: EXPERIMENTS.md numbers regenerate from exactly these.
    const SEED: u64 = 2016;

    if want("table1") {
        let scale = if quick { 20_000 } else { 1_000 };
        let r = table1::run(SEED, scale);
        ctx.emit("table1", &table1::render(&r));
    }
    if want("fig1") {
        let scale = if quick { 10_000 } else { 2_000 };
        let r = fig1::run(SEED, scale);
        ctx.emit("fig1", &fig1::render(&r));
    }
    if want("fig2") {
        let scale = if quick { 10_000 } else { 2_000 };
        let r = fig2::run(SEED, scale);
        ctx.emit("fig2", &fig2::render(&r));
    }
    if want("fig4") {
        let r = fig4::run(SEED, ctx.hour());
        ctx.emit("fig4", &fig4::render(&r));
    }
    if want("fig5") {
        let r = fig5::run(SEED, if quick { 1800 } else { 3 * 3600 });
        ctx.emit("fig5", &fig5::render(&r));
    }
    if want("fig6") {
        let r = fig6::run(SEED, ctx.hour());
        ctx.emit("fig6", &fig6::render(&r));
    }
    if want("fig7") {
        let r = fig7::run(SEED, ctx.hour());
        ctx.emit("fig7", &fig7::render(&r));
    }
    if want("fig8") {
        let r = fig8::run(SEED, ctx.hour());
        ctx.emit("fig8", &fig8::render(&r));
    }
    if want("fig9") {
        let r = fig9and10::run(SEED, ctx.hour(), true);
        ctx.emit("fig9", &fig9and10::render_fig9(&r));
    }
    if want("fig10") {
        let r = fig9and10::run(SEED, ctx.hour(), false);
        ctx.emit("fig10", &fig9and10::render_fig10(&r));
    }
    if want("fig12") && !quick {
        let r = fig12::run(SEED);
        ctx.emit("fig12", &fig12::render(&r));
    }
    if (want("table2") || want("fig11")) && !quick {
        let t2 = table2::run(SEED);
        if want("table2") {
            ctx.emit("table2", &table2::render(&t2));
        }
        if want("fig11") {
            let r = fig11::run(&t2);
            ctx.emit("fig11", &fig11::render(&r));
        }
    }
    if want("validation") {
        let rows = validation::drift_estimation_accuracy(SEED);
        ctx.emit("validation_drift", &validation::render_drift(&rows));
        let r = validation::temperature_step(SEED);
        ctx.emit("validation_temperature", &validation::render_temperature(&r));
    }
    if want("ablations") {
        let rows = ablations::run_suite(SEED, if quick { 1800 } else { 3600 });
        ctx.emit("ablations", &ablations::render_suite(&rows));
    }
    if want("extended") {
        let r = extended::three_way(SEED, if quick { 1800 } else { 2 * 3600 });
        ctx.emit("extended_threeway", &extended::render_three_way(&r));
        let v = extended::vendor_policies(SEED, if quick { 1 } else { 3 });
        ctx.emit("extended_vendor", &extended::render_vendor(&v));
        let h = extended::huffpuff_comparison(SEED, if quick { 1800 } else { 3600 });
        ctx.emit("extended_huffpuff", &extended::render_huffpuff(&h));
        let a = extended::autotune_comparison(SEED, if quick { 1800 } else { 2 * 3600 });
        ctx.emit("extended_autotune", &extended::render_autotune(&a));
        let sc = extended::scenario_sweep(SEED, if quick { 1800 } else { 3600 });
        ctx.emit("extended_scenarios", &extended::render_scenarios(&sc));
    }

    println!("\nall requested experiments written to {}/", ctx.out_dir);
}
