//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p experiments --bin repro              # everything
//! cargo run --release -p experiments --bin repro -- fig6 fig8 # a subset
//! cargo run --release -p experiments --bin repro -- --quick   # short horizons
//! cargo run --release -p experiments --bin repro -- --jobs 4  # worker count
//! ```
//!
//! Figures run concurrently on the in-tree work-stealing pool
//! (`--jobs N` or `MNTP_JOBS=N`; default = core count), but output is
//! buffered and emitted in the fixed figure order, so stdout and
//! `results/<id>.txt` are byte-identical at any worker count.
//!
//! Exits 1 if any artifact failed to write, 2 on bad arguments.

use experiments::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match repro::Options::from_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let report = repro::run(&opts);
    println!(
        "\n{} artifact(s) written to {}/",
        report.written.len(),
        opts.out_dir.display()
    );
    if !report.write_failures.is_empty() {
        for (id, err) in &report.write_failures {
            eprintln!("error: artifact {id} was not written: {err}");
        }
        std::process::exit(1);
    }
}
