//! Table 1: summary of client statistics seen in the NTP logs.

use loganalysis::{generate_all_logs, table1 as la_table1, SynthConfig, Table1Row};

use crate::render;

/// The reproduced Table 1.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// One row per server.
    pub rows: Vec<Table1Row>,
    /// Scale divisor applied to the paper's counts.
    pub scale: u64,
}

/// Run the experiment: generate all 19 synthetic logs and summarize.
pub fn run(seed: u64, scale: u64) -> Table1Result {
    let cfg = SynthConfig { scale, duration_secs: 86_400 };
    let logs = generate_all_logs(&cfg, seed);
    Table1Result { rows: la_table1(&logs), scale }
}

/// Render the paper-style table (paper counts alongside observed scaled
/// counts).
pub fn render(r: &Table1Result) -> String {
    let mut out = format!(
        "Table 1 — client statistics of the 19 NTP servers (scale 1/{})\n",
        r.scale
    );
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.server.id.to_string(),
                row.server.stratum.to_string(),
                row.server.ip_version.to_string(),
                row.server.unique_clients.to_string(),
                row.observed_clients.to_string(),
                row.server.total_measurements.to_string(),
                row.observed_measurements.to_string(),
            ]
        })
        .collect();
    out.push_str(&render::table(
        &["server", "stratum", "ip", "paper clients", "sim clients", "paper meas", "sim meas"],
        &rows,
    ));
    let total_meas: u64 = r.rows.iter().map(|x| x.observed_measurements).sum();
    let total_clients: u64 = r.rows.iter().map(|x| x.observed_clients).sum();
    out.push_str(&format!(
        "totals: {} clients, {} measurements (paper: 15,303,436 / 209,447,922 at full scale)\n",
        total_clients, total_meas
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_track_table1() {
        let r = run(1, 5_000);
        assert_eq!(r.rows.len(), 19);
        // Per-server measurement shares should roughly match the paper's.
        let total_paper: f64 =
            r.rows.iter().map(|x| x.server.total_measurements as f64).sum();
        let total_sim: f64 = r.rows.iter().map(|x| x.observed_measurements as f64).sum();
        for row in &r.rows {
            let paper_share = row.server.total_measurements as f64 / total_paper;
            let sim_share = row.observed_measurements as f64 / total_sim;
            if paper_share > 0.02 {
                assert!(
                    (paper_share - sim_share).abs() < 0.02,
                    "{}: paper {paper_share:.3} sim {sim_share:.3}",
                    row.server.id
                );
            }
        }
    }

    #[test]
    fn render_contains_all_servers() {
        let r = run(2, 20_000);
        let s = render(&r);
        for id in ["AG1", "MW2", "SU1", "PP1"] {
            assert!(s.contains(id));
        }
    }
}
