//! Figure 7: the "signals and selection" plot — measured wireless hints
//! (RSSI, noise, SNR margin) over time, annotated with MNTP's decisions
//! (accepted / rejected / deferred), explaining *why* MNTP wins in
//! Figure 6: requests are deferred whenever a hint breaches its
//! threshold, and surviving outliers fall to the trend filter.

use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;

use crate::harness::{default_pool, paired_run, ClockMode, MntpEvent, PairedRun};
use crate::render;

/// The signals/selection data.
#[derive(Clone, Debug)]
pub struct Fig7Result {
    /// The underlying paired run (same configuration as Figure 6).
    pub run: PairedRun,
}

/// Run with the Figure 6 configuration.
pub fn run(seed: u64, duration: u64) -> Fig7Result {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = default_pool(seed + 1);
    let mut clock = ClockMode::NtpCorrected.build(seed + 2);
    let cfg = MntpConfig::baseline(5.0);
    Fig7Result {
        run: paired_run(&mut tb, None, &mut pool, &mut clock, duration, 5.0, &cfg),
    }
}

/// Count events by kind: (accepted, rejected, deferred, failed).
pub fn decision_counts(r: &Fig7Result) -> (usize, usize, usize, usize) {
    let mut c = (0, 0, 0, 0);
    for (_, _, e) in &r.run.mntp_events {
        match e {
            MntpEvent::Accepted { .. } => c.0 += 1,
            MntpEvent::Rejected { .. } => c.1 += 1,
            MntpEvent::Deferred => c.2 += 1,
            MntpEvent::Failed => c.3 += 1,
        }
    }
    c
}

/// Deferral consistency: fraction of deferred instants where at least
/// one hint threshold is actually breached (should be 1.0 — the gate
/// *is* the threshold check).
pub fn deferral_consistency(r: &Fig7Result) -> f64 {
    let deferred: Vec<_> = r
        .run
        .mntp_events
        .iter()
        .filter(|(_, _, e)| *e == MntpEvent::Deferred)
        .collect();
    if deferred.is_empty() {
        return 1.0;
    }
    let consistent = deferred
        .iter()
        .filter(|(_, h, _)| {
            h.as_ref().is_none_or(|h| {
                h.rssi_dbm <= -75.0 || h.noise_dbm >= -70.0 || h.snr_margin_db() < 20.0
            })
        })
        .count();
    consistent as f64 / deferred.len() as f64
}

/// Render: three stacked signal traces plus the decision counts.
pub fn render(r: &Fig7Result) -> String {
    let mut out = String::from(
        "Figure 7 — signals and selection (thresholds: RSSI > −75 dBm, noise < −70 dBm, SNR ≥ 20 dB)\n\n",
    );
    let rssi: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, h, _)| h.map(|h| (*t, h.rssi_dbm)))
        .collect();
    let noise: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, h, _)| h.map(|h| (*t, h.noise_dbm)))
        .collect();
    let snr: Vec<(f64, f64)> = r
        .run
        .mntp_events
        .iter()
        .filter_map(|(t, h, _)| h.map(|h| (*t, h.snr_margin_db())))
        .collect();
    out.push_str(&render::scatter("RSSI (dBm)", &[("rssi", 'r', &rssi)], 72, 8));
    out.push_str(&render::scatter("noise (dBm)", &[("noise", 'n', &noise)], 72, 8));
    out.push_str(&render::scatter("SNR margin (dB)", &[("snr", 's', &snr)], 72, 8));
    let (a, rej, d, f) = decision_counts(r);
    out.push_str(&format!(
        "\ndecisions: accepted={a} rejected={rej} deferred={d} failed={f}\n\
         deferral consistency (every deferral has a breached threshold): {:.0}%\n",
        deferral_consistency(r) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_deferral_is_threshold_justified() {
        let r = run(41, 1800);
        assert!((deferral_consistency(&r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_decision_kinds_occur() {
        let r = run(42, 3600);
        let (a, rej, d, _f) = decision_counts(&r);
        assert!(a > 0, "accepted");
        assert!(rej > 0, "rejected");
        assert!(d > 0, "deferred");
    }

    #[test]
    fn hints_cross_thresholds_both_ways() {
        let r = run(43, 3600);
        let snrs: Vec<f64> = r
            .run
            .mntp_events
            .iter()
            .filter_map(|(_, h, _)| h.map(|h| h.snr_margin_db()))
            .collect();
        assert!(snrs.iter().any(|&s| s >= 20.0));
        assert!(snrs.iter().any(|&s| s < 20.0));
    }
}
