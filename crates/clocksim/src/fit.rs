//! Least-squares trend fitting for clock-drift estimation.
//!
//! MNTP's filter (paper §4.2) fits "a trend line using least squares
//! polynomial fit with a first degree polynomial" through recorded
//! `(time, offset)` samples; the slope is the drift estimate and the
//! residual statistics drive the accept/reject decision. The same
//! machinery, at degrees 0–2, backs the `ablation_fit_degree` bench.
//!
//! Coordinates are `f64` seconds / milliseconds; callers convert from the
//! fixed-point protocol types at this boundary.

/// A fitted degree-1 trend line `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Slope (e.g. ms of offset per second of time = drift in "ppk").
    pub slope: f64,
    /// Intercept at x = 0.
    pub intercept: f64,
}

impl LineFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit a straight line through `(x, y)` points by ordinary least squares.
/// Returns `None` for fewer than two points or degenerate (all-equal) x.
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    Some(LineFit { slope, intercept: mean_y - slope * mean_x })
}

/// Fit a polynomial of degree `degree` (0..=4) by solving the normal
/// equations with Gaussian elimination and partial pivoting. Returns the
/// coefficients lowest-order first, or `None` if the system is singular or
/// there are too few points.
pub fn fit_poly(points: &[(f64, f64)], degree: usize) -> Option<Vec<f64>> {
    assert!(degree <= 4, "fit_poly supports degree <= 4");
    let m = degree + 1;
    if points.len() < m {
        return None;
    }
    // Build the normal equations A·c = b where A[i][j] = Σ x^(i+j).
    let mut pow_sums = vec![0.0f64; 2 * degree + 1];
    let mut b = vec![0.0f64; m];
    for &(x, y) in points {
        let mut xp = 1.0;
        for (k, slot) in pow_sums.iter_mut().enumerate() {
            *slot += xp;
            if k < m {
                b[k] += y * xp;
            }
            xp *= x;
        }
    }
    let mut a = vec![vec![0.0f64; m]; m];
    for (i, row) in a.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = pow_sums[i + j];
        }
    }
    solve(&mut a, &mut b).then_some(b)
}

/// In-place Gaussian elimination with partial pivoting; solution lands in
/// `b`. Returns false if singular.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> bool {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return false;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (cell, pv) in lower[0].iter_mut().zip(pivot_row).skip(col) {
                *cell -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    for col in (0..n).rev() {
        let mut v = b[col];
        for k in col + 1..n {
            v -= a[col][k] * b[k];
        }
        b[col] = v / a[col][col];
    }
    true
}

/// Evaluate a polynomial (coefficients lowest-order first) at `x`.
pub fn eval_poly(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Root-mean-square error of `ys` against a predictor.
pub fn rmse(points: &[(f64, f64)], predict: impl Fn(f64) -> f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let sum: f64 = points.iter().map(|&(x, y)| (y - predict(x)).powi(2)).sum();
    (sum / points.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        let f = fit_line(&pts).unwrap();
        assert!((f.slope - 0.5).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.predict(40.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_close() {
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 37 % 17) as f64 - 8.0) / 8.0; // in [-1, 1]
                (x, 10.0 - 0.25 * x + noise)
            })
            .collect();
        let f = fit_line(&pts).unwrap();
        assert!((f.slope + 0.25).abs() < 0.01, "slope={}", f.slope);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(fit_line(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]).is_none());
    }

    #[test]
    fn poly_degree0_is_mean() {
        let pts = [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)];
        let c = fit_poly(&pts, 0).unwrap();
        assert!((c[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn poly_degree1_matches_fit_line() {
        let pts: Vec<(f64, f64)> = (0..30).map(|i| (i as f64, 1.0 + 2.0 * i as f64)).collect();
        let c = fit_poly(&pts, 1).unwrap();
        let l = fit_line(&pts).unwrap();
        assert!((c[0] - l.intercept).abs() < 1e-9);
        assert!((c[1] - l.slope).abs() < 1e-9);
    }

    #[test]
    fn poly_degree2_exact() {
        let pts: Vec<(f64, f64)> =
            (-10..=10).map(|i| (i as f64, 2.0 - 3.0 * i as f64 + 0.5 * (i * i) as f64)).collect();
        let c = fit_poly(&pts, 2).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] + 3.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-8);
        assert!((eval_poly(&c, 4.0) - (2.0 - 12.0 + 8.0)).abs() < 1e-7);
    }

    #[test]
    fn poly_insufficient_points() {
        assert!(fit_poly(&[(0.0, 1.0)], 1).is_none());
        assert!(fit_poly(&[(0.0, 1.0), (1.0, 2.0)], 2).is_none());
    }

    #[test]
    fn rmse_zero_for_perfect_fit() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert_eq!(rmse(&pts, |x| 2.0 * x), 0.0);
        assert!((rmse(&pts, |x| 2.0 * x + 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], |_| 0.0), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// fit_line exactly recovers any non-degenerate line.
        fn recovers_any_line(slope in prop::floats(-100.0..100.0), intercept in prop::floats(-1000.0..1000.0)) {
            let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, intercept + slope * i as f64)).collect();
            let f = fit_line(&pts).unwrap();
            prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
            prop_assert!((f.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        }

        /// The fitted line's RMSE is never larger than the RMSE of any other
        /// candidate line (least-squares optimality, spot-checked against
        /// perturbations).
        fn least_squares_optimality(
            ys in prop::vecs(prop::floats(-100.0..100.0), 5..20),
            ds in prop::floats(-1.0..1.0),
            di in prop::floats(-5.0..5.0),
        ) {
            let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
            let f = fit_line(&pts).unwrap();
            let best = rmse(&pts, |x| f.predict(x));
            let perturbed = rmse(&pts, |x| (f.intercept + di) + (f.slope + ds) * x);
            prop_assert!(best <= perturbed + 1e-9);
        }
    }
}
