//! Drifting local clocks and the control surface used to discipline them.
//!
//! [`SimClock`] is the simulated equivalent of a device's system clock: it
//! advances at the rate its [`Oscillator`] dictates and can be corrected
//! through the same three primitives a real kernel exposes to time daemons
//! — instantaneous **step**, bounded-rate **slew**, and a persistent
//! **frequency trim**. [`ReferenceClock`] is the cheap model used for NTP
//! server clocks and for "NTP-corrected" baselines: true time plus a
//! constant error and an optional mean-reverting wobble.

use ntp_wire::{NtpDuration, NtpTimestamp};

use crate::oscillator::Oscillator;
use crate::rng::SimRng;
use crate::time::SimTime;

/// The control surface a synchronization protocol sees. Nothing behind
/// this trait reveals true time: protocols must infer it from exchanges.
pub trait ClockControl {
    /// Read the clock at true time `now` (the kernel passes `now`; the
    /// protocol never sees it directly).
    fn now(&mut self, now: SimTime) -> NtpTimestamp;

    /// Instantaneously add `offset` to the clock (a step, like
    /// `clock_settime`). Positive offset moves the clock forward.
    fn step(&mut self, now: SimTime, offset: NtpDuration);

    /// Gradually apply `offset` at the clock's bounded slew rate (like
    /// `adjtime`). A new call replaces any outstanding slew, matching the
    /// Unix semantics.
    fn slew(&mut self, now: SimTime, offset: NtpDuration);

    /// Add `ppm` to the persistent frequency trim (like the `freq` field of
    /// `ntp_adjtime`). Used for drift correction.
    fn trim_frequency_ppm(&mut self, now: SimTime, ppm: f64);

    /// The latest true time this clock has been advanced to. Drivers use
    /// it to keep event times monotone: a reading "at `t`" where
    /// `t < position()` would silently return the clock's state at
    /// `position()`, mis-timestamping the event.
    fn position(&self) -> SimTime;
}

/// Maximum slew rate, ppm — the classic Unix `adjtime` rate of 0.5 ms/s.
pub const DEFAULT_SLEW_RATE_PPM: f64 = 500.0;

/// A clock correction decided by a protocol, to be applied by whoever owns
/// the clock. Sans-io protocol state machines return these instead of
/// touching the clock directly, which keeps them testable in isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClockCommand {
    /// Step the clock by the given offset.
    Step(NtpDuration),
    /// Slew the clock by the given offset at the bounded rate.
    Slew(NtpDuration),
    /// Adjust the persistent frequency trim by `ppm`.
    TrimFrequencyPpm(f64),
}

impl ClockCommand {
    /// Apply this command to a clock at true time `now`.
    pub fn apply(self, clock: &mut dyn ClockControl, now: SimTime) {
        match self {
            ClockCommand::Step(d) => clock.step(now, d),
            ClockCommand::Slew(d) => clock.slew(now, d),
            ClockCommand::TrimFrequencyPpm(ppm) => clock.trim_frequency_ppm(now, ppm),
        }
    }
}

/// A free-running local clock driven by an oscillator model.
///
/// ```
/// use clocksim::{OscillatorConfig, SimClock, SimRng, ClockControl};
/// use clocksim::time::SimTime;
///
/// // A crystal running 25 ppm fast accumulates 25 ms of error per 1000 s.
/// let osc = OscillatorConfig::perfect().with_skew_ppm(25.0).build(SimRng::new(1));
/// let mut clock = SimClock::new(osc, SimTime::ZERO);
/// let err = clock.true_error(SimTime::from_secs(1000));
/// assert!((err.as_millis_f64() - 25.0).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct SimClock {
    osc: Oscillator,
    last_true: SimTime,
    /// Local reading at `last_true`, nanoseconds on the local timescale.
    /// `f64` keeps sub-ns precision over multi-day runs (53-bit mantissa).
    local_ns: f64,
    /// Persistent frequency trim applied by discipline, ppm.
    trim_ppm: f64,
    /// Outstanding slew correction, ns (signed).
    slew_remaining_ns: f64,
    /// Bounded slew rate, ppm.
    slew_rate_ppm: f64,
    /// Count of steps applied (diagnostics).
    steps_applied: u64,
}

impl SimClock {
    /// Create a clock that reads exactly true time at `start` and drifts
    /// from there.
    pub fn new(osc: Oscillator, start: SimTime) -> Self {
        SimClock {
            osc,
            last_true: start,
            local_ns: start.as_nanos() as f64,
            trim_ppm: 0.0,
            slew_remaining_ns: 0.0,
            slew_rate_ppm: DEFAULT_SLEW_RATE_PPM,
            steps_applied: 0,
        }
    }

    /// Create with an initial error: clock reads `true + initial_error`.
    pub fn with_initial_error(osc: Oscillator, start: SimTime, initial_error: NtpDuration) -> Self {
        let mut c = SimClock::new(osc, start);
        c.local_ns += initial_error.as_nanos() as f64;
        c
    }

    /// Advance internal state to true time `now`.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.last_true;
        if dt.as_nanos() <= 0 {
            return;
        }
        let dt_ns = dt.as_nanos() as f64;
        let rate_err_ppm = self.osc.frequency_error_ppm(self.last_true) + self.trim_ppm;
        let mut advance = dt_ns * (1.0 + rate_err_ppm * 1e-6);
        // Apply outstanding slew at the bounded rate.
        if self.slew_remaining_ns != 0.0 {
            let max_slew = dt_ns * self.slew_rate_ppm * 1e-6;
            let applied = self.slew_remaining_ns.clamp(-max_slew, max_slew);
            advance += applied;
            self.slew_remaining_ns -= applied;
        }
        self.local_ns += advance;
        self.osc.advance(dt);
        self.last_true = now;
    }

    /// The clock's current error relative to true time: `local − true`.
    /// This is simulation-side ground truth; protocols cannot call it
    /// (they don't hold the kernel's `SimTime`s in honest code paths —
    /// experiments use it only for evaluation).
    pub fn true_error(&mut self, now: SimTime) -> NtpDuration {
        self.advance_to(now);
        // The clock may already sit beyond `now` (an exchange read it at a
        // packet-arrival instant). Error is always measured at the moment
        // the clock is actually at, never against a stale `now`.
        let at = self.last_true.max(now);
        NtpDuration::from_nanos((self.local_ns - at.as_nanos() as f64).round() as i64)
    }

    /// Local reading in nanoseconds on the local timescale.
    pub fn now_local_nanos(&mut self, now: SimTime) -> i64 {
        self.advance_to(now);
        self.local_ns.round() as i64
    }

    /// Current total oscillator frequency error (including trim), ppm —
    /// ground truth for validating drift estimators.
    pub fn effective_rate_error_ppm(&self, now: SimTime) -> f64 {
        self.osc.frequency_error_ppm(now) + self.trim_ppm
    }

    /// Number of steps applied so far.
    pub fn steps_applied(&self) -> u64 {
        self.steps_applied
    }

    /// Outstanding (not yet slewed-out) correction.
    pub fn pending_slew(&self) -> NtpDuration {
        NtpDuration::from_nanos(self.slew_remaining_ns.round() as i64)
    }
}

impl ClockControl for SimClock {
    fn now(&mut self, now: SimTime) -> NtpTimestamp {
        self.advance_to(now);
        let epoch_ns = crate::time::NTP_EPOCH_OFFSET_SECONDS as i128 * 1_000_000_000;
        NtpTimestamp::from_era_nanos(epoch_ns + self.local_ns.round() as i128)
    }

    fn step(&mut self, now: SimTime, offset: NtpDuration) {
        self.advance_to(now);
        self.local_ns += offset.as_nanos() as f64;
        self.steps_applied += 1;
    }

    fn slew(&mut self, now: SimTime, offset: NtpDuration) {
        self.advance_to(now);
        // adjtime semantics: a new adjustment cancels the remainder.
        self.slew_remaining_ns = offset.as_nanos() as f64;
    }

    fn trim_frequency_ppm(&mut self, now: SimTime, ppm: f64) {
        self.advance_to(now);
        self.trim_ppm += ppm;
    }

    fn position(&self) -> SimTime {
        self.last_true
    }
}

/// A clock pinned to true time plus a constant error and an optional
/// Ornstein–Uhlenbeck wobble. Used for stratum-server clocks (small fixed
/// error each) and for the "system clock corrected by NTP" baseline in the
/// paper's experiments (zero mean, a few ms of wobble).
#[derive(Clone, Debug)]
pub struct ReferenceClock {
    error: NtpDuration,
    wobble_sigma_ms: f64,
    wobble_tau_secs: f64,
    wobble_ms: f64,
    last_true: SimTime,
    rng: SimRng,
}

impl ReferenceClock {
    /// A perfect reference (stratum-1 with GPS, effectively).
    pub fn perfect() -> Self {
        ReferenceClock {
            error: NtpDuration::ZERO,
            wobble_sigma_ms: 0.0,
            wobble_tau_secs: 1.0,
            wobble_ms: 0.0,
            last_true: SimTime::ZERO,
            rng: SimRng::new(0),
        }
    }

    /// Constant error, no wobble.
    pub fn with_error(error: NtpDuration) -> Self {
        ReferenceClock { error, ..ReferenceClock::perfect() }
    }

    /// Constant error plus OU wobble with stationary σ `sigma_ms` and time
    /// constant `tau_secs`.
    pub fn with_wobble(error: NtpDuration, sigma_ms: f64, tau_secs: f64, rng: SimRng) -> Self {
        ReferenceClock {
            error,
            wobble_sigma_ms: sigma_ms,
            wobble_tau_secs: tau_secs,
            wobble_ms: 0.0,
            last_true: SimTime::ZERO,
            rng,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        if self.wobble_sigma_ms == 0.0 {
            self.last_true = now;
            return;
        }
        let dt = (now - self.last_true).as_secs_f64().max(0.0);
        if dt > 0.0 {
            let a = (-dt / self.wobble_tau_secs).exp();
            let sigma = self.wobble_sigma_ms * (1.0 - a * a).sqrt();
            self.wobble_ms = self.wobble_ms * a + sigma * self.rng.gauss();
            self.last_true = now;
        }
    }

    /// Current error relative to true time.
    pub fn true_error(&mut self, now: SimTime) -> NtpDuration {
        self.advance_to(now);
        self.error + NtpDuration::from_seconds_f64(self.wobble_ms / 1e3)
    }
}

impl ClockControl for ReferenceClock {
    fn now(&mut self, now: SimTime) -> NtpTimestamp {
        let err = self.true_error(now);
        now.to_ntp() + err
    }

    fn step(&mut self, _now: SimTime, offset: NtpDuration) {
        self.error += offset;
    }

    fn slew(&mut self, _now: SimTime, offset: NtpDuration) {
        // The reference model has no rate machinery; treat as step.
        self.error += offset;
    }

    fn trim_frequency_ppm(&mut self, _now: SimTime, _ppm: f64) {}

    fn position(&self) -> SimTime {
        self.last_true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::OscillatorConfig;

    fn perfect_clock() -> SimClock {
        SimClock::new(OscillatorConfig::perfect().build(SimRng::new(1)), SimTime::ZERO)
    }

    fn skewed_clock(ppm: f64) -> SimClock {
        let cfg = OscillatorConfig::perfect().with_skew_ppm(ppm);
        SimClock::new(cfg.build(SimRng::new(2)), SimTime::ZERO)
    }

    #[test]
    fn perfect_clock_tracks_true_time() {
        let mut c = perfect_clock();
        for s in [1, 10, 100, 10_000] {
            let err = c.true_error(SimTime::from_secs(s));
            assert!(err.abs() < NtpDuration::from_micros(1), "err={err:?}");
        }
    }

    #[test]
    fn skew_accumulates_linearly() {
        let mut c = skewed_clock(10.0); // 10 ppm fast
        let err = c.true_error(SimTime::from_secs(1000));
        // 10 ppm over 1000 s = 10 ms.
        assert!((err.as_millis_f64() - 10.0).abs() < 0.01, "err={err:?}");
    }

    #[test]
    fn negative_skew_runs_slow() {
        let mut c = skewed_clock(-25.0);
        let err = c.true_error(SimTime::from_secs(3600));
        // -25 ppm over 1 h = -90 ms.
        assert!((err.as_millis_f64() + 90.0).abs() < 0.05, "err={err:?}");
    }

    #[test]
    fn step_is_instantaneous() {
        let mut c = perfect_clock();
        c.step(SimTime::from_secs(5), NtpDuration::from_millis(-300));
        let err = c.true_error(SimTime::from_secs(5));
        assert!((err.as_millis_f64() + 300.0).abs() < 0.001);
        assert_eq!(c.steps_applied(), 1);
    }

    #[test]
    fn slew_is_gradual_and_bounded() {
        let mut c = perfect_clock();
        // Ask for +100 ms at 500 ppm: needs 200 s to complete.
        c.slew(SimTime::ZERO, NtpDuration::from_millis(100));
        let err_mid = c.true_error(SimTime::from_secs(100));
        assert!((err_mid.as_millis_f64() - 50.0).abs() < 0.1, "mid={err_mid:?}");
        let err_done = c.true_error(SimTime::from_secs(300));
        assert!((err_done.as_millis_f64() - 100.0).abs() < 0.1, "done={err_done:?}");
        assert_eq!(c.pending_slew(), NtpDuration::ZERO);
    }

    #[test]
    fn new_slew_replaces_old() {
        let mut c = perfect_clock();
        c.slew(SimTime::ZERO, NtpDuration::from_millis(100));
        // After 20 s, 10 ms has been applied; replace with -5 ms.
        c.slew(SimTime::from_secs(20), NtpDuration::from_millis(-5));
        let err = c.true_error(SimTime::from_secs(100));
        // 10 applied, then -5 more.
        assert!((err.as_millis_f64() - 5.0).abs() < 0.1, "err={err:?}");
    }

    #[test]
    fn frequency_trim_cancels_skew() {
        let mut c = skewed_clock(10.0);
        c.trim_frequency_ppm(SimTime::ZERO, -10.0);
        let err = c.true_error(SimTime::from_secs(5000));
        assert!(err.abs() < NtpDuration::from_micros(10), "err={err:?}");
        assert!(c.effective_rate_error_ppm(SimTime::ZERO).abs() < 1e-9);
    }

    #[test]
    fn initial_error_preserved() {
        let osc = OscillatorConfig::perfect().build(SimRng::new(3));
        let mut c = SimClock::with_initial_error(osc, SimTime::ZERO, NtpDuration::from_millis(42));
        let err = c.true_error(SimTime::from_secs(10));
        assert!((err.as_millis_f64() - 42.0).abs() < 0.001);
    }

    #[test]
    fn now_matches_true_error() {
        let mut c = skewed_clock(50.0);
        let t = SimTime::from_secs(200);
        let reported = c.now(t);
        let ideal = t.to_ntp();
        let diff = reported.wrapping_sub(ideal);
        let err = c.true_error(t);
        assert!((diff.as_millis_f64() - err.as_millis_f64()).abs() < 0.001);
    }

    #[test]
    fn clock_never_reads_backwards_under_slew() {
        let mut c = perfect_clock();
        c.slew(SimTime::ZERO, NtpDuration::from_millis(-200));
        let mut prev = c.now(SimTime::ZERO);
        for i in 1..500 {
            let t = SimTime::from_millis(i * 100);
            let cur = c.now(t);
            assert!(cur.wrapping_sub(prev).to_bits() > 0, "clock went backwards at {t:?}");
            prev = cur;
        }
    }

    #[test]
    fn reference_clock_constant_error() {
        let mut r = ReferenceClock::with_error(NtpDuration::from_millis(3));
        let t = SimTime::from_secs(123);
        let diff = r.now(t).wrapping_sub(t.to_ntp());
        assert!((diff.as_millis_f64() - 3.0).abs() < 0.001);
    }

    #[test]
    fn reference_clock_wobble_stays_bounded() {
        let mut r = ReferenceClock::with_wobble(NtpDuration::ZERO, 2.0, 60.0, SimRng::new(9));
        let mut max_abs: f64 = 0.0;
        for i in 0..5000 {
            let e = r.true_error(SimTime::from_secs(i * 5)).as_millis_f64();
            max_abs = max_abs.max(e.abs());
        }
        // 5 sigma bound with sigma = 2 ms.
        assert!(max_abs < 10.0, "max wobble {max_abs} ms");
        assert!(max_abs > 0.1, "wobble should actually move");
    }

    #[test]
    fn reads_at_same_instant_are_stable() {
        let mut c = skewed_clock(10.0);
        let t = SimTime::from_secs(50);
        assert_eq!(c.now(t), c.now(t));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::oscillator::OscillatorConfig;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// A constant-skew clock's error is linear in elapsed time, for
        /// any skew and horizon.
        fn skew_error_is_linear(ppm in prop::floats(-200.0..200.0), secs in prop::ints(1..50_000)) {
            let osc = OscillatorConfig::perfect().with_skew_ppm(ppm).build(SimRng::new(1));
            let mut c = SimClock::new(osc, SimTime::ZERO);
            let err = c.true_error(SimTime::from_secs(secs)).as_millis_f64();
            let expected = ppm * 1e-3 * secs as f64; // ppm · s → ms
            prop_assert!((err - expected).abs() < 0.01 + expected.abs() * 1e-6,
                "err={err} expected={expected}");
        }

        /// step(x) then step(−x) is a no-op on the clock's error.
        fn step_roundtrip(ms in prop::ints(-10_000..10_000), at in prop::ints(1..1000)) {
            let osc = OscillatorConfig::perfect().build(SimRng::new(2));
            let mut c = SimClock::new(osc, SimTime::ZERO);
            let t = SimTime::from_secs(at);
            c.step(t, NtpDuration::from_millis(ms));
            c.step(t, NtpDuration::from_millis(-ms));
            let err = c.true_error(t).as_millis_f64();
            prop_assert!(err.abs() < 0.001, "err={err}");
        }

        /// A slew, once fully played out, moves the clock by exactly the
        /// requested amount.
        fn slew_total_is_exact(ms in prop::ints(-200..200)) {
            let osc = OscillatorConfig::perfect().build(SimRng::new(3));
            let mut c = SimClock::new(osc, SimTime::ZERO);
            c.slew(SimTime::ZERO, NtpDuration::from_millis(ms));
            // 500 ppm clears 200 ms within 400 s; give it 10× margin.
            let err = c.true_error(SimTime::from_secs(4_000)).as_millis_f64();
            prop_assert!((err - ms as f64).abs() < 0.01, "err={err} want {ms}");
        }
    }
}
