//! Summary statistics shared by every experiment and the log-analysis
//! pipeline: mean, standard deviation, percentiles, and a one-shot
//! [`Summary`] used when rendering the paper's tables.

/// Mean of a slice; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root mean square of a slice (used for RMSE against a zero target).
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile `p` in `[0, 100]` of an unsorted slice.
/// Returns 0.0 for empty input.
///
/// Rank convention: this is the *interpolated* estimator used by the
/// simulator's summary tables. The analysis pipelines use the shared
/// *nearest-rank* estimator (`devtools::sketch::percentile_nearest_rank`,
/// `sorted[round(q·(n−1))]`) instead — the two deliberately coexist
/// because `devtools` sits above `clocksim` in the dependency order and
/// committed artifacts pin each convention's exact digits.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// Percentile over an already-sorted slice (avoids repeated sorting when
/// computing many quantiles of one dataset).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let (Some(&xlo), Some(&xhi)) = (sorted.get(lo), sorted.get(hi)) else {
        return 0.0; // unreachable: rank <= len - 1 by construction
    };
    if lo == hi {
        xlo
    } else {
        let w = rank - lo as f64;
        xlo * (1.0 - w) + xhi * w
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// One-pass descriptive summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary; all fields zero for empty input.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std: 0.0, min: 0.0, p25: 0.0, median: 0.0, p75: 0.0, p95: 0.0, max: 0.0 };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std: stddev(xs),
            min: sorted.first().copied().unwrap_or(0.0),
            p25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }

    /// Maximum absolute value of the sample (the paper reports "maximum
    /// offset" as a magnitude).
    pub fn max_abs(&self) -> f64 {
        self.max.abs().max(self.min.abs())
    }
}

/// Empirical CDF: returns `(value, cumulative_fraction)` points, one per
/// sample, suitable for rendering the paper's CDF figures.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(Summary::of(&[]).n, 0);
    }

    #[test]
    fn rms_known() {
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p95);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let s = Summary::of(&[-10.0, 1.0, 2.0]);
        assert_eq!(s.max_abs(), 10.0);
    }

    #[test]
    fn ecdf_monotone_ending_at_one() {
        let points = ecdf(&[5.0, 1.0, 3.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 1.0);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
