//! # clocksim
//!
//! The simulated time substrate for the MNTP reproduction.
//!
//! Everything in the workspace that "keeps time" is built from four pieces
//! defined here:
//!
//! * [`time`] — [`SimTime`]/[`SimDuration`]: the simulator's *true* time
//!   axis, a nanosecond counter only the simulation kernel can read.
//! * [`rng`] — [`rng::SimRng`]: a self-contained xoshiro256\*\* generator
//!   (seeded via SplitMix64) plus the distribution samplers the channel
//!   and workload models need. Implemented in-repo so every experiment is
//!   bit-reproducible across platforms and crate upgrades.
//! * [`oscillator`] — frequency-error models for crystal oscillators:
//!   constant skew, random-walk wander, and temperature sensitivity, which
//!   together give the "dominant constant skew plus small variable
//!   component" structure the paper's filter assumes (§4.2, citing
//!   Murdoch 2006).
//! * [`clock`] — [`SimClock`]: a local clock driven by an oscillator, with
//!   `step`/`slew`/frequency-trim controls mirroring what `adjtime(2)`-like
//!   interfaces give a real SNTP/NTP implementation.
//!
//! [`fit`] holds the least-squares drift estimation shared by MNTP's filter
//! and the tuner, and [`stats`] small summary-statistics helpers used by
//! every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fit;
pub mod oscillator;
pub mod rng;
pub mod stats;
pub mod temperature;
pub mod time;

pub use clock::{ClockCommand, ClockControl, ReferenceClock, SimClock};
pub use oscillator::{Oscillator, OscillatorConfig};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, NTP_EPOCH_OFFSET_SECONDS};
