//! Crystal-oscillator frequency-error models.
//!
//! A clock advances at rate `1 + e(t)` where `e(t)` is the oscillator's
//! fractional frequency error. Following the structure the paper leans on
//! (§4.2: "the constant skew factor of the clock dominates its variable
//! counterpart", citing Murdoch), `e(t)` is modelled as
//!
//! ```text
//! e(t) = skew + wander(t) + temp_coeff * (T(t) - T_ref) [all in ppm]
//! ```
//!
//! * `skew` — the dominant constant term, set by manufacturing tolerance
//!   (consumer crystals: a few to a few tens of ppm).
//! * `wander(t)` — a mean-reverting Ornstein–Uhlenbeck term capturing
//!   random frequency wander (aging and noise), small relative to `skew`.
//! * thermal term — deviation from the reference temperature scaled by the
//!   crystal's thermal coefficient (AT-cut quartz: ~0.03–0.1 ppm/°C near
//!   turnover, much worse away from it; we expose the coefficient).

use crate::rng::SimRng;
use crate::temperature::TemperatureProfile;
use crate::time::{SimDuration, SimTime};

/// Static description of an oscillator. Construct via the presets or
/// literal struct syntax, then call [`OscillatorConfig::build`].
#[derive(Clone, Debug)]
pub struct OscillatorConfig {
    /// Constant frequency error, ppm. Positive = clock runs fast.
    pub skew_ppm: f64,
    /// Stationary standard deviation of the wander term, ppm.
    pub wander_sigma_ppm: f64,
    /// Mean-reversion time constant of the wander term, seconds.
    pub wander_tau_secs: f64,
    /// Thermal coefficient, ppm per °C away from `temp_ref_c`.
    pub temp_coeff_ppm_per_c: f64,
    /// Reference (turnover) temperature, °C.
    pub temp_ref_c: f64,
    /// Ambient temperature profile.
    pub temperature: TemperatureProfile,
}

impl OscillatorConfig {
    /// A decent laptop crystal: +8 ppm constant skew, mild wander.
    /// Roughly matches the steady drift visible in the paper's wired
    /// no-correction traces.
    pub fn laptop() -> Self {
        OscillatorConfig {
            skew_ppm: 8.0,
            wander_sigma_ppm: 0.4,
            wander_tau_secs: 900.0,
            temp_coeff_ppm_per_c: 0.05,
            temp_ref_c: 25.0,
            temperature: TemperatureProfile::room(),
        }
    }

    /// A cheap phone crystal: larger skew and wander.
    pub fn phone() -> Self {
        OscillatorConfig {
            skew_ppm: 18.0,
            wander_sigma_ppm: 1.2,
            wander_tau_secs: 600.0,
            temp_coeff_ppm_per_c: 0.12,
            temp_ref_c: 25.0,
            temperature: TemperatureProfile::room(),
        }
    }

    /// A disciplined server-grade source: negligible error. Used for the
    /// simulated stratum servers' own clocks.
    pub fn server_grade() -> Self {
        OscillatorConfig {
            skew_ppm: 0.0,
            wander_sigma_ppm: 0.02,
            wander_tau_secs: 3600.0,
            temp_coeff_ppm_per_c: 0.0,
            temp_ref_c: 25.0,
            temperature: TemperatureProfile::room(),
        }
    }

    /// An ideal oscillator with zero error (for tests).
    pub fn perfect() -> Self {
        OscillatorConfig {
            skew_ppm: 0.0,
            wander_sigma_ppm: 0.0,
            wander_tau_secs: 1.0,
            temp_coeff_ppm_per_c: 0.0,
            temp_ref_c: 25.0,
            temperature: TemperatureProfile::room(),
        }
    }

    /// Override the constant skew (builder-style).
    pub fn with_skew_ppm(mut self, ppm: f64) -> Self {
        self.skew_ppm = ppm;
        self
    }

    /// Override the temperature profile (builder-style).
    pub fn with_temperature(mut self, t: TemperatureProfile) -> Self {
        self.temperature = t;
        self
    }

    /// Instantiate the stochastic state.
    pub fn build(self, rng: SimRng) -> Oscillator {
        Oscillator { config: self, wander_ppm: 0.0, rng }
    }
}

/// Live oscillator state: configuration plus the current wander value and
/// its RNG stream.
#[derive(Clone, Debug)]
pub struct Oscillator {
    config: OscillatorConfig,
    wander_ppm: f64,
    rng: SimRng,
}

impl Oscillator {
    /// Current total fractional frequency error, ppm, at true time `t`.
    pub fn frequency_error_ppm(&self, t: SimTime) -> f64 {
        let temp = self.config.temperature.at(t);
        self.config.skew_ppm
            + self.wander_ppm
            + self.config.temp_coeff_ppm_per_c * (temp - self.config.temp_ref_c)
    }

    /// Advance the wander process by `dt` using the exact OU transition:
    /// `w' = w·e^{−dt/τ} + σ·√(1−e^{−2dt/τ})·N(0,1)`.
    pub fn advance(&mut self, dt: SimDuration) {
        if self.config.wander_sigma_ppm == 0.0 {
            return;
        }
        let dt_s = dt.as_secs_f64().max(0.0);
        let a = (-dt_s / self.config.wander_tau_secs).exp();
        let noise_sigma = self.config.wander_sigma_ppm * (1.0 - a * a).sqrt();
        self.wander_ppm = self.wander_ppm * a + noise_sigma * self.rng.gauss();
    }

    /// The static configuration.
    pub fn config(&self) -> &OscillatorConfig {
        &self.config
    }

    /// Current wander component, ppm (diagnostics).
    pub fn wander_ppm(&self) -> f64 {
        self.wander_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_oscillator_has_zero_error() {
        let mut osc = OscillatorConfig::perfect().build(SimRng::new(1));
        for i in 0..100 {
            osc.advance(SimDuration::from_secs(5));
            assert_eq!(osc.frequency_error_ppm(SimTime::from_secs(i * 5)), 0.0);
        }
    }

    #[test]
    fn constant_skew_dominates() {
        let mut osc = OscillatorConfig::laptop().build(SimRng::new(2));
        for _ in 0..1000 {
            osc.advance(SimDuration::from_secs(5));
        }
        let e = osc.frequency_error_ppm(SimTime::from_secs(5000));
        // Wander sigma is 0.4 ppm; error should stay within ~5 sigma of skew.
        assert!((e - 8.0).abs() < 2.0, "e={e}");
    }

    #[test]
    fn wander_is_mean_reverting() {
        let cfg = OscillatorConfig {
            skew_ppm: 0.0,
            wander_sigma_ppm: 1.0,
            wander_tau_secs: 100.0,
            temp_coeff_ppm_per_c: 0.0,
            temp_ref_c: 25.0,
            temperature: TemperatureProfile::room(),
        };
        let mut osc = cfg.build(SimRng::new(3));
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let n = 20_000;
        for _ in 0..n {
            osc.advance(SimDuration::from_secs(10));
            let w = osc.wander_ppm();
            sum += w;
            sumsq += w * w;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 1.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn thermal_term_scales_with_temperature() {
        let cfg = OscillatorConfig::laptop()
            .with_temperature(TemperatureProfile::Constant(35.0))
            .with_skew_ppm(0.0);
        let cfg = OscillatorConfig { wander_sigma_ppm: 0.0, ..cfg };
        let osc = cfg.build(SimRng::new(4));
        let e = osc.frequency_error_ppm(SimTime::ZERO);
        // 10 °C over reference * 0.05 ppm/°C.
        assert!((e - 0.5).abs() < 1e-12, "e={e}");
    }

    #[test]
    fn advance_with_zero_dt_is_noop_for_perfect() {
        let mut osc = OscillatorConfig::perfect().build(SimRng::new(5));
        osc.advance(SimDuration::ZERO);
        assert_eq!(osc.wander_ppm(), 0.0);
    }
}
