//! Ambient-temperature profiles driving the oscillator's thermal term.
//!
//! The paper notes (§3.2) that on a wired network with clock correction
//! suspended "the drift is steady and is dependent on the temperature of
//! the vendor-specific oscillator present in the device." These profiles
//! let experiments reproduce both the steady case (constant temperature)
//! and environment changes a mobile device actually sees (pocket → desk →
//! outdoors), which shift the oscillator frequency through its thermal
//! coefficient.

use crate::time::SimTime;

/// A deterministic ambient-temperature trajectory, °C as a function of
/// true time.
#[derive(Clone, Debug)]
pub enum TemperatureProfile {
    /// Constant ambient temperature.
    Constant(f64),
    /// Sinusoid: `mean + amplitude * sin(2πt/period + phase)` — a cheap
    /// model of diurnal or HVAC cycling.
    Sinusoid {
        /// Mean temperature, °C.
        mean: f64,
        /// Peak deviation from the mean, °C.
        amplitude: f64,
        /// Cycle period, seconds.
        period_secs: f64,
        /// Phase at t=0, radians.
        phase: f64,
    },
    /// Piecewise-constant steps: `(start_time_secs, temperature)` pairs,
    /// sorted by time. Models a device moving between environments.
    Steps(Vec<(f64, f64)>),
}

impl TemperatureProfile {
    /// Room temperature, never changing — the default for lab experiments.
    pub fn room() -> Self {
        TemperatureProfile::Constant(22.0)
    }

    /// Temperature at true time `t`.
    pub fn at(&self, t: SimTime) -> f64 {
        let secs = t.as_secs_f64();
        match self {
            TemperatureProfile::Constant(c) => *c,
            TemperatureProfile::Sinusoid { mean, amplitude, period_secs, phase } => {
                mean + amplitude
                    * (2.0 * std::f64::consts::PI * secs / period_secs + phase).sin()
            }
            TemperatureProfile::Steps(steps) => {
                let mut temp = steps.first().map(|s| s.1).unwrap_or(22.0);
                for &(start, value) in steps {
                    if secs >= start {
                        temp = value;
                    } else {
                        break;
                    }
                }
                temp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = TemperatureProfile::room();
        assert_eq!(p.at(SimTime::ZERO), 22.0);
        assert_eq!(p.at(SimTime::from_secs(99999)), 22.0);
    }

    #[test]
    fn sinusoid_hits_extremes() {
        let p = TemperatureProfile::Sinusoid {
            mean: 20.0,
            amplitude: 5.0,
            period_secs: 100.0,
            phase: 0.0,
        };
        // Quarter period: sin = 1.
        assert!((p.at(SimTime::from_secs(25)) - 25.0).abs() < 1e-9);
        // Three quarters: sin = -1.
        assert!((p.at(SimTime::from_secs(75)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn steps_select_correct_segment() {
        let p = TemperatureProfile::Steps(vec![(0.0, 20.0), (60.0, 30.0), (120.0, 10.0)]);
        assert_eq!(p.at(SimTime::from_secs(0)), 20.0);
        assert_eq!(p.at(SimTime::from_secs(59)), 20.0);
        assert_eq!(p.at(SimTime::from_secs(60)), 30.0);
        assert_eq!(p.at(SimTime::from_secs(500)), 10.0);
    }

    #[test]
    fn empty_steps_default() {
        let p = TemperatureProfile::Steps(vec![]);
        assert_eq!(p.at(SimTime::from_secs(10)), 22.0);
    }
}
