//! Deterministic random-number generation for the simulators.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 — implemented here rather than pulled from a crate so that
//! every experiment in the repository is bit-for-bit reproducible across
//! platforms and dependency upgrades. On top of the raw generator sit the
//! distribution samplers the channel, clock, and workload models need:
//! uniform, normal (Box–Muller), lognormal, exponential, Pareto, and
//! Bernoulli.

/// xoshiro256\*\* PRNG with distribution samplers.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of Box–Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Create from a 64-bit seed. The four words of state are produced by
    /// SplitMix64, as the xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s, gauss_spare: None }
    }

    /// Derive an independent child generator (for per-entity streams), so
    /// adding randomness consumers to one component never perturbs another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for simulation purposes; exact rejection is not needed here).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (polar form avoided deliberately —
    /// the trig form consumes a fixed number of outputs, which keeps
    /// downstream streams aligned when code changes).
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gauss()
    }

    /// Lognormal: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with mean `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy-tailed delays).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        xm / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = SimRng::new(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gauss_moments() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn pareto_lower_bound_respected() {
        let mut r = SimRng::new(8);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_inclusive() {
        let mut r = SimRng::new(10);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(12);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    /// Known-answer test pinning the generator's output stream. If this
    /// fails, every experiment's numbers silently change — bump seeds
    /// consciously, never accidentally.
    #[test]
    fn known_answer_stream() {
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = SimRng::new(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(first, again);
        // And the stream must not be trivially zero/constant.
        assert!(first.iter().collect::<std::collections::BTreeSet<_>>().len() == 4);
    }
}
