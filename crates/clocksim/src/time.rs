//! The true-time axis of the simulation.
//!
//! [`SimTime`] is a nanosecond count since the simulation epoch. It is the
//! ground truth every clock in an experiment is measured against — the
//! analogue of the paper's "'true' time according to the national
//! standards". Only the simulation kernel hands out `SimTime`s; protocol
//! code must go through a [`crate::clock::SimClock`] and therefore only
//! ever sees (possibly wrong) local time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use ntp_wire::NtpTimestamp;

/// Where the simulation epoch sits on the NTP timescale: 2026-01-01 is
/// roughly 3_975_868_800 s after 1900-01-01 (era 0). The exact value is
/// irrelevant to every experiment — only differences matter — but using a
/// realistic constant keeps serialized packets plausible.
pub const NTP_EPOCH_OFFSET_SECONDS: u64 = 3_975_868_800;

/// Absolute true time: nanoseconds since the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub i64);

/// A span of true time, in nanoseconds. May be negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub i64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: i64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(ms: i64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (plots / statistics).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert true time to the NTP timestamp a *perfect* clock would show.
    pub fn to_ntp(self) -> NtpTimestamp {
        let epoch_ns = NTP_EPOCH_OFFSET_SECONDS as i128 * 1_000_000_000;
        NtpTimestamp::from_era_nanos(epoch_ns + self.0 as i128)
    }

    /// Saturating add — the kernel uses this when scheduling far-future
    /// events so arithmetic can never wrap.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: i64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From (possibly fractional) seconds. Rounds to the nearest ns.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as i64)
    }

    /// From fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1e6).round() as i64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Span in seconds, `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span in milliseconds, `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamp below at zero (used when a jitter sample would make a delay
    /// negative).
    pub fn max_zero(self) -> Self {
        SimDuration(self.0.max(0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 12_500_000_000);
    }

    #[test]
    fn to_ntp_differences_match() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_millis(100_250);
        let d = b.to_ntp().wrapping_sub(a.to_ntp());
        assert!((d.as_millis_f64() - 250.0).abs() < 1e-3);
    }

    #[test]
    fn to_ntp_epoch_constant() {
        let ts = SimTime::ZERO.to_ntp();
        assert_eq!(ts.seconds() as u64, NTP_EPOCH_OFFSET_SECONDS % (1 << 32));
        assert_eq!(ts.fraction(), 0);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert!(SimDuration::from_millis(-1).is_negative());
        assert_eq!(SimDuration::from_millis(-1).max_zero(), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let t = SimTime(i64::MAX - 5);
        assert_eq!(t.saturating_add(SimDuration::from_secs(10)).0, i64::MAX);
    }
}
