//! The determinism contract of `devtools::par`, checked end to end:
//! running the same workload serially (`jobs = 1`) and heavily
//! oversubscribed (`jobs = 8`, on any machine) must produce
//! **byte-identical** artifacts — the pool is an execution detail, never
//! an observable one.

use std::path::Path;

use devtools::par::Pool;
use experiments::repro;
use mntp::MntpConfig;
use netsim::WirelessHints;
use tuner::{grid_search_on, ParamGrid, Trace, TraceRow};

fn read_artifacts(dir: &Path, ids: &[&str]) -> Vec<(String, Vec<u8>)> {
    ids.iter()
        .map(|id| {
            let path = dir.join(format!("{id}.txt"));
            let body = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
            (id.to_string(), body)
        })
        .collect()
}

/// One real figure pipeline through the `repro` orchestrator: the
/// written artifact bytes must not depend on the worker count.
#[test]
fn repro_artifacts_identical_serial_vs_parallel() {
    let ids = ["fig6", "ablations"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    for ((id, a), (_, b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a, b, "artifact {id}.txt differs between jobs=1 and jobs=8");
    }
}

/// The fault sweep drives every injected-fault scenario through three
/// protocol arms; its artifact (including each arm's FaultInjector RNG
/// consumption) must be byte-identical at any worker count.
#[test]
fn faultsweep_artifact_identical_serial_vs_parallel() {
    let ids = ["faultsweep"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_faults_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    assert_eq!(
        serial[0].1, parallel[0].1,
        "faultsweep.txt differs between jobs=1 and jobs=8"
    );
}

/// The full-scale streaming pipeline fans generation chunks out over
/// the pool and folds their summaries in fixed (server, chunk) order;
/// the artifact — sketched quantiles included — must be byte-identical
/// between a serial run and a heavily oversubscribed one.
#[test]
fn fullscale_artifact_identical_serial_vs_parallel() {
    let ids = ["fullscale"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_fullscale_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    assert_eq!(
        serial[0].1, parallel[0].1,
        "fullscale.txt differs between jobs=1 and jobs=8"
    );
}

/// The tuner's grid search: ranking, statistics, and bit patterns must
/// match between worker counts.
#[test]
fn grid_search_identical_serial_vs_parallel() {
    let mut rows = Vec::new();
    let mut t = 0.0;
    let mut i = 0usize;
    while t <= 2.0 * 3600.0 {
        let o = -0.03 * t + [0.4, -0.6, 0.2, -0.1][i % 4];
        let spike = if i % 17 == 16 { 250.0 } else { 0.0 };
        rows.push(TraceRow {
            t_secs: t,
            hints: Some(WirelessHints { rssi_dbm: -60.0, noise_dbm: -92.0 }),
            offsets_ms: vec![Some(o + spike), Some(o + 0.3), Some(o - 0.3)],
        });
        t += 5.0;
        i += 1;
    }
    let trace = Trace { rows, interval_secs: 5.0 };
    let grid = ParamGrid {
        warmup_period_min: vec![10.0, 30.0, 60.0],
        warmup_wait_min: vec![0.084, 0.25],
        regular_wait_min: vec![15.0],
        reset_period_min: vec![240.0],
    };
    let fingerprint = |jobs: usize| -> Vec<(u64, u64, (f64, f64, f64, f64))> {
        grid_search_on(&Pool::with_jobs(jobs), &MntpConfig::default(), &grid, &trace)
            .into_iter()
            .map(|r| (r.rmse_ms.to_bits(), r.requests, r.params))
            .collect()
    };
    let serial = fingerprint(1);
    assert!(!serial.is_empty());
    assert_eq!(fingerprint(8), serial, "jobs=8 diverged from the serial sweep");
}

/// The fleet sweep steps thousands of clients through one shared world
/// and feeds the collected server log through the analysis pipeline;
/// its artifact must be byte-identical at any worker count.
#[test]
fn fleet_artifact_identical_serial_vs_parallel() {
    let ids = ["fleet"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_fleet_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    assert_eq!(serial[0].1, parallel[0].1, "fleet.txt differs between jobs=1 and jobs=8");
}

/// The server-core ingest harness: its artifact folds in a lockstep
/// serial-vs-sharded engine comparison over every batch, and the
/// rendered bytes (traffic shape, fates, the equality verdict) must not
/// depend on the worker count driving the sharded engine.
#[test]
fn servercore_artifact_identical_serial_vs_parallel() {
    let ids = ["servercore"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_servercore_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    assert_eq!(
        serial[0].1, parallel[0].1,
        "servercore.txt differs between jobs=1 and jobs=8"
    );
    let body = String::from_utf8_lossy(&serial[0].1).into_owned();
    assert!(
        body.contains("== serial reply stream: yes"),
        "lockstep engine comparison failed:\n{body}"
    );
}

/// The sharded fleet runner itself: one trial's kernel shards ticked by
/// one worker vs. many must agree on every statistic and on the raw
/// server-side arrival log, byte for byte. (The artifact test above
/// parallelizes across trials; this one parallelizes inside a trial.)
#[test]
fn fleet_trial_identical_serial_vs_sharded_parallel() {
    let fingerprint = |jobs: usize| {
        let (row, arrivals) = experiments::fleet::fleet_trial(600, 41, 120, true, jobs);
        let log: Vec<(u32, usize, i64, bool, bool, Vec<u8>)> = arrivals
            .into_iter()
            .map(|a| (a.client_id, a.server_id, a.at.as_nanos(), a.dropped, a.kod, a.request))
            .collect();
        (format!("{row:?}"), log)
    };
    let serial = fingerprint(1);
    assert!(!serial.1.is_empty(), "trial produced no arrivals");
    assert_eq!(fingerprint(4), serial, "jobs=4 diverged from the serial trial");
    assert_eq!(fingerprint(8), serial, "jobs=8 diverged from the serial trial");
}

/// The chaos fleet replays a deterministic fault timeline (loss storm,
/// server blackhole, falseticker, clock-step wave) over a shared world;
/// the artifact — which embeds its own serial-vs-sharded lockstep
/// verdict — must be byte-identical at any worker count.
#[test]
fn chaos_artifact_identical_serial_vs_parallel() {
    let ids = ["chaosfleet"];
    let run_with = |jobs: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
        let out_dir = std::env::temp_dir().join(format!("mntp_equiv_chaos_{tag}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        let opts = repro::Options {
            quick: true,
            selected: ids.iter().map(|s| s.to_string()).collect(),
            out_dir: out_dir.clone(),
            jobs: Some(jobs),
            print: false,
        };
        let report = repro::run(&opts);
        assert!(report.write_failures.is_empty(), "write failures: {:?}", report.write_failures);
        let arts = read_artifacts(&out_dir, &ids);
        let _ = std::fs::remove_dir_all(&out_dir);
        arts
    };
    let serial = run_with(1, "serial");
    let parallel = run_with(8, "parallel");
    assert_eq!(
        serial[0].1, parallel[0].1,
        "chaosfleet.txt differs between jobs=1 and jobs=8"
    );
    let body = String::from_utf8_lossy(&serial[0].1).into_owned();
    assert!(
        body.contains("matches sharded run: yes"),
        "in-artifact serial replay check failed:\n{body}"
    );
}
