//! End-to-end smoke test for the `repro` orchestrator: a full `--quick`
//! run must produce every expected artifact, non-empty, with no write
//! failures.
//!
//! Ignored by default — it regenerates every quick-mode figure, which
//! takes minutes in debug builds. Run it with:
//!
//! ```text
//! cargo test --release --test repro_smoke -- --ignored
//! ```

use experiments::repro;

#[test]
#[ignore = "runs the full quick repro suite; minutes in debug builds"]
fn quick_run_produces_every_artifact() {
    let out_dir = std::env::temp_dir().join("mntp_repro_smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    let opts = repro::Options {
        quick: true,
        selected: Vec::new(),
        out_dir: out_dir.clone(),
        jobs: None,
        print: false,
    };
    let report = repro::run(&opts);
    assert!(
        report.write_failures.is_empty(),
        "write failures: {:?}",
        report.write_failures
    );

    let expected = repro::expected_ids(true);
    assert_eq!(
        report.written.len(),
        expected.len(),
        "written {:?}",
        report.written.iter().map(|(id, _)| id).collect::<Vec<_>>()
    );
    for id in expected {
        let path = out_dir.join(format!("{id}.txt"));
        let meta = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
        assert!(meta.len() > 0, "artifact {id}.txt is empty");
    }
    let _ = std::fs::remove_dir_all(&out_dir);
}
