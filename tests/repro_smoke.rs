//! End-to-end smoke test for the `repro` orchestrator: a full `--quick`
//! run must produce every expected artifact, non-empty, with no write
//! failures.
//!
//! Gated behind `MNTP_SMOKE=1` — it regenerates every quick-mode
//! figure, which takes minutes in debug builds. CI runs it as:
//!
//! ```text
//! MNTP_SMOKE=1 cargo test --release --test repro_smoke
//! ```

use experiments::repro;

#[test]
fn quick_run_produces_every_artifact() {
    // lint:allow(no-env) — opt-in gate for the slow smoke run; it only decides whether the test executes
    if std::env::var("MNTP_SMOKE").map(|v| v != "1").unwrap_or(true) {
        eprintln!("skipping repro smoke: set MNTP_SMOKE=1 to run the quick suite");
        return;
    }
    // lint:allow(no-env) — OS scratch dir for throwaway test output; its location never reaches an artifact
    let out_dir = std::env::temp_dir().join("mntp_repro_smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    let opts = repro::Options {
        quick: true,
        selected: Vec::new(),
        out_dir: out_dir.clone(),
        jobs: None,
        print: false,
    };
    let report = repro::run(&opts);
    assert!(
        report.write_failures.is_empty(),
        "write failures: {:?}",
        report.write_failures
    );

    let expected = repro::expected_ids(true);
    assert_eq!(
        report.written.len(),
        expected.len(),
        "written {:?}",
        report.written.iter().map(|(id, _)| id).collect::<Vec<_>>()
    );
    for id in expected {
        let path = out_dir.join(format!("{id}.txt"));
        let meta = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
        assert!(meta.len() > 0, "artifact {id}.txt is empty");
    }
    let _ = std::fs::remove_dir_all(&out_dir);
}
