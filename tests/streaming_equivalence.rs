//! Streaming-vs-batch equivalence, end to end: the incremental sinks
//! introduced for the full-scale regime must reproduce the legacy batch
//! analyzers *exactly* on the same records — not approximately, not
//! statistically: the rendered report of a scaled run through both
//! paths is compared as one string.
//!
//! This is the contract that lets the committed `results/` artifacts
//! stay pinned while the pipeline underneath them is rebuilt: every
//! batch function is a thin adapter over its sink, and this test would
//! catch any drift between the two (CI runs it in the
//! streaming-vs-batch step of `scripts/ci.sh`).

use loganalysis::model::SERVERS;
use loganalysis::owd::{extract_owds, OwdFilter};
use loganalysis::protocol::{classify_clients, Protocol, ShapeTally};
use loganalysis::stream::ChunkSummary;
use loganalysis::synth::{generate_server_log, ServerLog, SynthConfig};
use loganalysis::{global_interarrival, GapSink};
use ntp_wire::NtpPacket;

fn scaled_logs() -> Vec<ServerLog> {
    let cfg = SynthConfig { scale: 20_000, duration_secs: 86_400 };
    SERVERS
        .iter()
        .enumerate()
        .map(|(i, s)| generate_server_log(s, &cfg, 2016_u64.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// The legacy path: whole-log batch functions.
fn batch_report(logs: &[ServerLog]) -> String {
    let filter = OwdFilter::default();
    let mut out = String::new();
    for log in logs {
        let sntp_requests = log
            .records
            .iter()
            .filter(|r| {
                NtpPacket::parse(&r.request).map(|p| p.is_sntp_client_shape()).unwrap_or(false)
            })
            .count() as u64;
        let owds = extract_owds(log, &filter);
        let kept: usize = owds.values().map(|c| c.samples_ms.len()).sum();
        let sntp_clients = classify_clients(log)
            .values()
            .filter(|p| **p == Protocol::Sntp)
            .count();
        let inter = global_interarrival(log);
        out.push_str(&format!(
            "{} records={} sntp_req={} sntp_clients={} owd_kept={} inter={:?}\n",
            log.server.id,
            log.records.len(),
            sntp_requests,
            sntp_clients,
            kept,
            inter
        ));
    }
    out
}

/// The streaming path: the same records pushed one at a time through
/// the incremental sinks, chunked and merged as the full-scale pipeline
/// would (time-contiguous chunks, in-order stitch).
fn streaming_report(logs: &[ServerLog], n_chunks: usize) -> String {
    let filter = OwdFilter::default();
    let mut out = String::new();
    for log in logs {
        let chunk = log.records.len().div_ceil(n_chunks).max(1);
        let mut shapes = ShapeTally::new();
        let mut owd = loganalysis::owd::OwdSink::new();
        let mut votes = loganalysis::protocol::ProtocolSink::new();
        let mut gaps: Option<GapSink> = None;
        for records in log.records.chunks(chunk) {
            let mut shard_shapes = ShapeTally::new();
            let mut shard_owd = loganalysis::owd::OwdSink::new();
            let mut shard_votes = loganalysis::protocol::ProtocolSink::new();
            let mut shard_gaps = GapSink::new();
            for r in records {
                shard_shapes.push(r);
                shard_owd.push(r, &filter);
                shard_votes.push(r);
                shard_gaps.push_arrival(r.received_at_secs);
            }
            shapes.merge(&shard_shapes);
            owd.merge(&shard_owd);
            votes.merge(&shard_votes);
            match &mut gaps {
                None => gaps = Some(shard_gaps),
                Some(g) => g.merge_adjacent(&shard_gaps),
            }
        }
        let kept: usize = owd.finish().values().map(|c| c.samples_ms.len()).sum();
        let sntp_clients =
            votes.finish().values().filter(|p| **p == Protocol::Sntp).count();
        out.push_str(&format!(
            "{} records={} sntp_req={} sntp_clients={} owd_kept={} inter={:?}\n",
            log.server.id,
            log.records.len(),
            shapes.sntp,
            sntp_clients,
            kept,
            gaps.map(GapSink::finish).unwrap_or(None)
        ));
    }
    out
}

/// One pass vs chunked-and-merged vs legacy batch: all three reports
/// must be the same string, for every Table 1 server.
#[test]
fn batch_and_streaming_reports_are_identical() {
    let logs = scaled_logs();
    let batch = batch_report(&logs);
    assert_eq!(batch, streaming_report(&logs, 1), "single-chunk streaming diverged");
    assert_eq!(batch, streaming_report(&logs, 8), "8-chunk stitched streaming diverged");
    // Sanity: the report actually covers the population.
    assert_eq!(batch.lines().count(), SERVERS.len());
    assert!(batch.contains("MW2"));
}

/// The composite full-scale summary, fed the *same* records as the
/// batch path, agrees on every exact (non-sketched) statistic.
#[test]
fn composite_summary_matches_batch_on_exact_stats() {
    let filter = OwdFilter::default();
    for log in scaled_logs().iter().take(4) {
        let mut s = ChunkSummary::default();
        for r in &log.records {
            s.push(r, &filter);
        }
        assert_eq!(s.records, log.records.len() as u64);
        let owds = extract_owds(log, &filter);
        let kept: usize = owds.values().map(|c| c.samples_ms.len()).sum();
        assert_eq!(s.owd_kept as usize, kept, "server {}", log.server.id);
        let inter = global_interarrival(log);
        let sketched = s.gaps.finish();
        match (inter, sketched) {
            (Some(e), Some(a)) => {
                assert_eq!(e.gaps, a.gaps);
                assert!((e.sub_ms_share - a.sub_ms_share).abs() < 1e-12);
                assert!((e.mean_ms - a.mean_ms).abs() < 1e-6);
            }
            (e, a) => panic!("summary presence diverged: {e:?} vs {a:?}"),
        }
    }
}
