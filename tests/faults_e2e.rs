//! Fault-injection end to end: the robustness acceptance criterion.
//!
//! Under a 100% server-outage window, the hardened MNTP client must
//! enter holdover, keep its true clock error bounded by the residual of
//! its *fitted* drift (not the raw oscillator skew), and re-sync once
//! the outage lifts — while the naive stepping SNTP baseline visibly
//! degrades at the raw skew for the whole window. The same fault
//! schedule must also replay bit-identically.

use clocksim::time::{SimDuration, SimTime};
use clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp::{ApplyMode, MntpConfig, RobustConfig};
use netsim::testbed::TestbedConfig;
use netsim::{FaultInjector, FaultKind, FaultSchedule, ServerSet, Testbed};
use sntp::{perform_exchange_faulted, PoolConfig, ServerPool};

/// The outage window, seconds into the run.
const OUTAGE: (f64, f64) = (1800.0, 3000.0);
const DURATION: u64 = 5400;
/// Raw oscillator skew: 40 ppm accumulates 48 ms over the 1200 s
/// window — what an undisciplined clock loses.
const SKEW_PPM: f64 = 40.0;

fn outage_schedule() -> FaultSchedule {
    FaultSchedule::none().window(
        OUTAGE.0,
        OUTAGE.1,
        FaultKind::ServerOutage { servers: ServerSet::All },
    )
}

fn free_clock(seed: u64) -> SimClock {
    let osc = OscillatorConfig::laptop().with_skew_ppm(SKEW_PPM).build(SimRng::new(seed));
    SimClock::new(osc, SimTime::ZERO)
}

fn mntp_outage_run(seed: u64) -> mntp::MntpRun {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
    let mut clock = free_clock(seed + 2);
    let mut faults = FaultInjector::new(outage_schedule(), seed + 3);
    let cfg = MntpConfig {
        warmup_period_secs: 300.0,
        warmup_wait_secs: 10.0,
        regular_wait_secs: 30.0,
        reset_period_secs: 1e9,
        apply_mode: ApplyMode::Step,
        ..Default::default()
    };
    mntp::run_full_faulted(
        cfg,
        RobustConfig::default(),
        &mut tb,
        &mut pool,
        &mut clock,
        &mut faults,
        DURATION,
        1.0,
    )
}

/// Naive SNTP through the same fault layer: poll every 5 s, step on
/// every reply, no health tracking. Returns `(t, true error ms)`.
fn sntp_outage_errors(seed: u64) -> Vec<(f64, f64)> {
    let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
    let mut clock = free_clock(seed + 2);
    let mut faults = FaultInjector::new(outage_schedule(), seed + 3);
    let timeout = Some(SimDuration::from_secs_f64(1.0));
    let mut errors = Vec::new();
    for i in 0..=(DURATION / 5) {
        let t = SimTime::ZERO + SimDuration::from_secs((i * 5) as i64);
        let id = pool.pick();
        if let Ok(done) = perform_exchange_faulted(
            &mut tb,
            pool.server_mut(id),
            &mut clock,
            t,
            &mut faults,
            timeout,
        ) {
            clocksim::ClockCommand::Step(done.sample.offset).apply(&mut clock, t);
        }
        errors.push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
    }
    errors
}

fn max_abs_in(errors: &[(f64, f64)], lo: f64, hi: f64) -> f64 {
    errors
        .iter()
        .filter(|(t, _)| *t >= lo && *t < hi)
        .map(|(_, e)| e.abs())
        .fold(0.0, f64::max)
}

#[test]
fn holdover_bounds_outage_error_and_resyncs_while_sntp_degrades() {
    let run = mntp_outage_run(4242);
    let sntp = sntp_outage_errors(5252);

    // The outage must actually have forced holdover probes.
    assert!(run.holdover_failures() > 0, "no holdover probes recorded");

    // During the window: MNTP freewheels on the *fitted* drift, so its
    // error stays well below what the raw 40 ppm skew accumulates…
    let mntp_during = max_abs_in(&run.true_error_ms, OUTAGE.0, OUTAGE.1);
    assert!(
        mntp_during < 15.0,
        "holdover error {mntp_during} ms not bounded by the fitted-drift residual"
    );
    // …while naive SNTP visibly degrades at the raw skew.
    let sntp_during = max_abs_in(&sntp, OUTAGE.0, OUTAGE.1);
    assert!(sntp_during > 25.0, "sntp should degrade during the outage, max {sntp_during}");
    assert!(
        sntp_during > 2.0 * mntp_during,
        "sntp during {sntp_during} vs mntp during {mntp_during}"
    );

    // Recovery: the first successful probe after the window corrects
    // the clock and restarts warmup.
    let recs = run.recoveries();
    assert!(!recs.is_empty(), "no recovery recorded after the outage");
    assert!(
        recs[0].0 >= OUTAGE.1,
        "recovery at {} but window ends at {}",
        recs[0].0,
        OUTAGE.1
    );
    // Post-recovery the client re-syncs: bounded error again, below the
    // degradation the outage caused the baseline.
    let mntp_post = max_abs_in(&run.true_error_ms, 3600.0, DURATION as f64);
    assert!(mntp_post < 15.0, "post-recovery error {mntp_post} ms");
    assert!(mntp_post < sntp_during, "post {mntp_post} vs outage degradation {sntp_during}");
}

#[test]
fn fault_runs_replay_bit_identically() {
    let a = mntp_outage_run(4242);
    let b = mntp_outage_run(4242);
    assert_eq!(a.true_error_ms, b.true_error_ms);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.t_secs, y.t_secs);
        assert_eq!(x.outcome, y.outcome);
    }
    let s1 = sntp_outage_errors(5252);
    let s2 = sntp_outage_errors(5252);
    assert_eq!(s1, s2);
}
