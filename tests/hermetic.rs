//! Guards the hermetic-workspace invariant: every dependency of every
//! workspace crate is an in-tree path dependency, so
//! `cargo build --release --offline && cargo test -q --offline` works
//! from a cold cache with zero registry access.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifest_paths() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("read crates/") {
        let m = entry.expect("dir entry").path().join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    assert!(out.len() >= 10, "expected the root + at least 9 member manifests, found {}", out.len());
    out
}

/// Within dependency sections, every entry must resolve in-tree: either
/// `x.workspace = true` (indirecting through `[workspace.dependencies]`,
/// which this test checks too) or an inline table with a `path` key.
/// Registry deps (`foo = "1"`, `version = ...` without `path`) fail.
fn check_manifest(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read manifest");
    let mut violations = Vec::new();
    let mut in_dep_section = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            ) || line.starts_with("[target.") && line.contains("dependencies");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let hermetic = line.ends_with(".workspace = true")
            || line.contains("workspace = true")
            || line.contains("path =");
        if !hermetic {
            violations.push(format!("{}:{}: {}", path.display(), lineno + 1, line));
        }
    }
    violations
}

#[test]
fn all_dependencies_are_path_or_workspace() {
    let mut violations = Vec::new();
    for m in manifest_paths() {
        violations.extend(check_manifest(&m));
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependency entries (registry deps are forbidden; \
         vendor the code into a workspace crate instead):\n{}",
        violations.join("\n")
    );
}

#[test]
fn banned_external_crates_never_reappear() {
    // The four crates this workspace replaced in-tree (devtools, slice
    // codecs, std::thread::scope). Keep them out of every manifest.
    let banned = ["criterion", "proptest", "crossbeam", "\nbytes"];
    for m in manifest_paths() {
        let text = std::fs::read_to_string(&m).expect("read manifest");
        for b in banned {
            assert!(
                !text.contains(b),
                "banned dependency '{}' mentioned in {}",
                b.trim(),
                m.display()
            );
        }
    }
}

#[test]
fn lockfile_is_committed_and_registry_free() {
    let lock = workspace_root().join("Cargo.lock");
    assert!(
        lock.is_file(),
        "Cargo.lock must be committed so --offline resolution is deterministic"
    );
    let text = std::fs::read_to_string(&lock).expect("read Cargo.lock");
    // Path-only packages carry no `source`; any `source = ...` line means
    // a registry or git dependency crept into the graph.
    for (lineno, line) in text.lines().enumerate() {
        assert!(
            !line.trim_start().starts_with("source = "),
            "Cargo.lock:{}: non-path package source: {}",
            lineno + 1,
            line.trim()
        );
    }
}
