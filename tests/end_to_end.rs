//! Cross-crate integration: the full MNTP pipeline (wire codec → network
//! simulation → engine → clock discipline) driven end to end.

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp_repro::mntp::{run_full, ApplyMode, MntpConfig, QueryOutcome};
use mntp_repro::netsim::testbed::TestbedConfig;
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::{PoolConfig, ServerPool};

fn drifting_clock(ppm: f64, seed: u64) -> SimClock {
    let osc = OscillatorConfig::laptop().with_skew_ppm(ppm).build(SimRng::new(seed));
    SimClock::new(osc, SimTime::ZERO)
}

/// Full Algorithm 1 in Step mode must actually *hold* a badly drifting
/// clock: after warmup, the true clock error stays bounded, while an
/// undisciplined clock would have drifted off by hundreds of ms.
#[test]
fn full_mntp_disciplines_a_drifting_clock() {
    let mut tb = Testbed::wireless(TestbedConfig::default(), 1);
    let mut pool = ServerPool::new(PoolConfig::default(), 2);
    let mut clock = drifting_clock(40.0, 3);
    let cfg = MntpConfig {
        warmup_period_secs: 600.0,
        warmup_wait_secs: 15.0,
        regular_wait_secs: 60.0,
        reset_period_secs: 1e9,
        apply_mode: ApplyMode::Step,
        ..Default::default()
    };
    let run = run_full(cfg, &mut tb, &mut pool, &mut clock, 2 * 3600, 1.0);
    // 40 ppm over 2 h = 288 ms if untouched.
    let late: Vec<f64> = run
        .true_error_ms
        .iter()
        .filter(|(t, _)| *t > 1800.0)
        .map(|(_, e)| e.abs())
        .collect();
    assert!(!late.is_empty());
    let worst = late.iter().cloned().fold(0.0, f64::max);
    assert!(worst < 100.0, "disciplined clock drifted to {worst} ms");
    let median = {
        let mut v = late.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    assert!(median < 40.0, "median disciplined error {median} ms");
}

/// The engine's phases must be visible in the run record: multi-source
/// warmup rounds first, single-source queries after.
#[test]
fn warmup_precedes_regular_phase() {
    let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
    let mut pool = ServerPool::new(PoolConfig::default(), 5);
    let mut clock = drifting_clock(10.0, 6);
    let cfg = MntpConfig {
        warmup_period_secs: 300.0,
        warmup_wait_secs: 10.0,
        regular_wait_secs: 30.0,
        reset_period_secs: 1e9,
        ..Default::default()
    };
    let run = run_full(cfg, &mut tb, &mut pool, &mut clock, 1800, 1.0);
    let first_regular = run
        .records
        .iter()
        .find(|r| matches!(r.outcome, QueryOutcome::Accepted { .. } | QueryOutcome::Rejected { .. }))
        .map(|r| r.t_secs);
    let last_warmup = run
        .records
        .iter()
        .filter(|r| matches!(r.outcome, QueryOutcome::WarmupRound { .. }))
        .map(|r| r.t_secs)
        .fold(0.0f64, f64::max);
    let first_regular = first_regular.expect("regular phase reached");
    assert!(
        last_warmup < first_regular,
        "warmup rounds (last at {last_warmup}) must precede regular queries (first at {first_regular})"
    );
    assert!(first_regular >= 300.0, "regular phase cannot start before warmupPeriod");
}

/// Determinism across the whole stack: identical seeds → identical runs,
/// different seeds → different runs.
#[test]
fn whole_stack_determinism() {
    let go = |seed: u64| {
        let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
        let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
        let mut clock = drifting_clock(20.0, seed + 2);
        let run = run_full(MntpConfig::default(), &mut tb, &mut pool, &mut clock, 900, 1.0);
        run.records
            .iter()
            .map(|r| format!("{:.3}:{:?}", r.t_secs, r.outcome))
            .collect::<Vec<_>>()
    };
    assert_eq!(go(7), go(7));
    assert_ne!(go(7), go(8));
}

/// The reset period restarts the cycle: a run longer than resetPeriod
/// contains a second block of warmup rounds.
#[test]
fn reset_period_triggers_new_warmup() {
    let mut tb = Testbed::wireless(TestbedConfig::default(), 9);
    let mut pool = ServerPool::new(PoolConfig::default(), 10);
    let mut clock = drifting_clock(15.0, 11);
    let cfg = MntpConfig {
        warmup_period_secs: 200.0,
        warmup_wait_secs: 10.0,
        regular_wait_secs: 30.0,
        reset_period_secs: 900.0,
        ..Default::default()
    };
    let run = run_full(cfg, &mut tb, &mut pool, &mut clock, 1800, 1.0);
    let warmups_after_reset = run
        .records
        .iter()
        .filter(|r| r.t_secs > 950.0 && matches!(r.outcome, QueryOutcome::WarmupRound { .. }))
        .count();
    assert!(warmups_after_reset > 0, "no warmup rounds after the reset boundary");
}
