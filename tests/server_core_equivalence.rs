//! The batched server engine is behaviorally pinned to `SimServer`.
//!
//! Two contracts, both property-tested over generated request streams:
//!
//! 1. **Per-packet equivalence** — `ServerCore::process_batch` produces
//!    byte-for-byte the reply stream a wobble-free `SimServer` produces
//!    when fed the same datagrams one at a time through `handle_from`,
//!    including kiss-o'-death fates and malformed rejections.
//! 2. **(shards, jobs) invariance** — the sharded engine's reply stream
//!    is identical to the serial reference at every shard count and pool
//!    size (the acceptance pin for deterministic scale-out).
//!
//! The sim server's clock must be wobble-free here: `with_wobble` draws
//! from an RNG on every read, so its replies depend on call order — the
//! one thing a batched engine legitimately changes. `ReferenceClock::
//! with_error` is pure (`now(t) = t + e`), which is exactly the clock
//! model `CoreConfig::clock_error` implements.

use devtools::par::Pool;
use devtools::prop::{self, Gen};
use devtools::{prop_assert, prop_assert_eq, props};
use mntp_repro::clocksim::time::{SimDuration, SimTime};
use mntp_repro::clocksim::{ReferenceClock, SimRng};
use mntp_repro::ntp_wire::{
    refid::RefId, sntp_profile, NtpDuration, NtpPacket, NtpTimestamp, PACKET_LEN,
};
use mntp_repro::sntp::server_core::{CoreConfig, Fate, ReplyRing, RequestRing, ServerCore};
use mntp_repro::sntp::SimServer;

/// One generated datagram: who sent it, how long after the previous one,
/// and what shape it takes on the wire.
type Arrival = (i64, i64, i64);

fn arb_stream() -> impl Gen<Value = Vec<Arrival>> {
    prop::vecs(
        (
            prop::ints(0..6),      // client key
            prop::ints(0..9000),   // gap to previous arrival, ms
            prop::ints(0..10),     // wire shape selector
        ),
        1..80,
    )
}

/// Materialize one arrival's wire bytes. Shapes 0 and 1 are malformed
/// (truncated garbage / version 0); 2 is an ntpd-style poller; the rest
/// are RFC 4330 SNTP requests.
fn wire_bytes(shape: i64, at: SimTime) -> Vec<u8> {
    let tx = NtpTimestamp::from_parts((at.as_nanos() / 1_000_000_000) as u32, 77);
    match shape {
        0 => vec![0xA5; 17],
        1 => vec![0u8; PACKET_LEN],
        2 => NtpPacket { poll: 6, precision: -20, ..sntp_profile::client_request(tx) }.serialize(),
        _ => sntp_profile::client_request(tx).serialize(),
    }
}

fn build_batch(stream: &[Arrival]) -> RequestRing {
    let mut reqs = RequestRing::with_capacity(stream.len());
    let mut t = SimTime::from_millis(100);
    for &(client, gap_ms, shape) in stream {
        t = t + SimDuration::from_millis(gap_ms);
        assert!(reqs.push(client as u64, t, &wire_bytes(shape, t)));
    }
    reqs
}

const CLOCK_ERROR_MS: i64 = 3;
const MIN_POLL_SECS: i64 = 4;

fn engine_config(shards: usize) -> CoreConfig {
    CoreConfig {
        stratum: 2,
        refid: RefId::ipv4(203, 0, 113, 7),
        clock_error: NtpDuration::from_millis(CLOCK_ERROR_MS),
        min_poll_interval: Some(SimDuration::from_secs(MIN_POLL_SECS)),
        shards,
        ..CoreConfig::default()
    }
}

/// A `SimServer` matching `engine_config`, with the wobble swapped out
/// for the engine's pure constant-error clock.
fn reference_server() -> SimServer {
    use mntp_repro::netsim::link::{DelayModel, Link};
    let mut rng = SimRng::new(11);
    let up = Link::lossless(DelayModel::backbone(20.0));
    let down = Link::lossless(DelayModel::backbone(20.0));
    let mut s = SimServer::with_error_ms(0, 0.0, (up, down), &mut rng);
    s.clock = ReferenceClock::with_error(NtpDuration::from_millis(CLOCK_ERROR_MS));
    s.refid = RefId::ipv4(203, 0, 113, 7);
    s.min_poll_interval = Some(SimDuration::from_secs(MIN_POLL_SECS));
    s
}

props! {
    /// Batched replies == per-packet `SimServer` replies, byte for byte,
    /// fate for fate — including which requests get RATE kisses.
    fn pipeline_matches_sim_server(stream in arb_stream()) {
        let reqs = build_batch(&stream);
        let mut core = ServerCore::new(engine_config(1));
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);

        let mut server = reference_server();
        for (idx, (meta, wire)) in reqs.iter().enumerate() {
            match server.handle_from(meta.client, wire, meta.arrival) {
                Ok((reply, _departure)) => {
                    prop_assert!(
                        out.slot(idx) == Some(&reply[..]),
                        "reply bytes diverged at request {} (client {})",
                        idx, meta.client
                    );
                    let want_fate = if NtpPacket::parse(&reply)
                        .is_ok_and(|p| p.is_kiss_of_death())
                    {
                        Fate::Kod
                    } else {
                        Fate::Time
                    };
                    prop_assert_eq!(out.fate(idx), Some(want_fate));
                }
                Err(_) => {
                    prop_assert_eq!(out.fate(idx), Some(Fate::Malformed));
                    prop_assert_eq!(out.slot(idx), Some(&[0u8; PACKET_LEN][..]));
                }
            }
        }
        prop_assert_eq!(core.stats().kod, server.kod_sent);
        prop_assert_eq!(core.stats().total(), reqs.len() as u64);
    }

    /// The reply stream is invariant across the whole (shards, jobs)
    /// grid — deterministic scale-out, not approximate scale-out.
    fn sharded_stream_invariant(stream in arb_stream()) {
        let reqs = build_batch(&stream);
        let mut reference = ReplyRing::new();
        ServerCore::new(engine_config(1)).process_batch(&reqs, &mut reference);
        for shards in [2usize, 4, 8] {
            for jobs in [1usize, 2, 8] {
                let mut core = ServerCore::new(engine_config(shards));
                let mut out = ReplyRing::new();
                core.process_batch_on(&reqs, &mut out, &Pool::with_jobs(jobs));
                prop_assert!(
                    out.as_bytes() == reference.as_bytes(),
                    "reply stream diverged at shards={} jobs={}", shards, jobs
                );
                prop_assert_eq!(out.fates(), reference.fates());
            }
        }
    }
}

/// Multi-batch: rate-limit state persists across batches identically in
/// both implementations (the table is not per-batch scratch).
#[test]
fn multi_batch_state_matches_sim_server() {
    let streams: [&[Arrival]; 3] = [
        &[(0, 0, 5), (1, 500, 5), (0, 2000, 5)],
        &[(0, 1000, 5), (2, 100, 5), (1, 200, 2)],
        &[(0, 6000, 5), (1, 0, 5), (2, 0, 5)],
    ];
    let mut core = ServerCore::new(engine_config(4));
    let mut server = reference_server();
    let mut out = ReplyRing::new();
    let mut t0 = SimTime::from_millis(100);
    for stream in streams {
        let mut reqs = RequestRing::with_capacity(stream.len());
        let mut t = t0;
        for &(client, gap_ms, shape) in stream {
            t = t + SimDuration::from_millis(gap_ms);
            reqs.push(client as u64, t, &wire_bytes(shape, t));
        }
        t0 = t;
        core.process_batch_on(&reqs, &mut out, &Pool::with_jobs(4));
        for (idx, (meta, wire)) in reqs.iter().enumerate() {
            let (reply, _) = server.handle_from(meta.client, wire, meta.arrival).unwrap();
            assert_eq!(out.slot(idx), Some(&reply[..]), "batch diverged at {idx}");
        }
    }
    assert_eq!(core.stats().kod, server.kod_sent);
}
