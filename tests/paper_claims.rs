//! The paper's headline quantitative claims, checked end to end at
//! reduced horizons (the full-horizon versions live in the `experiments`
//! crate and the `repro` binary).

use mntp_repro::experiments::{fig1, fig2, fig4, fig5, fig6};
use mntp_repro::loganalysis::ProviderCategory;

/// §5.1 / Figure 6: "MNTP's maximum offset is 23 ms … over 12 times
/// better than standard SNTP." Shape check: a solid multiple across
/// seeds, with MNTP's max in the tens of ms while SNTP's is in the
/// hundreds.
#[test]
fn headline_improvement_factor() {
    let mut factors = Vec::new();
    for seed in [101, 202, 303] {
        let r = fig6::run(seed, 1800);
        factors.push(r.improvement_factor());
        assert!(r.mntp_abs.max < 80.0, "seed {seed}: MNTP max {}", r.mntp_abs.max);
    }
    let mean = factors.iter().sum::<f64>() / factors.len() as f64;
    assert!(mean > 4.0, "mean improvement {mean} ({factors:?})");
}

/// §3.2 / Figure 4: wireless SNTP is dramatically worse than wired.
#[test]
fn wireless_vs_wired_sntp() {
    let r = fig4::run(404, 1800);
    let wired = &r.arms[0].abs_summary;
    let wireless = &r.arms[2].abs_summary;
    assert!(wireless.mean > 3.0 * wired.mean);
    assert!(wireless.max > 150.0);
    assert!(wired.mean < 12.0);
}

/// §3.3 / Figure 5: 4G SNTP offsets live in the hundreds of ms.
#[test]
fn cellular_regime() {
    let r = fig5::run(505, 1800);
    assert!((80.0..350.0).contains(&r.abs_summary.mean), "mean {}", r.abs_summary.mean);
}

/// §3.1 / Figure 1: the four provider categories order as
/// cloud < isp ≤ broadband < mobile, with mobile around half a second.
#[test]
fn provider_latency_ordering() {
    let r = fig1::run(606, 5_000);
    let cloud = fig1::category_median(&r, ProviderCategory::CloudHosting);
    let broadband = fig1::category_median(&r, ProviderCategory::Broadband);
    let mobile = fig1::category_median(&r, ProviderCategory::Mobile);
    assert!(cloud < broadband && broadband < mobile);
    assert!(mobile > 300.0);
}

/// §3.1 / Figure 2: the majority of public-server clients speak SNTP,
/// and mobile providers are ≥90% SNTP.
#[test]
fn sntp_dominates_public_servers() {
    let r = fig2::run(707, 5_000);
    let public_majorities = r
        .per_server
        .iter()
        .filter(|row| row.clients >= 30)
        .filter(|row| row.sntp_fraction > 0.5)
        .count();
    let public_total = r.per_server.iter().filter(|row| row.clients >= 30).count();
    assert!(public_majorities * 10 >= public_total * 7, "{public_majorities}/{public_total}");
}
