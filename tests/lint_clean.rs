//! The repository must lint clean — this is the same gate
//! `scripts/ci.sh` runs via the `lint` binary, asserted in-process so
//! `cargo test` alone catches a regression. Also proves the tool is not
//! vacuous: the deliberately-bad fixture corpus must light up every
//! lint class, and the committed allowlist audit must be fresh.

use std::path::Path;

use devtools::lint;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let out = lint::run(repo_root()).expect("lint walk succeeds");
    assert!(out.files_scanned > 100, "walker saw only {} files", out.files_scanned);
    let rendered: Vec<String> = out.findings.iter().map(|f| f.to_string()).collect();
    assert!(out.clean(), "lint findings:\n{}", rendered.join("\n"));
}

#[test]
fn bad_fixtures_fail_every_lint_class() {
    let cfg = {
        let mut c = lint::Config::fallback();
        // The panic fixture plays a hot-path file.
        c.panic_paths = vec!["fx/panic.rs".into()];
        c
    };
    let mut out = lint::Outcome::default();
    for name in ["determinism", "concurrency", "panic", "hermeticity"] {
        let path = repo_root().join(format!("crates/devtools/tests/lint_fixtures/{name}.rs"));
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        lint_fixture(&mut out, &format!("fx/{name}.rs"), &src, &cfg);
    }
    // Every class is represented — the gate cannot silently go blind.
    for lint_name in [
        "no-wallclock",
        "no-unordered-map",
        "no-env",
        "no-thread-spawn",
        "no-static-mut",
        "no-unsafe",
        "no-panic",
        "no-unwrap",
        "no-slice-index",
        "no-process",
        "no-socket",
    ] {
        assert!(
            out.findings.iter().any(|f| f.lint == lint_name),
            "fixture corpus never triggers {lint_name}"
        );
    }
    assert!(!out.clean(), "a dirty tree must make the tool exit nonzero");
}

fn lint_fixture(out: &mut lint::Outcome, rel: &str, src: &str, cfg: &lint::Config) {
    lint::lint_source(rel, src, cfg, out);
}

#[test]
fn workspace_panic_clean_from_every_entry_point() {
    let a = lint::analyze(repo_root()).expect("lint walk succeeds");
    let cfg = lint::load_config(repo_root()).expect("lint.toml parses");
    // Non-vacuity: the graph must actually contain entry points in the
    // `[panic]`-path files, or "no findings" would prove nothing.
    let entries = a
        .graph
        .nodes
        .iter()
        .filter(|n| {
            !n.is_test
                && cfg.panic_paths.iter().any(|p| lint::config::path_has_prefix(&n.file, p))
        })
        .count();
    assert!(entries > 100, "only {entries} entry points under [panic] paths");
    let bad: Vec<String> = a
        .outcome
        .findings
        .iter()
        .filter(|f| f.lint == "panic-reachability")
        .map(|f| f.to_string())
        .collect();
    assert!(bad.is_empty(), "panic-reachable entry points:\n{}", bad.join("\n"));
}

#[test]
fn committed_callgraph_artifact_is_fresh() {
    let a = lint::analyze(repo_root()).expect("lint walk succeeds");
    let want = lint::graph::render(&a.graph);
    let path = repo_root().join("results/lint_callgraph.txt");
    let got = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "results/lint_callgraph.txt is stale — regenerate with \
         `cargo run --release -p devtools --bin lint -- --graph > results/lint_callgraph.txt`"
    );
}

#[test]
fn committed_allowlist_audit_is_fresh() {
    let out = lint::run(repo_root()).expect("lint walk succeeds");
    let want = lint::report(&out);
    let path = repo_root().join("results/lint_allowlist.txt");
    let got = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "results/lint_allowlist.txt is stale — regenerate with \
         `cargo run --release -p devtools --bin lint -- --report > results/lint_allowlist.txt`"
    );
}
