#!/usr/bin/env bash
# The workspace verification pipeline, runnable locally or in CI.
#
#   scripts/ci.sh            # full gate
#   MNTP_JOBS=4 scripts/ci.sh
#
# Everything runs --offline: the workspace is hermetic (in-tree path
# crates only; tests/hermetic.rs fails the suite if a registry
# dependency ever appears in a manifest), so no network is required or
# wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline, warnings are errors) =="
RUSTFLAGS="-D warnings" cargo build --release --offline

echo "== determinism & panic-policy lint =="
cargo run --release --offline -p devtools --bin lint

echo "== lint allowlist audit is fresh =="
cargo run --release --offline -p devtools --bin lint -- --report \
    | diff -u results/lint_allowlist.txt - \
    || { echo "results/lint_allowlist.txt is stale — regenerate with:"; \
         echo "  cargo run --release -p devtools --bin lint -- --report > results/lint_allowlist.txt"; \
         exit 1; }

echo "== lint call-graph artifact is fresh =="
cargo run --release --offline -p devtools --bin lint -- --graph \
    | diff -u results/lint_callgraph.txt - \
    || { echo "results/lint_callgraph.txt is stale — regenerate with:"; \
         echo "  cargo run --release -p devtools --bin lint -- --graph > results/lint_callgraph.txt"; \
         exit 1; }

echo "== test suite (offline) =="
cargo test -q --offline

echo "== hermetic guard =="
cargo test -q --offline --test hermetic

echo "== microbenchmarks vs committed baseline =="
cargo run --release --offline -p mntp-bench --bin micro
cargo run --release --offline -p mntp-bench --bin compare -- \
    results/bench/baseline.json results/bench/BENCH_micro.json

echo "== repro smoke (quick suite, release) =="
MNTP_SMOKE=1 cargo test -q --release --offline --test repro_smoke

echo "== fleet is jobs-invariant (artifact + sharded trial) =="
cargo test -q --release --offline --test parallel_equivalence fleet

echo "== chaos fleet: fault timeline is jobs-invariant, lockstep replay =="
cargo test -q --release --offline --test parallel_equivalence chaos

echo "== server core: pinned to SimServer, (shards, jobs)-invariant =="
cargo test -q --release --offline --test server_core_equivalence
cargo test -q --release --offline --test parallel_equivalence servercore

echo "== streaming sinks reproduce the batch analyzers exactly =="
cargo test -q --release --offline --test streaming_equivalence

echo "== full-scale pipeline is (shards, jobs)-invariant =="
cargo test -q --release --offline --test parallel_equivalence fullscale

echo "CI OK"
